//! Quickstart: build a grouped dataset, run an aggregate skyline, inspect
//! domination probabilities and the γ-ranked result.
//!
//! Run with `cargo run --example quickstart`.

use aggsky::core::ranked_skyline;
use aggsky::{domination_probability, Algorithm, Gamma, GroupedDatasetBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Movies as (popularity, quality) records, grouped by director — the
    // paper's Figure 1 table.
    let mut builder = GroupedDatasetBuilder::new(2);
    builder.push_group("Cameron", &[vec![404.0, 8.0], vec![326.0, 8.6]])?;
    builder.push_group("Nolan", &[vec![371.0, 8.3]])?;
    builder.push_group("Tarantino", &[vec![313.0, 8.2], vec![557.0, 9.0]])?;
    builder.push_group("Kershner", &[vec![362.0, 8.8]])?;
    builder.push_group("Coppola", &[vec![531.0, 9.2], vec![76.0, 7.3]])?;
    builder.push_group("Jackson", &[vec![518.0, 8.7]])?;
    builder.push_group("Wiseau", &[vec![10.0, 3.2]])?;
    let movies = builder.build()?;

    // "What are the most interesting directors, according to the features
    // of their movies?" — the aggregate skyline at the parameter-free
    // default γ = 0.5.
    let result = Algorithm::Indexed.run(&movies, Gamma::DEFAULT);
    println!("Aggregate skyline (gamma = 0.5):");
    for label in movies.sorted_labels(&result.skyline) {
        println!("  - {label}");
    }
    println!(
        "  ({} group pairs compared, {} record pairs checked)",
        result.stats.group_pairs, result.stats.record_pairs
    );

    // Raising γ makes dominance harder and the skyline larger.
    let relaxed = Algorithm::Indexed.run(&movies, Gamma::new(0.9)?);
    println!("\nAggregate skyline (gamma = 0.9): {} directors", relaxed.skyline.len());

    // Pairwise domination probabilities explain the result.
    let tarantino = movies.group_by_label("Tarantino").unwrap();
    let jackson = movies.group_by_label("Jackson").unwrap();
    println!(
        "\np(Jackson > Tarantino) = {:.2}, p(Tarantino > Jackson) = {:.2}",
        domination_probability(&movies, jackson, tarantino),
        domination_probability(&movies, tarantino, jackson),
    );

    // And every group that can ever be in a skyline, ranked by the minimum
    // γ at which it appears (Section 2.2 of the paper).
    println!("\nDirectors by minimum qualifying gamma:");
    for rg in ranked_skyline(&movies) {
        println!("  {:<10} gamma >= {:.3}", movies.label(rg.group), rg.min_gamma.max(0.5));
    }
    Ok(())
}
