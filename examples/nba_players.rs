//! The paper's real-data scenario: find the most interesting NBA players
//! (and teams) according to all their seasons, on the synthetic NBA
//! stand-in dataset.
//!
//! Run with `cargo run --release --example nba_players`.

use aggsky::{Algorithm, Gamma};
use aggsky_datagen::{generate_nba, nba_dataset, NbaGrouping, STAT_NAMES};

fn main() {
    let records = generate_nba(15_000, 42);
    println!("Generated {} player-season records.", records.len());

    // Group by player over all 8 per-game statistics: "which players'
    // careers are not dominated by any other player's career?"
    let by_player = nba_dataset(&records, NbaGrouping::Player, 8);
    println!(
        "\nGrouping by player: {} players, skyline attributes: {}",
        by_player.n_groups(),
        STAT_NAMES.join(", ")
    );
    let result = Algorithm::IndexedBbox.run(&by_player, Gamma::DEFAULT);
    println!(
        "Aggregate skyline: {} players ({} record-pair checks instead of the naive {}).",
        result.skyline.len(),
        result.stats.record_pairs,
        naive_pairs(&by_player),
    );

    // The same question for teams, on the three headline stats.
    let by_team = nba_dataset(&records, NbaGrouping::Team, 3);
    let teams = Algorithm::IndexedBbox.run(&by_team, Gamma::DEFAULT);
    println!(
        "\nGrouping by team over (points, rebounds, assists): {} of {} teams in the skyline:",
        teams.skyline.len(),
        by_team.n_groups()
    );
    for label in by_team.sorted_labels(&teams.skyline) {
        println!("  - {label}");
    }

    // γ as a result-size knob (Section 2.2): sweep it.
    println!("\nSkyline size vs gamma (players, 8 attributes):");
    for gamma in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let r = Algorithm::IndexedBbox.run(&by_player, Gamma::new(gamma).unwrap());
        println!("  gamma {gamma:.1} -> {} players", r.skyline.len());
    }
}

fn naive_pairs(ds: &aggsky::GroupedDataset) -> u64 {
    let mut total = 0u64;
    for a in ds.group_ids() {
        for b in ds.group_ids() {
            if a < b {
                total += 2 * (ds.group_len(a) as u64) * (ds.group_len(b) as u64);
            }
        }
    }
    total
}
