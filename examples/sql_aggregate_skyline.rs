//! The SQL face of the operator: the paper's Examples 1-3 executed through
//! the mini SQL engine, including the proposed `SKYLINE OF` syntax and the
//! direct Algorithm 1 rewrite it replaces.
//!
//! Run with `cargo run --example sql_aggregate_skyline`.

use aggsky::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE movie (title TEXT, year INT, director TEXT, \
         pop FLOAT, qual FLOAT, num INT)",
    )?;
    db.execute(
        "INSERT INTO movie VALUES \
         ('Avatar', 2009, 'Cameron', 404, 8.0, 2), \
         ('Batman Begins', 2005, 'Nolan', 371, 8.3, 1), \
         ('Kill Bill', 2003, 'Tarantino', 313, 8.2, 2), \
         ('Pulp Fiction', 1994, 'Tarantino', 557, 9.0, 2), \
         ('Star Wars (V)', 1980, 'Kershner', 362, 8.8, 1), \
         ('Terminator (II)', 1991, 'Cameron', 326, 8.6, 2), \
         ('The Godfather', 1972, 'Coppola', 531, 9.2, 2), \
         ('The Lord of the Rings', 2001, 'Jackson', 518, 8.7, 1), \
         ('The Room', 2003, 'Wiseau', 10, 3.2, 1), \
         ('Dracula', 1992, 'Coppola', 76, 7.3, 2)",
    )?;

    println!("Example 1 — record skyline:\n");
    println!("  SELECT title, pop, qual FROM movie SKYLINE OF pop MAX, qual MAX\n");
    let r = db.execute("SELECT title, pop, qual FROM movie SKYLINE OF pop MAX, qual MAX")?;
    print!("{}", r.to_table());

    println!("\nExample 2 — aggregate query (Figure 3):\n");
    let r = db.execute(
        "SELECT director, max(pop), max(qual) FROM movie \
         GROUP BY director HAVING max(qual) >= 8.0 ORDER BY director",
    )?;
    print!("{}", r.to_table());

    println!("\nExample 3 — aggregate skyline with the paper's syntax:\n");
    println!("  SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX\n");
    let r = db.execute(
        "SELECT director FROM movie GROUP BY director \
         SKYLINE OF pop MAX, qual MAX ORDER BY director",
    )?;
    print!("{}", r.to_table());

    println!("\nThe same query as the paper's Algorithm 1 (direct SQL, no extension):\n");
    let r = db.execute(
        "select distinct director from movie where director not in (\
           select X.director from movie X, movie Y \
           where ((Y.pop > X.pop and Y.qual >= X.qual) or \
                  (Y.pop >= X.pop and Y.qual > X.qual)) \
           group by X.director, Y.director \
           having 1.0*count(*)/(X.num*Y.num) > .5) order by director",
    )?;
    print!("{}", r.to_table());

    println!("\nAnd with a relaxed gamma, more directors qualify:\n");
    let r = db.execute(
        "SELECT director FROM movie GROUP BY director \
         SKYLINE OF pop MAX, qual MAX GAMMA 0.9 ORDER BY director",
    )?;
    print!("{}", r.to_table());
    Ok(())
}
