//! Living data: maintain an aggregate skyline under inserts and deletes
//! with the incremental engine, and answer under a time budget with the
//! anytime operator.
//!
//! Run with `cargo run --release --example streaming_updates`.

use aggsky::{anytime_skyline, Algorithm, DynamicAggregateSkyline, Gamma};
use aggsky_datagen::{Distribution, SyntheticConfig};

fn main() {
    // A product catalog: sellers (groups) with offers rated on
    // (review score, feature score). New offers arrive continuously.
    let mut market = DynamicAggregateSkyline::new(2);
    let acme = market.add_group("acme");
    let globex = market.add_group("globex");
    let initech = market.add_group("initech");

    market.insert(acme, &[4.5, 7.0]).unwrap();
    market.insert(acme, &[4.8, 6.5]).unwrap();
    market.insert(globex, &[3.0, 3.5]).unwrap();
    market.insert(initech, &[2.0, 9.0]).unwrap();
    report("initial catalog", &mut market);

    // globex ships a breakout product: one insert, O(total records) work.
    market.insert(globex, &[4.9, 9.5]).unwrap();
    report("after globex's new flagship", &mut market);

    // acme recalls an offer.
    market.remove(acme, 0).unwrap();
    report("after acme's recall", &mut market);

    // p(S > R) is maintained exactly, so explanations are free:
    println!(
        "p(globex > initech) = {:.2}, p(initech > globex) = {:.2}\n",
        market.domination_probability(globex, initech).unwrap(),
        market.domination_probability(initech, globex).unwrap()
    );

    // --- Anytime answers on a big snapshot ---
    let ds = SyntheticConfig {
        n_records: 20_000,
        n_groups: 200,
        ..SyntheticConfig::paper_default(Distribution::Independent)
    }
    .generate();
    let exact = Algorithm::Indexed.run(&ds, Gamma::DEFAULT);
    println!(
        "Large snapshot: 20 000 records in 200 groups, exact skyline = {} groups.",
        exact.skyline.len()
    );
    println!("Budgeted answers (record-pair budget -> decided groups):");
    for budget in [10_000u64, 100_000, 1_000_000, u64::MAX] {
        let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
        println!(
            "  {:>9} pairs -> {:>3} in, {:>3} out, {:>3} undecided",
            if budget == u64::MAX { "unlimited".to_string() } else { budget.to_string() },
            r.confirmed_in.len(),
            r.confirmed_out.len(),
            r.undecided.len()
        );
    }
}

fn report(when: &str, market: &mut DynamicAggregateSkyline) {
    let sky = market.skyline(Gamma::DEFAULT).unwrap();
    let names: Vec<&str> = sky.iter().map(|&g| market.label(g)).collect();
    println!("{when}: skyline = {names:?}");
}
