//! The paper's healthcare motivation: find the *virtuous hospitals*
//! according to all their procedure outcomes, with mixed preference
//! directions (success rate up; cost, waiting time and complication rate
//! down), then drill into why a hospital made or missed the cut.
//!
//! Run with `cargo run --release --example hospitals`.

use aggsky::core::explain::{explain_membership, stars_of};
use aggsky::core::{k_skyband, top_k_robust};
use aggsky::{Algorithm, Gamma};
use aggsky_datagen::{generate_hospitals, HOSPITAL_METRICS};

fn main() {
    let ds = generate_hospitals(50, 24, 2026);
    println!(
        "{} hospitals x {} monthly summaries; metrics: {}",
        ds.n_groups(),
        ds.group_len(0),
        HOSPITAL_METRICS.join(", ")
    );

    let result = Algorithm::IndexedBbox.run(&ds, Gamma::DEFAULT);
    println!("\nVirtuous hospitals (aggregate skyline, gamma = 0.5): {}", result.skyline.len());
    for label in ds.sorted_labels(&result.skyline).iter().take(8) {
        println!("  - {label}");
    }

    // Near-misses: the 2-skyband adds hospitals dominated by exactly one
    // peer — worth a second look before any ranking decision.
    let (band, _) = k_skyband(&ds, Gamma::DEFAULT, 2);
    println!(
        "\n2-skyband (at most one dominator): {} hospitals ({} near-misses)",
        band.len(),
        band.len() - result.skyline.len()
    );

    // The most robust performers: smallest worst-case domination pressure.
    println!("\nTop 5 most robust hospitals:");
    for g in top_k_robust(&ds, 5) {
        println!("  - {}", ds.label(g));
    }

    // Explain one excluded hospital.
    let out =
        ds.group_ids().find(|g| !result.skyline.contains(g)).expect("some hospital is dominated");
    let m = explain_membership(&ds, out, Gamma::DEFAULT);
    let worst = m.worst_threat().expect("excluded implies a dominator");
    println!(
        "\nWhy is {} out? {} dominates it with probability {:.2}.",
        ds.label(out),
        ds.label(worst.group),
        worst.probability
    );

    // And the stars of one skyline hospital: the months that carried it.
    let star_group = result.skyline[0];
    let stars = stars_of(&ds, star_group);
    println!(
        "{}'s record skyline: {} of its {} summaries are undominated within the hospital.",
        ds.label(star_group),
        stars.len(),
        ds.group_len(star_group)
    );
    if let Some(&best) = stars.first() {
        let r = ds.record_original(star_group, best);
        println!(
            "  e.g. success {:.1}%, cost ${:.0}, wait {:.1} days, complications {:.1}%",
            r[0] * 100.0,
            r[1],
            r[2],
            r[3] * 100.0
        );
    }
}
