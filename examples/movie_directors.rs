//! The paper's running example end to end: record skyline vs. sequential
//! group-by-then-skyline vs. the aggregate skyline, showing why the
//! aggregate operator is a different (and better-behaved) query.
//!
//! Run with `cargo run --example movie_directors`.

use aggsky::core::record_skyline;
use aggsky::{Algorithm, Gamma};
use aggsky_datagen::{figure5_directors, movie_table, movies_by_director};

fn main() {
    let movies = movie_table();

    // --- Figure 2: the traditional record skyline ---
    println!("Record skyline of the movie table (Figure 2):");
    let flat: Vec<f64> = movies.iter().flat_map(|m| [m.popularity, m.quality]).collect();
    let record_sky = record_skyline::bnl(&flat, 2);
    for &i in &record_sky {
        println!(
            "  {:<22} pop={:>5} qual={}",
            movies[i].title, movies[i].popularity, movies[i].quality
        );
    }

    // --- The flawed alternative: skyline, then group ---
    println!("\nDirectors of skyline movies (skyline -> group by):");
    let mut after: Vec<&str> = record_sky.iter().map(|&i| movies[i].director).collect();
    after.sort_unstable();
    after.dedup();
    println!("  {after:?}  <- loses Jackson and Kershner");

    // --- The other flawed alternative: group, then skyline on MAX values ---
    println!("\nSkyline over per-director maxima (group by -> skyline):");
    let by_director = movies_by_director();
    let mut maxima: Vec<f64> = Vec::new();
    let mut names = Vec::new();
    for g in by_director.group_ids() {
        let mut mp = f64::NEG_INFINITY;
        let mut mq = f64::NEG_INFINITY;
        for r in by_director.records(g) {
            mp = mp.max(r[0]);
            mq = mq.max(r[1]);
        }
        maxima.extend([mp, mq]);
        names.push(by_director.label(g));
    }
    let max_sky = record_skyline::bnl(&maxima, 2);
    let mut max_names: Vec<&str> = max_sky.iter().map(|&i| names[i]).collect();
    max_names.sort_unstable();
    println!("  {max_names:?}  <- Cameron 'beats' Nolan only through aggregation artifacts");

    // --- Figure 4(b): the aggregate skyline ---
    println!("\nAggregate skyline (Figure 4b, gamma = 0.5):");
    let result = Algorithm::Indexed.run(&by_director, Gamma::DEFAULT);
    println!("  {:?}", by_director.sorted_labels(&result.skyline));

    // --- Table 2: graded dominance between directors ---
    println!("\nDomination probabilities on the Figure 5 reconstruction (Table 2):");
    let f5 = figure5_directors();
    for (s, r) in [
        ("Tarantino", "Wiseau"),
        ("Tarantino", "Fleischer"),
        ("Tarantino", "Jackson"),
        ("Jackson", "Tarantino"),
    ] {
        let p = aggsky::domination_probability(
            &f5,
            f5.group_by_label(s).unwrap(),
            f5.group_by_label(r).unwrap(),
        );
        println!("  p({s} > {r}) = {p:.2}");
    }
    println!("\nTarantino strictly dominates Wiseau, mostly dominates Fleischer, and only");
    println!("weakly dominates Jackson — exactly the paper's 'degrees of dominance' story.");
}
