//! A synthetic stand-in for the paper's real dataset: per-season NBA player
//! statistics (databasebasketball.com, ~15 000 player-season records since
//! 1979, 8 per-game skyline attributes).
//!
//! The Figure 14 experiment varies (a) the grouping attribute — which
//! controls how many groups there are and how large they get — and (b) the
//! number of skyline attributes (3–8). The generator reproduces both axes
//! with the real dataset's shape: ~2 300 players with long-tailed career
//! lengths over seasons 1979–2011, ~30 teams, 5 positions, and positively
//! correlated per-game stats driven by a per-player skill level (real sports
//! stats are correlated, which is what makes Figure 14's workloads "easier"
//! than anti-correlated synthetic data).

use crate::rng::Rng64;
use crate::zipf::Zipf;
use aggsky_core::{GroupedDataset, GroupedDatasetBuilder};

/// Names of the 8 per-game skyline attributes, in the paper's order.
pub const STAT_NAMES: [&str; 8] = [
    "points",
    "rebounds",
    "assists",
    "steals",
    "blocks",
    "field_goals",
    "free_throws",
    "three_points",
];

/// One player-season row.
#[derive(Debug, Clone)]
pub struct NbaRecord {
    /// Player identifier (`0..n_players`).
    pub player: u32,
    /// Team identifier (`0..30`).
    pub team: u16,
    /// Season year (1979..=2011).
    pub year: u16,
    /// Position (`0..5`: PG, SG, SF, PF, C).
    pub position: u8,
    /// The 8 per-game statistics, see [`STAT_NAMES`].
    pub stats: [f64; 8],
}

/// Attribute to group player-season records by (the paper's Figure 14 uses
/// "both single and multiple attributes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NbaGrouping {
    /// ~2 300 groups with heavy-tailed sizes (career lengths).
    Player,
    /// 30 large groups.
    Team,
    /// 33 large groups.
    Year,
    /// ~1 000 medium groups (multiple-attribute grouping).
    TeamYear,
    /// 5 very large groups.
    Position,
}

impl NbaGrouping {
    /// All grouping attributes exercised by the Figure 14 harness.
    pub const ALL: [NbaGrouping; 5] = [
        NbaGrouping::Player,
        NbaGrouping::Team,
        NbaGrouping::Year,
        NbaGrouping::TeamYear,
        NbaGrouping::Position,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            NbaGrouping::Player => "player",
            NbaGrouping::Team => "team",
            NbaGrouping::Year => "year",
            NbaGrouping::TeamYear => "team+year",
            NbaGrouping::Position => "position",
        }
    }

    fn key(self, r: &NbaRecord) -> String {
        match self {
            NbaGrouping::Player => format!("p{}", r.player),
            NbaGrouping::Team => format!("t{}", r.team),
            NbaGrouping::Year => format!("y{}", r.year),
            NbaGrouping::TeamYear => format!("t{}y{}", r.team, r.year),
            NbaGrouping::Position => format!("pos{}", r.position),
        }
    }
}

/// Per-position archetype multipliers for
/// (points, rebounds, assists, steals, blocks, fg, ft, 3p).
const POSITION_PROFILE: [[f64; 8]; 5] = [
    // PG: assists/steals/threes heavy.
    [1.0, 0.5, 1.8, 1.4, 0.3, 0.95, 1.05, 1.5],
    // SG: scoring and threes.
    [1.15, 0.6, 1.0, 1.2, 0.4, 1.0, 1.05, 1.4],
    // SF: balanced.
    [1.05, 0.9, 0.8, 1.0, 0.7, 1.0, 1.0, 1.0],
    // PF: rebounds/blocks.
    [0.95, 1.4, 0.5, 0.8, 1.3, 1.05, 0.95, 0.5],
    // C: rebounds/blocks heavy, no threes.
    [0.9, 1.7, 0.35, 0.6, 1.8, 1.1, 0.85, 0.15],
];

/// League-average per-game base for each stat.
const STAT_BASE: [f64; 8] = [9.0, 4.0, 2.2, 0.8, 0.5, 3.5, 1.8, 0.7];

/// Generates `~n_records` player-season rows (default 15 000 to match the
/// paper). Deterministic per seed.
pub fn generate_nba(n_records: usize, seed: u64) -> Vec<NbaRecord> {
    let mut rng = Rng64::new(seed);
    let years: Vec<u16> = (1979..=2011).collect();
    // Career lengths are heavy-tailed: most players last a few seasons, a
    // few star for 15+.
    let career = Zipf::new(18, 0.9);
    let mut records = Vec::with_capacity(n_records);
    let mut player: u32 = 0;
    while records.len() < n_records {
        let position = rng.index(5) as u8;
        // Skill in (0, 1), bell-shaped with a long right tail.
        let base: f64 = (rng.f64() + rng.f64() + rng.f64()) / 3.0;
        let skill = (base * base * 1.6).min(1.0);
        let length = career.sample(&mut rng);
        let start = years[rng.index(years.len())];
        let mut team: u16 = rng.index(30) as u16;
        for s in 0..length {
            if records.len() >= n_records {
                break;
            }
            let year = start + s as u16;
            if year > 2011 {
                break;
            }
            // Players occasionally change teams.
            if rng.chance(0.15) {
                team = rng.index(30) as u16;
            }
            // Career arc: ramp up, peak mid-career, decline.
            let arc = 1.0 - ((s as f64 - length as f64 / 2.0) / length as f64).powi(2);
            let mut stats = [0.0f64; 8];
            for (i, stat) in stats.iter_mut().enumerate() {
                let noise = 0.75 + rng.f64() * 0.5;
                *stat = STAT_BASE[i]
                    * POSITION_PROFILE[position as usize][i]
                    * (0.35 + 1.9 * skill)
                    * arc
                    * noise;
                *stat = (*stat * 10.0).round() / 10.0; // one decimal, like box scores
            }
            records.push(NbaRecord { player, team, year, position, stats });
        }
        player += 1;
    }
    records
}

/// Groups player-season rows by an attribute, keeping the first `n_attrs`
/// skyline statistics (3 ≤ `n_attrs` ≤ 8, per Figure 14).
pub fn nba_dataset(records: &[NbaRecord], grouping: NbaGrouping, n_attrs: usize) -> GroupedDataset {
    assert!((1..=8).contains(&n_attrs), "1..=8 skyline attributes");
    // Stable insertion-ordered grouping.
    let mut order: Vec<String> = Vec::new();
    let mut buckets: std::collections::HashMap<String, Vec<Vec<f64>>> =
        std::collections::HashMap::new();
    for r in records {
        let key = grouping.key(r);
        let rows = buckets.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        rows.push(r.stats[..n_attrs].to_vec());
    }
    let mut b = GroupedDatasetBuilder::new(n_attrs).trusted_labels();
    for key in order {
        b.push_group(&key[..], &buckets[&key]).expect("generated rows are well-formed");
    }
    b.build().expect("generated dataset is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_hits_target_size_and_is_deterministic() {
        let a = generate_nba(2000, 7);
        let b = generate_nba(2000, 7);
        assert_eq!(a.len(), 2000);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].stats, b[0].stats);
        assert_eq!(a[1999].player, b[1999].player);
    }

    #[test]
    fn stats_are_plausible() {
        let recs = generate_nba(5000, 1);
        for r in &recs {
            assert!(r.stats.iter().all(|&s| (0.0..=80.0).contains(&s)), "{:?}", r.stats);
            assert!((1979..=2011).contains(&r.year));
            assert!(r.team < 30 && r.position < 5);
        }
        // Mean points per game should be in a basketball-plausible band.
        let mean_pts = recs.iter().map(|r| r.stats[0]).sum::<f64>() / recs.len() as f64;
        assert!((4.0..=16.0).contains(&mean_pts), "mean points {mean_pts}");
    }

    #[test]
    fn stats_are_positively_correlated() {
        // Points and field goals both scale with skill: strong correlation,
        // matching the "real data is easy" observation of Figure 14.
        let recs = generate_nba(5000, 2);
        let xs: Vec<f64> = recs.iter().map(|r| r.stats[0]).collect();
        let ys: Vec<f64> = recs.iter().map(|r| r.stats[5]).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.5, "points/fg correlation {r}");
    }

    #[test]
    fn grouping_cardinalities_have_the_right_shape() {
        let recs = generate_nba(15_000, 3);
        let by_player = nba_dataset(&recs, NbaGrouping::Player, 8);
        let by_team = nba_dataset(&recs, NbaGrouping::Team, 8);
        let by_year = nba_dataset(&recs, NbaGrouping::Year, 8);
        let by_ty = nba_dataset(&recs, NbaGrouping::TeamYear, 8);
        let by_pos = nba_dataset(&recs, NbaGrouping::Position, 8);
        assert!(by_player.n_groups() > 1000, "players: {}", by_player.n_groups());
        assert_eq!(by_team.n_groups(), 30);
        assert_eq!(by_year.n_groups(), 33);
        assert!(by_ty.n_groups() > 500, "team+year: {}", by_ty.n_groups());
        assert_eq!(by_pos.n_groups(), 5);
        assert_eq!(by_player.n_records(), 15_000);
        assert_eq!(by_ty.n_records(), 15_000);
    }

    #[test]
    fn attr_projection_keeps_prefix() {
        let recs = generate_nba(100, 4);
        let ds3 = nba_dataset(&recs, NbaGrouping::Team, 3);
        let ds8 = nba_dataset(&recs, NbaGrouping::Team, 8);
        assert_eq!(ds3.dim(), 3);
        assert_eq!(ds8.dim(), 8);
        assert_eq!(ds3.record(0, 0), &ds8.record(0, 0)[..3]);
    }
}
