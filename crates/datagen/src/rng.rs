//! A tiny, dependency-free seeded PRNG: `splitmix64` for seeding and
//! `xoshiro256**` for the stream (Blackman & Vigna). Replaces the external
//! `rand` crate so the workspace builds with no network access.
//!
//! The generator is deterministic per seed across platforms (only integer
//! arithmetic and IEEE-754 division by a power of two), which is exactly
//! what the workload generators and seeded tests need. It makes no
//! cryptographic claims.

/// One step of the `splitmix64` sequence, used to expand a 64-bit seed into
/// the 256-bit `xoshiro256**` state (the initialization the xoshiro authors
/// recommend).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded `xoshiro256**` generator.
///
/// ```
/// use aggsky_datagen::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `n / 2^64`, negligible for the workload sizes involved.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform value in the inclusive integer range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + (((self.next_u64() as u128) * ((hi - lo + 1) as u128)) >> 64) as u64
    }

    /// A bool that is `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_matches_xoshiro256starstar() {
        // State {1, 2, 3, 4} is the canonical test vector for xoshiro256**.
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        let expected: [u64; 8] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = Rng64::new(123);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = Rng64::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.index(10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = Rng64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.range_u64(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_empty_range() {
        Rng64::new(0).index(0);
    }
}
