//! The paper's running example data: the Figure 1 movie table and a
//! reconstruction of the Figure 5 director comparison whose domination
//! probabilities reproduce Table 2 exactly.

use aggsky_core::{GroupedDataset, GroupedDatasetBuilder};

/// One row of the Figure 1 movie table.
#[derive(Debug, Clone, PartialEq)]
pub struct Movie {
    /// Movie title.
    pub title: &'static str,
    /// Release year.
    pub year: u16,
    /// Director name (the paper's grouping attribute).
    pub director: &'static str,
    /// Popularity in thousands of votes.
    pub popularity: f64,
    /// Average user evaluation on a `[0, 10]` scale.
    pub quality: f64,
}

/// The Figure 1 movie table, verbatim.
pub fn movie_table() -> Vec<Movie> {
    vec![
        Movie { title: "Avatar", year: 2009, director: "Cameron", popularity: 404.0, quality: 8.0 },
        Movie {
            title: "Batman Begins",
            year: 2005,
            director: "Nolan",
            popularity: 371.0,
            quality: 8.3,
        },
        Movie {
            title: "Kill Bill",
            year: 2003,
            director: "Tarantino",
            popularity: 313.0,
            quality: 8.2,
        },
        Movie {
            title: "Pulp Fiction",
            year: 1994,
            director: "Tarantino",
            popularity: 557.0,
            quality: 9.0,
        },
        Movie {
            title: "Star Wars (V)",
            year: 1980,
            director: "Kershner",
            popularity: 362.0,
            quality: 8.8,
        },
        Movie {
            title: "Terminator (II)",
            year: 1991,
            director: "Cameron",
            popularity: 326.0,
            quality: 8.6,
        },
        Movie {
            title: "The Godfather",
            year: 1972,
            director: "Coppola",
            popularity: 531.0,
            quality: 9.2,
        },
        Movie {
            title: "The Lord of the Rings",
            year: 2001,
            director: "Jackson",
            popularity: 518.0,
            quality: 8.7,
        },
        Movie { title: "The Room", year: 2003, director: "Wiseau", popularity: 10.0, quality: 3.2 },
        Movie { title: "Dracula", year: 1992, director: "Coppola", popularity: 76.0, quality: 7.3 },
    ]
}

/// The Figure 1 table grouped by director, `(popularity, quality)` skyline
/// attributes, directors in first-appearance order.
pub fn movies_by_director() -> GroupedDataset {
    let movies = movie_table();
    let mut directors: Vec<&'static str> = Vec::new();
    for m in &movies {
        if !directors.contains(&m.director) {
            directors.push(m.director);
        }
    }
    let mut b = GroupedDatasetBuilder::new(2);
    for d in directors {
        let rows: Vec<Vec<f64>> = movies
            .iter()
            .filter(|m| m.director == d)
            .map(|m| vec![m.popularity, m.quality])
            .collect();
        b.push_group(d, &rows).expect("movie table is well-formed");
    }
    b.build().expect("movie table is well-formed")
}

/// A reconstruction of the Figure 5 / Table 2 director data.
///
/// The paper's plots use IMDB data we do not have, but Table 2 pins the
/// domination probabilities down to two decimals, and its text fixes the
/// exact pair counts for Fleischer (`3·8 + 1·6 = 30` of 32). This dataset
/// realizes:
///
/// | S         | R         | p(S ≻ R)        |
/// |-----------|-----------|-----------------|
/// | Tarantino | Wiseau    | 16/16  = 1.00   |
/// | Tarantino | Fleischer | 30/32  = .94    |
/// | Tarantino | Jackson   | 54/80  = .68    |
/// | Wiseau    | Tarantino | 0/16   = .00    |
/// | Fleischer | Tarantino | 2/32   = .06    |
/// | Jackson   | Tarantino | 21/80  = .26    |
///
/// Groups: Tarantino (8 movies, group 0), Wiseau (2, group 1),
/// Fleischer (4, group 2), Jackson (10, group 3). Axes are abstract
/// (popularity, quality) scores.
pub fn figure5_directors() -> GroupedDataset {
    let mut b = GroupedDatasetBuilder::new(2);
    // Tarantino: six mutually-incomparable strong movies plus two weak ones
    // (the two his rivals' best movies beat).
    b.push_group(
        "Tarantino",
        &[
            vec![11.0, 18.0],
            vec![12.0, 17.0],
            vec![13.0, 16.0],
            vec![14.0, 15.0],
            vec![15.0, 14.0],
            vec![16.0, 13.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
        ],
    )
    .unwrap();
    // Wiseau: strictly below everything Tarantino made.
    b.push_group("Wiseau", &[vec![0.3, 0.2], vec![0.4, 0.1]]).unwrap();
    // Fleischer: three movies below all of Tarantino's, plus "Zombieland",
    // which beats Tarantino's two weak movies and loses to the six strong
    // ones.
    b.push_group("Fleischer", &[vec![0.2, 0.2], vec![0.5, 0.3], vec![0.1, 0.6], vec![3.0, 3.0]])
        .unwrap();
    // Jackson: five movies below everything, two Zombieland-likes, two
    // blockbusters above everything, and one oddball beating exactly one
    // weak Tarantino movie while losing to exactly two strong ones.
    b.push_group(
        "Jackson",
        &[
            vec![0.2, 0.1],
            vec![0.3, 0.4],
            vec![0.6, 0.2],
            vec![0.4, 0.5],
            vec![0.7, 0.6],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
            vec![20.0, 20.0],
            vec![21.0, 19.0],
            vec![1.5, 16.5],
        ],
    )
    .unwrap();
    b.build().expect("figure 5 data is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_core::{domination_count, domination_probability, Algorithm, Gamma};

    #[test]
    fn movie_table_matches_figure_1() {
        let movies = movie_table();
        assert_eq!(movies.len(), 10);
        let pulp = movies.iter().find(|m| m.title == "Pulp Fiction").unwrap();
        assert_eq!((pulp.popularity, pulp.quality, pulp.year), (557.0, 9.0, 1994));
    }

    #[test]
    fn grouping_by_director_matches_figure_3_shape() {
        let ds = movies_by_director();
        assert_eq!(ds.n_groups(), 7);
        assert_eq!(ds.group_len(ds.group_by_label("Tarantino").unwrap()), 2);
        assert_eq!(ds.group_len(ds.group_by_label("Coppola").unwrap()), 2);
        assert_eq!(ds.group_len(ds.group_by_label("Wiseau").unwrap()), 1);
    }

    #[test]
    fn figure_4b_aggregate_skyline() {
        let ds = movies_by_director();
        let result = Algorithm::NestedLoop.run(&ds, Gamma::DEFAULT);
        assert_eq!(
            ds.sorted_labels(&result.skyline),
            vec!["Coppola", "Jackson", "Kershner", "Tarantino"]
        );
    }

    #[test]
    fn table_2_probabilities_are_exact() {
        let ds = figure5_directors();
        let t = 0;
        let w = 1;
        let f = 2;
        let j = 3;
        // Forward direction (Tarantino dominating).
        assert_eq!(domination_count(&ds, t, w), 16); // 1.00
        assert_eq!(domination_count(&ds, t, f), 30); // 30/32 = .94
        assert_eq!(domination_count(&ds, t, j), 54); // 54/80 = .68
                                                     // Reverse direction.
        assert_eq!(domination_count(&ds, w, t), 0); // .00
        assert_eq!(domination_count(&ds, f, t), 2); // 2/32 = .06
        assert_eq!(domination_count(&ds, j, t), 21); // 21/80 = .26
                                                     // Rounded to two decimals these are Table 2's published values.
        let rounded = |p: f64| (p * 100.0).round() / 100.0;
        assert_eq!(rounded(domination_probability(&ds, t, f)), 0.94);
        assert_eq!(rounded(domination_probability(&ds, t, j)), 0.68);
        assert_eq!(rounded(domination_probability(&ds, f, t)), 0.06);
        assert_eq!(rounded(domination_probability(&ds, j, t)), 0.26);
    }

    #[test]
    fn probabilities_need_not_sum_to_one_for_jackson() {
        // The paper highlights that .68 + .26 < 1: some record pairs are
        // incomparable.
        let ds = figure5_directors();
        let p_tj = domination_probability(&ds, 0, 3);
        let p_jt = domination_probability(&ds, 3, 0);
        assert!(p_tj + p_jt < 1.0);
    }
}
