//! A small Zipf sampler (no external distribution crate needed).

use crate::rng::Rng64;

/// Samples ranks `1..=n` with probability proportional to `1 / rank^s`.
///
/// Built on a precomputed CDF with binary search, so sampling is
/// `O(log n)` after `O(n)` setup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s ≥ 0`.
    /// `s = 0` degenerates to the uniform distribution.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "support must be non-empty");
        assert!(
            aggsky_core::ord::ge(s, 0.0) && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u: f64 = rng.f64();
        match self.cdf.binary_search_by(|p| aggsky_core::ord::cmp(*p, u)) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Splits `total` items into `parts` group sizes following a Zipf law
    /// with exponent `s`: size of group `k` ∝ `1/(k+1)^s`, with every group
    /// getting at least one item. The sizes are returned largest-first.
    pub fn partition(total: usize, parts: usize, s: f64) -> Vec<usize> {
        assert!(parts > 0 && total >= parts, "need at least one item per group");
        let weights: Vec<f64> = (1..=parts).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let wsum: f64 = weights.iter().sum();
        let spare = total - parts;
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| 1 + aggsky_core::num::floor_usize(w / wsum * spare as f64))
            .collect();
        // Distribute the rounding remainder to the largest groups.
        let mut assigned: usize = sizes.iter().sum();
        let mut k = 0;
        while assigned < total {
            sizes[k % parts] += 1;
            assigned += 1;
            k += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Rng64::new(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng64::new(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[49], "{:?}", &counts[..10]);
        // Zipf(1): p(1)/p(2) = 2.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn partition_conserves_total_and_minimum() {
        for (total, parts, s) in [(1000, 10, 1.0), (57, 57, 2.0), (10_000, 100, 0.8)] {
            let sizes = Zipf::partition(total, parts, s);
            assert_eq!(sizes.len(), parts);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&x| x >= 1));
            // Largest-first (non-increasing within rounding slack of 1).
            for w in sizes.windows(2) {
                assert!(w[0] + 1 >= w[1], "not roughly sorted: {sizes:?}");
            }
        }
    }

    #[test]
    fn partition_is_skewed_for_large_exponent() {
        let sizes = Zipf::partition(1000, 10, 1.5);
        assert!(sizes[0] > 300, "head group too small: {sizes:?}");
        assert!(sizes[9] < 50, "tail group too large: {sizes:?}");
    }
}
