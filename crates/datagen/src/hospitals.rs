//! A synthetic hospital-quality dataset — the paper's other motivating use
//! case ("identification of virtuous hospitals/wards ... in medical
//! databases") — with mixed preference directions: success rate up, cost
//! down, waiting time down, complication rate down.
//!
//! Each record is one procedure outcome summary (a ward-month, say); each
//! group is a hospital. Hospitals have a latent quality level plus
//! specialty quirks, so the group skyline is neither trivial (all
//! incomparable) nor degenerate (one winner).

use crate::rng::Rng64;
use aggsky_core::{Direction, GroupedDataset, GroupedDatasetBuilder};

/// Names of the four metrics, in column order.
pub const HOSPITAL_METRICS: [&str; 4] = ["success_rate", "cost", "wait_days", "complication_rate"];

/// Preference direction of each metric (success up, everything else down).
pub fn hospital_directions() -> Vec<Direction> {
    vec![Direction::Max, Direction::Min, Direction::Min, Direction::Min]
}

/// Generates `n_hospitals` hospitals with `records_each` procedure summaries
/// apiece. Deterministic per seed.
pub fn generate_hospitals(n_hospitals: usize, records_each: usize, seed: u64) -> GroupedDataset {
    assert!(n_hospitals > 0 && records_each > 0);
    let mut rng = Rng64::new(seed);
    let mut b = GroupedDatasetBuilder::with_directions(hospital_directions()).trusted_labels();
    for h in 0..n_hospitals {
        // Latent quality in (0,1); good hospitals succeed more, cost more
        // (a realistic tension that keeps groups incomparable), and move
        // patients through faster.
        let quality: f64 = (rng.f64() + rng.f64()) / 2.0;
        let cost_base = 4_000.0 + 18_000.0 * (0.3 + 0.7 * quality) * rng.f64();
        let rows: Vec<Vec<f64>> = (0..records_each)
            .map(|_| {
                let mut noise = || rng.f64() - 0.5;
                let success = (0.55 + 0.42 * quality + 0.1 * noise()).clamp(0.05, 0.999);
                let cost = (cost_base * (1.0 + 0.35 * noise())).max(500.0);
                let wait = (25.0 * (1.2 - quality) * (1.0 + 0.6 * noise())).max(0.5);
                let complications =
                    (0.12 * (1.1 - quality) * (1.0 + 0.8 * noise())).clamp(0.001, 0.6);
                vec![success, cost, wait, complications]
            })
            .collect();
        b.push_group(format!("hospital_{h:03}"), &rows).expect("generated rows well-formed");
    }
    b.build().expect("generated dataset well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_core::{naive_skyline, Algorithm, Gamma};

    #[test]
    fn shape_and_determinism() {
        let a = generate_hospitals(20, 15, 9);
        let b = generate_hospitals(20, 15, 9);
        assert_eq!(a.n_groups(), 20);
        assert_eq!(a.n_records(), 300);
        assert_eq!(a.dim(), 4);
        for g in a.group_ids() {
            assert_eq!(a.group_rows(g), b.group_rows(g));
        }
    }

    #[test]
    fn min_directions_are_applied() {
        let ds = generate_hospitals(5, 5, 1);
        assert_eq!(ds.directions(), hospital_directions());
        // Internally normalized: cost column is negated.
        let orig = ds.record_original(0, 0);
        let norm = ds.record(0, 0);
        assert!(orig[1] > 0.0, "cost is positive in original units");
        assert!(norm[1] < 0.0, "cost is negated internally (MIN -> MAX)");
        assert_eq!(norm[0], orig[0], "success rate untouched");
    }

    #[test]
    fn metrics_are_plausible() {
        let ds = generate_hospitals(30, 20, 7);
        for g in ds.group_ids() {
            for i in 0..ds.group_len(g) {
                let r = ds.record_original(g, i);
                assert!((0.0..=1.0).contains(&r[0]), "success {r:?}");
                assert!(r[1] >= 500.0, "cost {r:?}");
                assert!(r[2] >= 0.5, "wait {r:?}");
                assert!((0.0..=0.6).contains(&r[3]), "complications {r:?}");
            }
        }
    }

    #[test]
    fn skyline_is_nontrivial() {
        let ds = generate_hospitals(40, 20, 3);
        let sky = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert!(!sky.is_empty(), "someone must survive");
        assert!(
            sky.len() < ds.n_groups(),
            "the cost/quality tension should not make everyone incomparable"
        );
        // And the optimized algorithms agree (exact mode).
        let opts = aggsky_core::AlgoOptions::exact(Gamma::DEFAULT);
        for algo in Algorithm::EVALUATED {
            assert_eq!(algo.run_with(&ds, opts).unwrap().skyline, sky, "{algo:?}");
        }
    }
}
