//! CSV import/export for grouped datasets (hand-rolled, RFC-4180-style
//! quoting; no external dependency).
//!
//! The on-disk shape is one record per line with the group label in a
//! designated column:
//!
//! ```csv
//! director,popularity,quality
//! Tarantino,313,8.2
//! Tarantino,557,9.0
//! Wiseau,10,3.2
//! ```

use aggsky_core::{Direction, GroupedDataset, GroupedDatasetBuilder};
use std::fmt;

/// Errors raised while parsing CSV into a grouped dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A data row had a different number of fields than the header.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields expected (from the header).
        expected: usize,
        /// Fields found.
        got: usize,
    },
    /// A value column held a non-numeric field.
    NotNumeric {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Offending raw text.
        text: String,
    },
    /// The named group column is not in the header.
    MissingGroupColumn(String),
    /// The file had a header but no data rows.
    NoRecords,
    /// Dataset construction failed (NaN, dimension mismatch, ...).
    Dataset(aggsky_core::Error),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::FieldCount { line, expected, got } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::NotNumeric { line, column, text } => {
                write!(f, "line {line}: column {column:?} has non-numeric value {text:?}")
            }
            CsvError::MissingGroupColumn(c) => write!(f, "group column {c:?} not in header"),
            CsvError::NoRecords => write!(f, "no data rows"),
            CsvError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits one CSV line into fields, honoring double-quote escaping.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(CsvError::UnterminatedQuote { line: line_no });
                }
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cur.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            Some(c) => cur.push(c),
        }
    }
}

/// Quotes a field if it contains a comma, quote or newline.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Returns the non-group column names of a grouped CSV's header, in file
/// order — the dimension order [`parse_grouped_csv`] will use. Lets callers
/// (e.g. the CLI's `--min COLUMN` flags) map column names onto dimensions
/// without re-implementing header parsing.
pub fn csv_value_columns(text: &str, group_column: &str) -> Result<Vec<String>, CsvError> {
    let header_line = text.lines().find(|l| !l.trim().is_empty()).ok_or(CsvError::NoRecords)?;
    let header = split_line(header_line, 1)?;
    if !header.iter().any(|h| h.trim().eq_ignore_ascii_case(group_column)) {
        return Err(CsvError::MissingGroupColumn(group_column.to_string()));
    }
    Ok(header
        .into_iter()
        .map(|h| h.trim().to_string())
        .filter(|h| !h.eq_ignore_ascii_case(group_column))
        .collect())
}

/// Parses CSV text into a grouped dataset.
///
/// * `group_column` — header name of the grouping attribute.
/// * `directions` — optional per-value-column preference; defaults to MAX
///   everywhere. Must match the number of non-group columns.
///
/// Rows with the same group label need not be adjacent. Group order follows
/// first appearance.
pub fn parse_grouped_csv(
    text: &str,
    group_column: &str,
    directions: Option<&[Direction]>,
) -> Result<GroupedDataset, CsvError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or(CsvError::NoRecords)?;
    let header = split_line(header_line, 1)?;
    let group_idx = header
        .iter()
        .position(|h| h.trim().eq_ignore_ascii_case(group_column))
        .ok_or_else(|| CsvError::MissingGroupColumn(group_column.to_string()))?;
    let value_columns: Vec<(usize, String)> = header
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != group_idx)
        .map(|(i, h)| (i, h.trim().to_string()))
        .collect();
    let dim = value_columns.len();
    if let Some(dirs) = directions {
        assert_eq!(dirs.len(), dim, "one direction per value column");
    }

    let mut order: Vec<String> = Vec::new();
    let mut buckets: std::collections::HashMap<String, Vec<Vec<f64>>> = Default::default();
    for (i, line) in lines {
        let line_no = i + 1;
        let fields = split_line(line, line_no)?;
        if fields.len() != header.len() {
            return Err(CsvError::FieldCount {
                line: line_no,
                expected: header.len(),
                got: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(dim);
        for (col, name) in &value_columns {
            let raw = fields[*col].trim();
            let v: f64 = raw.parse().map_err(|_| CsvError::NotNumeric {
                line: line_no,
                column: name.clone(),
                text: raw.to_string(),
            })?;
            row.push(v);
        }
        let label = fields[group_idx].trim().to_string();
        buckets
            .entry(label.clone())
            .or_insert_with(|| {
                order.push(label);
                Vec::new()
            })
            .push(row);
    }
    if order.is_empty() {
        return Err(CsvError::NoRecords);
    }
    let dirs = directions.map(<[Direction]>::to_vec).unwrap_or_else(|| vec![Direction::Max; dim]);
    let mut b = GroupedDatasetBuilder::with_directions(dirs).trusted_labels();
    for label in order {
        b.push_group(&label[..], &buckets[&label]).map_err(CsvError::Dataset)?;
    }
    b.build().map_err(CsvError::Dataset)
}

/// Serializes a grouped dataset back to CSV (values in the original, un-
/// normalized orientation; the group column comes first).
pub fn to_grouped_csv(ds: &GroupedDataset, group_column: &str, value_columns: &[&str]) -> String {
    assert_eq!(value_columns.len(), ds.dim(), "one name per dimension");
    let mut out = String::new();
    out.push_str(&quote_field(group_column));
    for c in value_columns {
        out.push(',');
        out.push_str(&quote_field(c));
    }
    out.push('\n');
    for g in ds.group_ids() {
        for i in 0..ds.group_len(g) {
            out.push_str(&quote_field(ds.label(g)));
            for v in ds.record_original(g, i) {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_core::{naive_skyline, Gamma};

    const MOVIES: &str = "\
director,popularity,quality
Tarantino,313,8.2
Tarantino,557,9.0
Kershner,362,8.8
Wiseau,10,3.2
";

    #[test]
    fn parses_basic_csv() {
        let ds = parse_grouped_csv(MOVIES, "director", None).unwrap();
        assert_eq!(ds.n_groups(), 3);
        assert_eq!(ds.n_records(), 4);
        assert_eq!(ds.group_len(ds.group_by_label("Tarantino").unwrap()), 2);
        let sky = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(ds.sorted_labels(&sky), vec!["Kershner", "Tarantino"]);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let csv = "g,x\n\"A, Inc.\",1\n\"say \"\"hi\"\"\",2\n";
        let ds = parse_grouped_csv(csv, "g", None).unwrap();
        assert_eq!(ds.label(0), "A, Inc.");
        assert_eq!(ds.label(1), "say \"hi\"");
    }

    #[test]
    fn group_column_anywhere() {
        let csv = "x,g,y\n1,alpha,2\n3,alpha,4\n";
        let ds = parse_grouped_csv(csv, "G", None).unwrap();
        assert_eq!(ds.n_groups(), 1);
        assert_eq!(ds.record(0, 0), &[1.0, 2.0]);
    }

    #[test]
    fn min_direction_negates() {
        let csv = "g,price\nshop,10\n";
        let ds = parse_grouped_csv(csv, "g", Some(&[Direction::Min])).unwrap();
        assert_eq!(ds.record(0, 0), &[-10.0]);
        assert_eq!(ds.record_original(0, 0), vec![10.0]);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_grouped_csv("", "g", None), Err(CsvError::NoRecords)));
        assert!(matches!(
            parse_grouped_csv("a,b\n1,2\n", "g", None),
            Err(CsvError::MissingGroupColumn(_))
        ));
        assert!(matches!(
            parse_grouped_csv("g,x\nz\n", "g", None),
            Err(CsvError::FieldCount { line: 2, expected: 2, got: 1 })
        ));
        assert!(matches!(
            parse_grouped_csv("g,x\nz,notanumber\n", "g", None),
            Err(CsvError::NotNumeric { .. })
        ));
        assert!(matches!(
            parse_grouped_csv("g,x\n\"oops,1\n", "g", None),
            Err(CsvError::UnterminatedQuote { line: 2 })
        ));
    }

    #[test]
    fn value_columns_helper() {
        assert_eq!(csv_value_columns(MOVIES, "director").unwrap(), vec!["popularity", "quality"]);
        assert_eq!(csv_value_columns("x, g ,y\n1,a,2\n", "G").unwrap(), vec!["x", "y"]);
        assert!(matches!(csv_value_columns("a,b\n", "nope"), Err(CsvError::MissingGroupColumn(_))));
        assert!(matches!(csv_value_columns("", "g"), Err(CsvError::NoRecords)));
    }

    #[test]
    fn round_trip() {
        let ds = parse_grouped_csv(MOVIES, "director", None).unwrap();
        let csv = to_grouped_csv(&ds, "director", &["popularity", "quality"]);
        let ds2 = parse_grouped_csv(&csv, "director", None).unwrap();
        assert_eq!(ds.n_groups(), ds2.n_groups());
        for g in ds.group_ids() {
            assert_eq!(ds.label(g), ds2.label(g));
            assert_eq!(ds.group_rows(g), ds2.group_rows(g));
        }
    }

    #[test]
    fn round_trip_preserves_min_direction_values() {
        let csv = "g,price,rating\na,10,4\nb,20,5\n";
        let ds = parse_grouped_csv(csv, "g", Some(&[Direction::Min, Direction::Max])).unwrap();
        let out = to_grouped_csv(&ds, "g", &["price", "rating"]);
        assert!(out.contains("a,10,4"), "{out}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "g,x\n\na,1\n\n\nb,2\n";
        let ds = parse_grouped_csv(csv, "g", None).unwrap();
        assert_eq!(ds.n_groups(), 2);
    }
}
