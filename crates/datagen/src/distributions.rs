//! The classic skyline-benchmark record distributions of Börzsönyi et al.
//! (ICDE 2001): independent, correlated, and anti-correlated points in
//! `[0, 1]^d`.

use crate::rng::Rng64;

/// Shape of the multidimensional value distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Each dimension i.i.d. uniform: the "neutral" workload.
    Independent,
    /// Dimensions positively correlated (points hug the main diagonal):
    /// skylines are tiny, the easiest workload.
    Correlated,
    /// Dimensions negatively correlated (points hug the anti-diagonal
    /// hyperplane `Σxᵢ ≈ d/2`): a large fraction of the input is in the
    /// skyline, the hardest workload.
    AntiCorrelated,
}

impl Distribution {
    /// The three distributions in the order the paper's figures use.
    pub const ALL: [Distribution; 3] =
        [Distribution::AntiCorrelated, Distribution::Independent, Distribution::Correlated];

    /// Short label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Independent => "ind",
            Distribution::Correlated => "corr",
            Distribution::AntiCorrelated => "anti",
        }
    }

    /// Draws one `dim`-dimensional point in `[0, 1]^d`.
    pub fn sample(self, rng: &mut Rng64, dim: usize, out: &mut Vec<f64>) {
        out.clear();
        match self {
            Distribution::Independent => {
                for _ in 0..dim {
                    out.push(rng.f64());
                }
            }
            Distribution::Correlated => {
                // A common level drawn from a bell-ish "peak" distribution
                // (mean of uniforms), plus small per-dimension jitter.
                let level = peak(rng);
                for _ in 0..dim {
                    let jitter = (rng.f64() - 0.5) * 0.2;
                    out.push((level + jitter).clamp(0.0, 1.0));
                }
            }
            Distribution::AntiCorrelated => {
                // Points concentrated around the hyperplane Σxᵢ = d·level:
                // draw a uniform point, recentre its deviations so they sum
                // to zero, then spread them wide. Good in one dimension ⇒
                // bad in others.
                let level = 0.5 + (peak(rng) - 0.5) * 0.15;
                let raw: Vec<f64> = (0..dim).map(|_| rng.f64()).collect();
                let mean = raw.iter().sum::<f64>() / dim as f64;
                for &r in &raw {
                    out.push((level + (r - mean)).clamp(0.0, 1.0));
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn sample_vec(self, rng: &mut Rng64, dim: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(dim);
        self.sample(rng, dim, &mut out);
        out
    }
}

/// Bell-shaped value in `[0, 1]`: mean of four uniforms (Irwin–Hall).
fn peak(rng: &mut Rng64) -> f64 {
    (rng.f64() + rng.f64() + rng.f64() + rng.f64()) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    fn columns(dist: Distribution, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng64::new(11);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let p = dist.sample_vec(&mut rng, 2);
            xs.push(p[0]);
            ys.push(p[1]);
        }
        (xs, ys)
    }

    #[test]
    fn values_stay_in_unit_cube() {
        let mut rng = Rng64::new(3);
        for dist in Distribution::ALL {
            for dim in [1usize, 2, 5, 8] {
                for _ in 0..200 {
                    let p = dist.sample_vec(&mut rng, dim);
                    assert_eq!(p.len(), dim);
                    assert!(p.iter().all(|v| (0.0..=1.0).contains(v)), "{dist:?} {p:?}");
                }
            }
        }
    }

    #[test]
    fn correlation_signs_match_the_names() {
        let (xs, ys) = columns(Distribution::Correlated, 4000);
        assert!(pearson(&xs, &ys) > 0.5, "correlated r = {}", pearson(&xs, &ys));
        let (xs, ys) = columns(Distribution::AntiCorrelated, 4000);
        assert!(pearson(&xs, &ys) < -0.5, "anti r = {}", pearson(&xs, &ys));
        let (xs, ys) = columns(Distribution::Independent, 4000);
        assert!(pearson(&xs, &ys).abs() < 0.1, "independent r = {}", pearson(&xs, &ys));
    }

    #[test]
    fn anticorrelated_has_larger_record_skyline() {
        // The defining property of the benchmark: anti-correlated data puts
        // far more records in the skyline than correlated data.
        let mut sizes = std::collections::HashMap::new();
        for dist in Distribution::ALL {
            let mut rng = Rng64::new(9);
            let mut rows = Vec::new();
            for _ in 0..1000 {
                rows.extend(dist.sample_vec(&mut rng, 3));
            }
            sizes.insert(dist.label(), aggsky_core::record_skyline::bnl(&rows, 3).len());
        }
        assert!(sizes["anti"] > 3 * sizes["corr"], "{sizes:?}");
        assert!(sizes["anti"] > sizes["ind"], "{sizes:?}");
    }
}
