//! # aggsky-datagen
//!
//! Workload generators for the aggregate-skyline evaluation:
//!
//! * [`Distribution`] — the classic Börzsönyi independent / correlated /
//!   anti-correlated record distributions,
//! * [`SyntheticConfig`] — grouped synthetic datasets with the paper's knobs
//!   (records, records per class, class spread, dimensionality, uniform or
//!   Zipfian class sizes),
//! * [`movies`] — the Figure 1 running example and a Figure 5 / Table 2
//!   reconstruction,
//! * [`nba`] — a synthetic stand-in for the paper's real NBA dataset,
//! * [`csv`] — dependency-free CSV import/export of grouped datasets,
//! * [`Zipf`] — a small Zipf sampler used by the above,
//! * [`Rng64`] — a seeded `splitmix64`/`xoshiro256**` PRNG (no external
//!   `rand` dependency, so the workspace builds offline).
//!
//! Every generator is deterministic given its seed.

#![warn(missing_docs)]

pub mod csv;
pub mod distributions;
pub mod groups;
pub mod hospitals;
pub mod movies;
pub mod nba;
pub mod rng;
pub mod zipf;

pub use csv::{csv_value_columns, parse_grouped_csv, to_grouped_csv, CsvError};
pub use distributions::Distribution;
pub use groups::{ungrouped_records, GroupSizes, SyntheticConfig};
pub use hospitals::{generate_hospitals, hospital_directions, HOSPITAL_METRICS};
pub use movies::{figure5_directors, movie_table, movies_by_director, Movie};
pub use nba::{generate_nba, nba_dataset, NbaGrouping, NbaRecord, STAT_NAMES};
pub use rng::Rng64;
pub use zipf::Zipf;
