//! Grouped synthetic workloads: the paper's evaluation datasets.
//!
//! Section 4's synthetic experiments control four knobs: total records,
//! average records per class, the fraction of the data space each class is
//! spread over, and dimensionality — under the three classic distributions.
//! We model a class as a box of side `spread` whose *center* is drawn from
//! the chosen distribution (so the inter-group structure is anti-correlated/
//! independent/correlated, which is what makes the group skyline hard or
//! easy), with the class's records drawn from the same distribution rescaled
//! into its box.

use crate::distributions::Distribution;
use crate::rng::Rng64;
use crate::zipf::Zipf;
use aggsky_core::{GroupedDataset, GroupedDatasetBuilder};

/// How the total record count is split across classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupSizes {
    /// All classes get the same number of records (the paper's default).
    Uniform,
    /// Class sizes follow a Zipf law with the given exponent (the heavy-tail
    /// workload of Figure 13(a)).
    Zipf(f64),
}

/// Configuration of a synthetic grouped dataset.
///
/// The defaults mirror the paper's: 10 000 records, 100 records per class,
/// classes spread over 20 % of the data space, 5 dimensions.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Total number of records.
    pub n_records: usize,
    /// Number of classes (groups). The paper states *average records per
    /// class*; `n_groups = n_records / avg_records_per_class`.
    pub n_groups: usize,
    /// Dimensionality of each record.
    pub dim: usize,
    /// Value distribution (drives both class centers and in-class records).
    pub distribution: Distribution,
    /// Side length of each class's box as a fraction of the data space
    /// (the paper's "spread over X % of the data space"). Larger values
    /// mean more overlap between classes.
    pub spread: f64,
    /// Distribution of records over classes.
    pub group_sizes: GroupSizes,
    /// RNG seed: identical configs with identical seeds produce identical
    /// datasets.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's default workload for a given distribution.
    pub fn paper_default(distribution: Distribution) -> SyntheticConfig {
        SyntheticConfig {
            n_records: 10_000,
            n_groups: 100,
            dim: 5,
            distribution,
            spread: 0.2,
            group_sizes: GroupSizes::Uniform,
            seed: 0x0A66_5544,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> GroupedDataset {
        assert!(self.n_groups > 0 && self.n_records >= self.n_groups);
        assert!(self.dim > 0);
        assert!(
            aggsky_core::ord::gt(self.spread, 0.0) && aggsky_core::ord::le(self.spread, 1.0),
            "spread must be a fraction of the data space"
        );
        let mut rng = Rng64::new(self.seed);
        let sizes: Vec<usize> = match self.group_sizes {
            GroupSizes::Uniform => {
                let base = self.n_records / self.n_groups;
                let extra = self.n_records % self.n_groups;
                (0..self.n_groups).map(|g| base + usize::from(g < extra)).collect()
            }
            GroupSizes::Zipf(s) => Zipf::partition(self.n_records, self.n_groups, s),
        };
        let mut b = GroupedDatasetBuilder::new(self.dim).trusted_labels();
        let mut local = Vec::with_capacity(self.dim);
        for (g, &size) in sizes.iter().enumerate() {
            // Class center from the global distribution, nudged inward so
            // the class box fits in the unit cube.
            let center = self.distribution.sample_vec(&mut rng, self.dim);
            let half = self.spread / 2.0;
            let lo: Vec<f64> =
                center.iter().map(|c| (c - half).clamp(0.0, 1.0 - self.spread)).collect();
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(size);
            for _ in 0..size {
                self.distribution.sample(&mut rng, self.dim, &mut local);
                rows.push(
                    local.iter().zip(lo.iter()).map(|(&v, &l)| l + v * self.spread).collect(),
                );
            }
            b.push_group(format!("class{g}"), &rows).expect("generated rows are well-formed");
        }
        b.build().expect("generated dataset is well-formed")
    }
}

/// Draws `n` ungrouped records from a distribution (for record-skyline
/// benchmarks and the SQL baseline's input).
pub fn ungrouped_records(
    n: usize,
    dim: usize,
    distribution: Distribution,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| distribution.sample_vec(&mut rng, dim)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SyntheticConfig::paper_default(Distribution::Independent);
        let ds = cfg.generate();
        assert_eq!(ds.n_records(), 10_000);
        assert_eq!(ds.n_groups(), 100);
        assert_eq!(ds.dim(), 5);
        for g in ds.group_ids() {
            assert_eq!(ds.group_len(g), 100);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SyntheticConfig {
            n_records: 500,
            n_groups: 10,
            ..SyntheticConfig::paper_default(Distribution::AntiCorrelated)
        };
        let a = cfg.generate();
        let b = cfg.generate();
        for g in a.group_ids() {
            assert_eq!(a.group_rows(g), b.group_rows(g));
        }
        let c = SyntheticConfig { seed: 1, ..cfg }.generate();
        assert_ne!(a.group_rows(0), c.group_rows(0), "different seed, same data");
    }

    #[test]
    fn spread_bounds_group_boxes() {
        let cfg = SyntheticConfig {
            n_records: 2000,
            n_groups: 20,
            spread: 0.1,
            ..SyntheticConfig::paper_default(Distribution::Independent)
        };
        let ds = cfg.generate();
        for g in ds.group_ids() {
            let mbb = aggsky_core::Mbb::of_group(&ds, g);
            for d in 0..ds.dim() {
                let side = mbb.max[d] - mbb.min[d];
                assert!(side <= 0.1 + 1e-9, "group {g} dim {d} side {side}");
                assert!(mbb.min[d] >= 0.0 && mbb.max[d] <= 1.0);
            }
        }
    }

    #[test]
    fn zipf_sizes_are_heavy_tailed() {
        let cfg = SyntheticConfig {
            n_records: 10_000,
            n_groups: 100,
            group_sizes: GroupSizes::Zipf(1.0),
            ..SyntheticConfig::paper_default(Distribution::Independent)
        };
        let ds = cfg.generate();
        assert_eq!(ds.n_records(), 10_000);
        let largest = ds.group_ids().map(|g| ds.group_len(g)).max().unwrap();
        let smallest = ds.group_ids().map(|g| ds.group_len(g)).min().unwrap();
        assert!(largest > 10 * smallest, "not heavy-tailed: {largest} vs {smallest}");
    }

    #[test]
    fn ungrouped_records_shape() {
        let rows = ungrouped_records(100, 3, Distribution::Correlated, 5);
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r.len() == 3));
    }
}
