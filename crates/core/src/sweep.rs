//! γ-sweep driver: one preparation, one [`PairCache`], many thresholds.
//!
//! A sensitivity analysis evaluates the same dataset at several γ values
//! (the paper's evaluation sweeps γ ∈ {0.5, …, 1.0}). The pair tallies
//! `n12`/`n21` are γ-independent, so re-running an algorithm per threshold
//! repeats almost all of its counting work. The driver here builds the
//! [`PreparedDataset`] once and threads a single [`PairCache`] through
//! every run ([`crate::Algorithm::run_cached_ctx`]): the first run pays for
//! the counting it needs, later runs serve memoized verdicts outright or
//! resume a partial tally at the kernel's block cursor when the tighter γ
//! needs more evidence.
//!
//! Each run's skyline is identical to an independent uncached run at the
//! same γ (see the soundness argument in [`crate::paircache`]); only the
//! work counters differ — which is the point, and what
//! `Stats::cache_hits` / `cache_misses` / `cache_resumes` quantify.

use crate::algorithms::{AlgoOptions, Algorithm, SkylineResult};
use crate::dataset::GroupedDataset;
use crate::error::Result;
use crate::gamma::Gamma;
use crate::kernel::KernelConfig;
use crate::paircache::PairCache;
use crate::prepared::PreparedDataset;
use crate::runctx::{Outcome, RunContext};

/// One γ point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The threshold this run used.
    pub gamma: Gamma,
    /// The run's outcome (complete skyline, or a sound partial partition
    /// when the context interrupted it).
    pub outcome: Outcome,
}

/// Everything a sweep produced, plus how much counting state it memoized.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-γ results, in the order the thresholds were given.
    pub runs: Vec<SweepResult>,
    /// Group pairs whose (possibly partial) tally the shared cache holds
    /// after the last run.
    pub memoized_pairs: usize,
}

/// Runs `algorithm` at every threshold in `gammas`, sharing one preparation
/// and one pair-count cache across the whole sweep. `opts.gamma` is
/// overridden per run; `opts.kernel` only selects the block size (the sweep
/// always runs prepared, columnar when the block size permits lanes).
///
/// # Errors
///
/// Returns [`crate::Error::InvalidArgument`] for a zero block size.
pub fn gamma_sweep(
    ds: &GroupedDataset,
    algorithm: Algorithm,
    gammas: &[Gamma],
    opts: AlgoOptions,
) -> Result<Vec<(Gamma, SkylineResult)>> {
    let outcome = gamma_sweep_ctx(ds, algorithm, gammas, opts, &RunContext::unlimited())?;
    Ok(outcome.runs.into_iter().map(|r| (r.gamma, r.outcome.unwrap_or_partial())).collect())
}

/// [`gamma_sweep`] under an execution-control context.
///
/// The context is polled by every run with that run's *own* fresh-work
/// tick clock — record pairs served or resumed from the cache were charged
/// by the run that first counted them and are never re-charged. A run that
/// gets interrupted ends the sweep; its partial outcome is the last entry
/// of [`SweepOutcome::runs`].
///
/// # Errors
///
/// Returns [`crate::Error::InvalidArgument`] for a zero block size.
pub fn gamma_sweep_ctx(
    ds: &GroupedDataset,
    algorithm: Algorithm,
    gammas: &[Gamma],
    opts: AlgoOptions,
    ctx: &RunContext,
) -> Result<SweepOutcome> {
    let block_size = match opts.kernel {
        KernelConfig::Exhaustive => PreparedDataset::DEFAULT_BLOCK_SIZE,
        KernelConfig::Blocked { block_size }
        | KernelConfig::Columnar { block_size }
        | KernelConfig::ColumnarScalar { block_size } => block_size,
    };
    let prep = PreparedDataset::build(ds, block_size)?;
    let mut cache = PairCache::new();
    let mut runs = Vec::with_capacity(gammas.len());
    for &gamma in gammas {
        let opts = AlgoOptions { gamma, ..opts };
        let outcome = algorithm.run_cached_ctx(ds, &prep, opts, &mut cache, ctx);
        let interrupted = !outcome.is_complete();
        runs.push(SweepResult { gamma, outcome });
        if interrupted {
            break;
        }
    }
    Ok(SweepOutcome { runs, memoized_pairs: cache.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::random_dataset;

    /// The sweep's skylines equal independent uncached runs at every γ, and
    /// later runs actually reuse memoized evidence.
    #[test]
    fn sweep_matches_independent_runs() {
        for algorithm in [Algorithm::NestedLoop, Algorithm::Sorted, Algorithm::Indexed] {
            let ds = random_dataset(12, 9, 3, 5100);
            let gammas: Vec<Gamma> =
                [0.5, 0.6, 0.75, 0.9].iter().map(|&g| Gamma::new(g).unwrap()).collect();
            let opts = AlgoOptions::exact(Gamma::DEFAULT);
            let swept = gamma_sweep(&ds, algorithm, &gammas, opts).unwrap();
            assert_eq!(swept.len(), gammas.len());
            let mut hits = 0;
            for (gamma, result) in &swept {
                let solo = algorithm.run_with(&ds, AlgoOptions { gamma: *gamma, ..opts }).unwrap();
                assert_eq!(result.skyline, solo.skyline, "{algorithm:?} γ={gamma}");
                hits += result.stats.cache_hits;
            }
            assert!(hits > 0, "{algorithm:?}: sweep never reused a tally");
        }
    }

    #[test]
    fn sweep_reports_memoized_pairs() {
        let ds = random_dataset(8, 6, 2, 5200);
        let gammas = [Gamma::DEFAULT, Gamma::new(0.9).unwrap()];
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        let outcome =
            gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, opts, &RunContext::unlimited())
                .unwrap();
        assert_eq!(outcome.runs.len(), 2);
        assert!(outcome.memoized_pairs > 0);
    }

    #[test]
    fn interrupted_run_ends_the_sweep() {
        let ds = random_dataset(15, 9, 3, 5300);
        let gammas: Vec<Gamma> = [0.5, 0.75, 0.9].iter().map(|&g| Gamma::new(g).unwrap()).collect();
        let opts = AlgoOptions::exact(Gamma::DEFAULT);
        let ctx = RunContext::with_budget(25);
        let outcome = gamma_sweep_ctx(&ds, Algorithm::NestedLoop, &gammas, opts, &ctx).unwrap();
        assert!(!outcome.runs.is_empty());
        assert!(outcome.runs.len() <= gammas.len());
        let last = outcome.runs.last().unwrap();
        assert!(!last.outcome.is_complete(), "tiny budget should interrupt");
    }
}
