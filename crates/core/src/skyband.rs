//! Group k-skybands and top-k robust groups (extensions beyond the paper,
//! mirroring the record-skyline literature's k-skyband operator at the
//! group level).

use crate::dataset::{GroupId, GroupedDataset};
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircount::{compare_groups, PairOptions};
use crate::ranking::ranked_skyline;
use crate::stats::Stats;
use aggsky_spatial::{Aabb, RTree};

/// The group k-skyband: all groups γ-dominated by *fewer than* `k` other
/// groups. `k = 1` is exactly the aggregate skyline; `k = |U_g|` returns
/// every group. Returned ascending by group id.
///
/// Candidate dominators are pruned with the Algorithm 5 window query, and
/// counting for a group stops as soon as `k` dominators are found.
pub fn k_skyband(ds: &GroupedDataset, gamma: Gamma, k: usize) -> (Vec<GroupId>, Stats) {
    let n = ds.n_groups();
    let mut stats = Stats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let mut out = Vec::new();
    let mut candidates = Vec::new();
    for g in 0..n {
        tree.window_query_into(&Aabb::at_least(&boxes[g].min), &mut candidates);
        stats.index_candidates += crate::num::wide(candidates.len().saturating_sub(1));
        let mut dominators = 0usize;
        for &s in &candidates {
            if s == g {
                continue;
            }
            let verdict = compare_groups(
                ds,
                s,
                g,
                gamma,
                Some((&boxes[s], &boxes[g])),
                pair_opts,
                &mut stats,
            );
            if verdict.forward.dominates() {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            out.push(g);
        }
    }
    (out, stats)
}

/// The `k` groups with the smallest minimum qualifying γ (Section 2.2's
/// ranked view), i.e. the most robust skyline members. Groups strictly
/// dominated with probability 1 never qualify. Ties broken by group id.
pub fn top_k_robust(ds: &GroupedDataset, k: usize) -> Vec<GroupId> {
    ranked_skyline(ds).into_iter().take(k).map(|r| r.group).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::gamma::domination_probability;
    use crate::testdata::{movie_directors, random_dataset};

    /// Oracle: count dominators exhaustively.
    fn oracle_skyband(ds: &GroupedDataset, gamma: Gamma, k: usize) -> Vec<GroupId> {
        (0..ds.n_groups())
            .filter(|&g| {
                let dominators = (0..ds.n_groups())
                    .filter(|&s| s != g && gamma.dominated(domination_probability(ds, s, g)))
                    .count();
                dominators < k
            })
            .collect()
    }

    #[test]
    fn k1_equals_skyline() {
        let ds = movie_directors();
        let (band, _) = k_skyband(&ds, Gamma::DEFAULT, 1);
        assert_eq!(band, naive_skyline(&ds, Gamma::DEFAULT).skyline);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(15, 6, 3, 6000 + seed);
            for k in [0usize, 1, 2, 3, 100] {
                let (band, _) = k_skyband(&ds, Gamma::DEFAULT, k);
                assert_eq!(band, oracle_skyband(&ds, Gamma::DEFAULT, k), "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn band_grows_with_k() {
        let ds = random_dataset(20, 5, 3, 999);
        let mut prev = 0usize;
        for k in 1..=6 {
            let (band, _) = k_skyband(&ds, Gamma::DEFAULT, k);
            assert!(band.len() >= prev, "k={k}");
            prev = band.len();
        }
        let (all, _) = k_skyband(&ds, Gamma::DEFAULT, ds.n_groups());
        assert_eq!(all.len(), ds.n_groups());
    }

    #[test]
    fn top_k_robust_prefix_property() {
        let ds = movie_directors();
        let top2 = top_k_robust(&ds, 2);
        let top4 = top_k_robust(&ds, 4);
        assert_eq!(top2, top4[..2].to_vec());
        assert!(top_k_robust(&ds, 0).is_empty());
        // Wiseau (strictly dominated) never appears, however large k is.
        let w = ds.group_by_label("Wiseau").unwrap();
        assert!(!top_k_robust(&ds, 100).contains(&w));
    }
}
