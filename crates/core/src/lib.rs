//! # aggsky-core
//!
//! A from-scratch implementation of **aggregate skyline queries** — the
//! operator introduced in *"From Stars to Galaxies: skyline queries on
//! aggregate data"* (M. Magnani, I. Assent, EDBT 2013).
//!
//! A traditional skyline returns the records of a table not Pareto-dominated
//! by any other record. An *aggregate* skyline answers the analogous
//! question about **groups** of records ("who are the most interesting
//! directors, given their movies?"): group `S` γ-dominates group `R` when a
//! randomly drawn record of `S` dominates a randomly drawn record of `R`
//! with probability greater than γ (Definition 3), and the aggregate
//! skyline is the set of groups no other group γ-dominates.
//!
//! ```
//! use aggsky_core::{Algorithm, Gamma, GroupedDatasetBuilder};
//!
//! // Movies as (popularity, quality) records grouped by director.
//! let mut b = GroupedDatasetBuilder::new(2);
//! b.push_group("Tarantino", &[vec![313.0, 8.2], vec![557.0, 9.0]]).unwrap();
//! b.push_group("Kershner", &[vec![362.0, 8.8]]).unwrap();
//! b.push_group("Wiseau", &[vec![10.0, 3.2]]).unwrap();
//! let ds = b.build().unwrap();
//!
//! let result = Algorithm::Indexed.run(&ds, Gamma::DEFAULT);
//! assert_eq!(ds.sorted_labels(&result.skyline), vec!["Kershner", "Tarantino"]);
//! ```
//!
//! ## Modules
//!
//! * [`dominance`] — record-level Pareto dominance (Definition 1).
//! * [`dataset`] — the grouped data model (`U_g`).
//! * [`gamma`] — γ-dominance, `γ̄`, domination probabilities.
//! * [`matrix`] — domination matrices (the Proposition 5 proof machinery).
//! * [`mbb`] — group bounding boxes and corner pruning (Figure 9).
//! * [`paircount`] — pairwise counting with the Section 3.3 stopping rule.
//! * [`prepared`] — one-time sort/block preprocessing for the blocked kernel.
//! * [`kernel`] — block-at-a-time pair counting over a prepared dataset.
//! * [`algorithms`] — NL, TR, SI, IN, LO, the naive oracle and a parallel
//!   extension.
//! * [`record_skyline`] — classic record skylines (BNL, SFS) as substrate.
//! * [`ranking`] — min-γ ranking of groups (Section 2.2).
//! * [`properties`] — executable checkers for the paper's properties.
//! * [`dynamic`] — incremental maintenance under inserts/removes.
//! * [`anytime`] — budgeted, progressive, resumable computation.
//! * [`runctx`] — execution control: cancellation, virtual-clock budgets,
//!   `chaos` fault injection.
//! * [`ord`] — sanctioned total-order float comparisons (lint rule L2).
//! * [`num`] — sanctioned numeric conversions and overflow-checked pair
//!   counting (lint rule L3).
//! * [`invariants`] — `debug_assert!`-based structural contracts, compiled
//!   in behind the `invariants` feature.
//! * [`columnar`] — branch-reduced bitmask kernel for straddling block
//!   pairs over the preparation's structure-of-arrays key lanes.
//! * [`simd`] — the AVX2-vectorized twin of the columnar kernel, selected
//!   at runtime and bit-identical to it (the only sanctioned `unsafe`
//!   module, lint rule L7).
//! * [`cpu`] — runtime CPU-feature detection and the `AGGSKY_FORCE_SCALAR`
//!   override policy (deliberately off the counting path: it reads the
//!   environment).
//! * [`paircache`] — cross-γ memoization of pair tallies, resumable at the
//!   kernel's block cursor.
//! * [`sweep`] — γ-sweep driver sharing one preparation and one pair cache
//!   across thresholds.
//! * [`persist`] — durable crash-consistent checkpoints: CRC-64 frame
//!   codec, atomic temp+fsync+rename store with graceful degradation, and
//!   the fingerprint-bound durable anytime drivers.
//! * [`service`] — epoch-based live serving: lock-free snapshot readers, a
//!   single incremental writer with atomic publication, durable epochs.

#![warn(missing_docs)]

pub use aggsky_obs as obs;

pub mod algorithms;
pub mod anytime;
pub mod columnar;
pub mod cpu;
pub mod dataset;
pub mod dominance;
pub mod dynamic;
pub mod error;
pub mod explain;
pub mod gamma;
pub mod invariants;
pub mod kernel;
pub mod matrix;
pub mod mbb;
pub mod num;
pub mod ord;
pub mod paircache;
pub mod paircount;
pub mod persist;
pub mod prepared;
pub mod properties;
pub mod ranking;
pub mod record_skyline;
pub mod runctx;
pub mod service;
pub mod simd;
pub mod skyband;
pub mod skycube;
pub mod stats;
pub mod subspace;
pub mod sweep;

#[cfg(test)]
pub(crate) mod testdata;

pub use algorithms::{
    indexed, naive_skyline, nested_loop, parallel_skyline, parallel_skyline_ctx,
    parallel_skyline_strided, parallel_skyline_with, resolve_threads, sorted, transitive,
    AlgoOptions, Algorithm, Pruning, SkylineResult, SortStrategy,
};
pub use anytime::{
    anytime_resume, anytime_resume_ctx, anytime_skyline, anytime_skyline_ctx, AnytimeCheckpoint,
    AnytimeResult,
};
pub use dataset::{GroupId, GroupedDataset, GroupedDatasetBuilder};
pub use dominance::{compare, dominates, Direction, DomRelation};
pub use dynamic::{DynSkyline, DynamicAggregateSkyline, FlushReport};
pub use error::{Error, Result};
pub use explain::{
    explain_membership, pair_contribution, stars_of, Membership, PairContribution, Threat,
};
pub use gamma::{domination_count, domination_probability, gamma_dominates, Gamma};
pub use kernel::{
    compare_groups_blocked, compare_groups_columnar, compare_groups_columnar_scalar, count_pairs,
    BoundedCompare, Kernel, KernelConfig,
};
pub use matrix::DominationMatrix;
pub use mbb::Mbb;
pub use paircache::{CachedTally, PairCache};
pub use paircount::{
    compare_groups, compare_groups_exhaustive, DomLevel, PairOptions, PairVerdict,
};
pub use persist::{
    checkpoint_step, checkpoint_step_with, is_regression, render_profile_diff, run_durable,
    CheckpointStore, DurableOutcome, Fingerprint, PairEntry, ProfileSnapshot, Recovery,
    SaveReceipt, SkippedFrame, Snapshot,
};
#[cfg(feature = "chaos")]
pub use persist::{IoFaultKind, IoFaultPlan};
pub use prepared::{BlockView, LaneBlock, PreparedDataset, LANE_VECTOR, MAX_LANE_BLOCK};
pub use ranking::{min_gamma_per_group, ranked_skyline, RankedGroup};
pub use runctx::{CancelToken, InterruptReason, Outcome, RunContext};
#[cfg(feature = "chaos")]
pub use runctx::{FaultKind, FaultPlan};
pub use service::{Epoch, EpochReceipt, ServeRecovery, SkylineService, WriteBatch, WriteOp};
pub use skyband::{k_skyband, top_k_robust};
pub use skycube::{skycube, Skycube, SubspaceSkyline};
pub use stats::Stats;
pub use sweep::{gamma_sweep, gamma_sweep_ctx, SweepOutcome, SweepResult};
