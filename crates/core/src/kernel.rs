//! The blocked counting kernel: block-at-a-time pair counting over a
//! [`PreparedDataset`].
//!
//! [`crate::compare_groups`] resolves a group pair one record comparison at
//! a time. The blocked kernel instead walks the fixed-size record blocks
//! prepared by [`PreparedDataset::build`] and classifies each *block pair*
//! first:
//!
//! * **full** — the first block's minimum corner dominates the second's
//!   maximum corner: every record of the first dominates every record of
//!   the second, contributing `k₁·k₂` pairs in O(1) (Figure 9(b) applied at
//!   block granularity);
//! * **skipped** — neither block's maximum corner dominates the other's
//!   minimum corner (or the coordinate-sum ranges rule a direction out):
//!   no pair in either direction can dominate, contributing 0 in O(1);
//! * **straddling** — anything else falls back to a record loop: either the
//!   row-wise binary-search loop ([`KernelConfig::Blocked`]) or the
//!   branch-reduced columnar bitmask kernel over the preparation's key
//!   lanes ([`KernelConfig::Columnar`], see [`crate::columnar`]). Both
//!   produce bit-identical tallies and [`Stats`] charges.
//!
//! Every classification updates the same [`Counter`] the record-at-a-time
//! path uses, so the Section 3.3 stopping rule (evaluated after each block
//! pair) and the exact `n12`/`n21` tallies are preserved bit-for-bit.
//!
//! Block pairs are visited in a single deterministic linear order (the
//! *block cursor*): pair `idx` is `(idx / nb₂, idx mod nb₂)`. The cursor is
//! what makes the [`PairCache`] resumable — a memoized partial tally plus a
//! cursor fully determine the remaining work, for any later γ.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircache::{CachedTally, PairCache};
use crate::paircount::{compare_groups, Counter, DomLevel, PairOptions, PairVerdict};
use crate::prepared::{BlockView, PreparedDataset, MAX_LANE_BLOCK};
use crate::stats::Stats;

/// Selects the record-counting strategy used inside every group-vs-group
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelConfig {
    /// Compare records pairwise with [`crate::compare_groups`] (no
    /// preprocessing; the paper's configuration).
    #[default]
    Exhaustive,
    /// Preprocess each group once ([`PreparedDataset::build`]) and count
    /// block-at-a-time with the row-wise straddle loop.
    Blocked {
        /// Records per block; see [`PreparedDataset::DEFAULT_BLOCK_SIZE`].
        block_size: usize,
    },
    /// Like [`KernelConfig::Blocked`], but straddling block pairs are
    /// counted by the columnar bitmask kernel over the preparation's
    /// structure-of-arrays key lanes (see [`crate::columnar`]). Requires
    /// `block_size <= `[`MAX_LANE_BLOCK`] so one lane fits a `u64` mask.
    /// When the CPU supports AVX2 (and `AGGSKY_FORCE_SCALAR` is not set,
    /// see [`crate::cpu`]), straddles run the hand-vectorized twin in
    /// [`crate::simd`] — bit-identical tallies and [`Stats`], just faster.
    Columnar {
        /// Records per block (at most [`MAX_LANE_BLOCK`]).
        block_size: usize,
    },
    /// [`KernelConfig::Columnar`] with SIMD dispatch pinned off: always the
    /// scalar columnar kernel, regardless of CPU features or environment.
    /// This is the testable/benchable fallback on AVX2 hardware (the
    /// differential oracle of `tests/simd_differential.rs` and the
    /// `columnar-scalar` row of the perf table).
    ColumnarScalar {
        /// Records per block (at most [`MAX_LANE_BLOCK`]).
        block_size: usize,
    },
}

impl KernelConfig {
    /// The blocked kernel at the default block size.
    pub fn blocked() -> KernelConfig {
        KernelConfig::Blocked { block_size: PreparedDataset::DEFAULT_BLOCK_SIZE }
    }

    /// The columnar kernel at the default block size (SIMD when available).
    pub fn columnar() -> KernelConfig {
        KernelConfig::Columnar { block_size: PreparedDataset::DEFAULT_BLOCK_SIZE }
    }

    /// The scalar-pinned columnar kernel at the default block size.
    pub fn columnar_scalar() -> KernelConfig {
        KernelConfig::ColumnarScalar { block_size: PreparedDataset::DEFAULT_BLOCK_SIZE }
    }
}

/// Which straddle loop a prepared kernel runs. All three tally identically;
/// the columnar loops are the faster ones when lanes are available, and the
/// SIMD one the fastest when the CPU has AVX2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StraddleMode {
    RowWise,
    ColumnarScalar,
    ColumnarSimd,
}

impl StraddleMode {
    /// The columnar mode the runtime environment selects: AVX2 when
    /// detected and not overridden, scalar otherwise.
    #[inline]
    fn columnar_auto() -> StraddleMode {
        if crate::cpu::simd_active() {
            StraddleMode::ColumnarSimd
        } else {
            StraddleMode::ColumnarScalar
        }
    }
}

enum Prep<'a> {
    None,
    Owned(Box<PreparedDataset>),
    Borrowed(&'a PreparedDataset),
}

/// A dataset bound to a counting strategy: the single entry point the
/// algorithms use for group-vs-group comparisons.
///
/// Construction performs the (one-time) preprocessing when the config asks
/// for a prepared kernel; [`Kernel::with_prepared`] reuses a
/// [`PreparedDataset`] built elsewhere, e.g. one shared by several
/// algorithm runs or worker threads. The kernel is plain data, so a shared
/// reference can be used from many threads concurrently.
pub struct Kernel<'a> {
    ds: &'a GroupedDataset,
    prep: Prep<'a>,
    straddle: StraddleMode,
}

impl<'a> Kernel<'a> {
    /// Binds `ds` to the strategy selected by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for a zero block size, or for a
    /// columnar block size above [`MAX_LANE_BLOCK`] (one lane must fit a
    /// `u64` dominance bitmask).
    pub fn new(ds: &'a GroupedDataset, config: KernelConfig) -> Result<Kernel<'a>> {
        match config {
            KernelConfig::Exhaustive => Ok(Kernel::exhaustive(ds)),
            KernelConfig::Blocked { block_size } => {
                let prep = PreparedDataset::build(ds, block_size)?;
                Ok(Kernel {
                    ds,
                    prep: Prep::Owned(Box::new(prep)),
                    straddle: StraddleMode::RowWise,
                })
            }
            KernelConfig::Columnar { block_size } | KernelConfig::ColumnarScalar { block_size } => {
                if block_size > MAX_LANE_BLOCK {
                    return Err(Error::InvalidArgument(format!(
                        "columnar block_size {block_size} exceeds MAX_LANE_BLOCK \
                         ({MAX_LANE_BLOCK}); one lane must fit a u64 bitmask"
                    )));
                }
                let prep = PreparedDataset::build(ds, block_size)?;
                debug_assert!(prep.lanes_enabled());
                let straddle = match config {
                    KernelConfig::ColumnarScalar { .. } => StraddleMode::ColumnarScalar,
                    _ => StraddleMode::columnar_auto(),
                };
                Ok(Kernel { ds, prep: Prep::Owned(Box::new(prep)), straddle })
            }
        }
    }

    /// Binds `ds` to the exhaustive (no preprocessing) strategy. Infallible
    /// — this is what [`crate::Algorithm::run`] uses, keeping the paper
    /// configuration free of error plumbing.
    pub fn exhaustive(ds: &'a GroupedDataset) -> Kernel<'a> {
        Kernel { ds, prep: Prep::None, straddle: StraddleMode::RowWise }
    }

    /// Binds `ds` to an existing preparation, using the row-wise straddle
    /// loop (the historical behavior; see
    /// [`Kernel::with_prepared_columnar`]).
    ///
    /// The preparation must have been built from `ds`.
    pub fn with_prepared(ds: &'a GroupedDataset, prep: &'a PreparedDataset) -> Kernel<'a> {
        debug_assert_eq!(ds.n_records(), prep.n_records());
        Kernel { ds, prep: Prep::Borrowed(prep), straddle: StraddleMode::RowWise }
    }

    /// Binds `ds` to an existing preparation, counting straddles with the
    /// columnar bitmask kernel (SIMD when the CPU and environment allow,
    /// see [`crate::cpu::simd_active`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if the preparation was built
    /// without key lanes (block size above [`MAX_LANE_BLOCK`]).
    pub fn with_prepared_columnar(
        ds: &'a GroupedDataset,
        prep: &'a PreparedDataset,
    ) -> Result<Kernel<'a>> {
        debug_assert_eq!(ds.n_records(), prep.n_records());
        if !prep.lanes_enabled() {
            return Err(Error::InvalidArgument(format!(
                "preparation has no key lanes (block_size {} > MAX_LANE_BLOCK \
                 {MAX_LANE_BLOCK}); rebuild with a smaller block size",
                prep.block_size()
            )));
        }
        Ok(Kernel { ds, prep: Prep::Borrowed(prep), straddle: StraddleMode::columnar_auto() })
    }

    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &'a GroupedDataset {
        self.ds
    }

    /// The preparation, when a prepared (blocked or columnar) kernel is
    /// active.
    #[inline]
    pub fn prepared(&self) -> Option<&PreparedDataset> {
        match &self.prep {
            Prep::None => None,
            Prep::Owned(p) => Some(p),
            Prep::Borrowed(p) => Some(p),
        }
    }

    /// Whether straddling block pairs run a columnar bitmask kernel (scalar
    /// or SIMD).
    #[inline]
    pub fn is_columnar(&self) -> bool {
        self.straddle != StraddleMode::RowWise
    }

    /// Whether straddling block pairs run the AVX2 SIMD kernel.
    #[inline]
    pub fn is_simd(&self) -> bool {
        self.straddle == StraddleMode::ColumnarSimd
    }

    #[inline]
    fn straddle_mode(&self) -> StraddleMode {
        self.straddle
    }

    /// Group bounding boxes precomputed during preparation (`None` in
    /// exhaustive mode); lets algorithms skip a redundant
    /// [`Mbb::of_all_groups`] pass.
    #[inline]
    pub fn group_mbbs(&self) -> Option<&[Mbb]> {
        self.prepared().map(|p| p.mbbs())
    }

    /// Compares groups `g1` and `g2` with this kernel's strategy; drop-in
    /// replacement for [`crate::compare_groups`].
    pub fn compare(
        &self,
        g1: GroupId,
        g2: GroupId,
        gamma: Gamma,
        boxes: Option<(&Mbb, &Mbb)>,
        opts: PairOptions,
        stats: &mut Stats,
    ) -> PairVerdict {
        match self.prepared() {
            Some(p) => {
                compare_groups_prepared(p, g1, g2, gamma, boxes, opts, stats, self.straddle_mode())
            }
            None => compare_groups(self.ds, g1, g2, gamma, boxes, opts, stats),
        }
    }

    /// Like [`Kernel::compare`], memoizing (and reusing) pair tallies
    /// through `cache`. Falls back to the uncached path when no cache is
    /// given or the kernel is exhaustive (the cache's resume cursor is
    /// defined over block pairs).
    ///
    /// The verdict is always the one an uncached run would produce —
    /// stop-rule verdicts are certain, so serving or resuming a memoized
    /// partial cannot flip an outcome — but `Stats` work counters reflect
    /// only the *new* counting performed, with the reuse visible in
    /// `cache_hits` / `cache_misses` / `cache_resumes`.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_cached(
        &self,
        g1: GroupId,
        g2: GroupId,
        gamma: Gamma,
        boxes: Option<(&Mbb, &Mbb)>,
        opts: PairOptions,
        cache: Option<&mut PairCache>,
        stats: &mut Stats,
    ) -> PairVerdict {
        match (self.prepared(), cache) {
            (Some(p), Some(cache)) => compare_groups_cached(
                p,
                g1,
                g2,
                gamma,
                boxes,
                opts,
                cache,
                stats,
                self.straddle_mode(),
            ),
            _ => self.compare(g1, g2, gamma, boxes, opts, stats),
        }
    }

    /// One bounded batch of a group-vs-group comparison: processes at most
    /// `max_block_pairs` block pairs of the deterministic block cursor and
    /// either decides the pair or returns a resumable [`CachedTally`]. This
    /// is the pair-granular scheduler's stealable work unit — any worker
    /// can pick up a [`BoundedCompare::Pending`] continuation, because the
    /// tally plus the cursor fully determine the remaining work.
    ///
    /// Semantics match [`Kernel::compare_cached`] exactly: counting runs in
    /// canonical `(min, max)` orientation (the returned verdict is flipped
    /// back to the caller's), a fresh start (`resume: None`) charges
    /// `group_pairs`, applies the bounding-box shortcut, and consults
    /// `cache` for a memoized tally to serve or resume; a continuation
    /// (`resume: Some`) belongs to an already-charged comparison and does
    /// neither. Decided batches store their tally back into `cache`.
    /// `Stats` charges cover only the counting this batch performed, so a
    /// scheduler that commits them after each successful batch never
    /// double-charges a budget across retries.
    ///
    /// On an exhaustive kernel (no preparation) there is no block cursor:
    /// the whole comparison runs as one batch and the work unit degrades to
    /// the full pair, with no tally to memoize.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_bounded(
        &self,
        g1: GroupId,
        g2: GroupId,
        gamma: Gamma,
        boxes: Option<(&Mbb, &Mbb)>,
        opts: PairOptions,
        resume: Option<CachedTally>,
        max_block_pairs: u64,
        mut cache: Option<&mut PairCache>,
        stats: &mut Stats,
    ) -> BoundedCompare {
        let Some(prep) = self.prepared() else {
            return BoundedCompare::Decided {
                verdict: self.compare(g1, g2, gamma, boxes, opts, stats),
                tally: None,
            };
        };
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let total = crate::num::pair_product(prep.group_len(lo), prep.group_len(hi));
        let orient = |v: PairVerdict| if g1 <= g2 { v } else { v.flipped() };
        let mut was_cached = false;
        let tally = match resume {
            Some(t) => {
                debug_assert_eq!(t.total, total, "resume tally from a different dataset");
                t
            }
            None => {
                stats.group_pairs += 1;
                if let Some(v) = bbox_shortcut(boxes, stats) {
                    // Box verdicts are already in caller orientation.
                    return BoundedCompare::Decided { verdict: v, tally: None };
                }
                match cache.as_ref().and_then(|c| c.lookup(lo, hi)) {
                    Some(t) => {
                        debug_assert_eq!(t.total, total, "cache entry from a different dataset");
                        was_cached = true;
                        t
                    }
                    None => {
                        if cache.is_some() {
                            stats.cache_misses += 1;
                        }
                        CachedTally::fresh(total)
                    }
                }
            }
        };
        let mut counter = Counter::resume(total, gamma, opts, tally.n12, tally.n21, tally.checked);
        // Can the carried evidence already decide the pair under this γ?
        // (A `Pending` continuation never can — its batch just failed to —
        // but a cache-served tally or a γ change can.)
        let served = if tally.complete() {
            Some(counter.final_verdict())
        } else if opts.stop_rule {
            counter.verdict()
        } else {
            None
        };
        if let Some(v) = served {
            if was_cached {
                stats.cache_hits += 1;
            }
            return BoundedCompare::Decided { verdict: orient(v), tally: Some(tally) };
        }
        if was_cached {
            stats.cache_resumes += 1;
        }
        let (early, cursor) = run_blocks_from(
            prep,
            lo,
            hi,
            &mut counter,
            opts,
            stats,
            self.straddle_mode(),
            tally.cursor,
            max_block_pairs,
        );
        let after = CachedTally {
            n12: counter.n12,
            n21: counter.n21,
            checked: counter.checked,
            total,
            cursor,
        };
        let verdict = match early {
            Some(v) => Some(v),
            None if after.complete() => Some(counter.final_verdict()),
            None => None,
        };
        match verdict {
            Some(v) => {
                if let Some(c) = cache.as_mut() {
                    c.store(lo, hi, after);
                }
                BoundedCompare::Decided { verdict: orient(v), tally: Some(after) }
            }
            None => BoundedCompare::Pending(after),
        }
    }
}

/// Outcome of one [`Kernel::compare_bounded`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedCompare {
    /// The comparison is decided. `tally` carries the memoizable canonical
    /// counting state when record counting happened (`None` when a
    /// bounding-box shortcut or the exhaustive kernel resolved the pair).
    Decided {
        /// The pair verdict, in the caller's `(g1, g2)` orientation.
        verdict: PairVerdict,
        /// Canonical-orientation tally after the deciding batch, if any.
        tally: Option<CachedTally>,
    },
    /// The batch limit was hit first; pass the tally back as `resume` (from
    /// any worker) to continue where this batch stopped.
    Pending(CachedTally),
}

/// The Figure 9(b) group-level bounding-box shortcuts, shared by every
/// prepared comparison path. `Some` when the boxes resolve the pair with
/// zero record comparisons.
fn bbox_shortcut(boxes: Option<(&Mbb, &Mbb)>, stats: &mut Stats) -> Option<PairVerdict> {
    let (b1, b2) = boxes?;
    if b1.strictly_dominates(b2) {
        stats.bbox_resolved += 1;
        return Some(PairVerdict { forward: DomLevel::GammaBar, backward: DomLevel::None });
    }
    if b2.strictly_dominates(b1) {
        stats.bbox_resolved += 1;
        return Some(PairVerdict { forward: DomLevel::None, backward: DomLevel::GammaBar });
    }
    if !b1.may_dominate(b2) && !b2.may_dominate(b1) {
        stats.bbox_resolved += 1;
        return Some(PairVerdict::INCOMPARABLE);
    }
    None
}

/// Compares groups `g1` and `g2` block-at-a-time over a prepared dataset
/// with the row-wise straddle loop.
///
/// Semantically identical to [`crate::compare_groups`] on the source
/// dataset: the same γ/γ̄ verdicts, the same Figure 9(b) group-level
/// shortcuts when `boxes` is given, and the same Section 3.3 stopping rule
/// (here evaluated after each block pair). The Figure 9(c) per-record region
/// decomposition is subsumed by the block classification.
pub fn compare_groups_blocked(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    compare_groups_prepared(prep, g1, g2, gamma, boxes, opts, stats, StraddleMode::RowWise)
}

/// [`compare_groups_blocked`] with the columnar bitmask straddle kernel:
/// bit-identical verdicts, tallies and [`Stats`] (the straddle loops charge
/// the same `records_compared` / `record_pairs`). Uses the AVX2 SIMD kernel
/// when the CPU and environment allow ([`crate::cpu::simd_active`]), the
/// scalar columnar loop otherwise; falls back to the row-wise loop if the
/// preparation carries no key lanes.
pub fn compare_groups_columnar(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    compare_groups_prepared(prep, g1, g2, gamma, boxes, opts, stats, StraddleMode::columnar_auto())
}

/// [`compare_groups_columnar`] with SIMD dispatch pinned off: always the
/// scalar columnar kernel. This is the differential oracle the SIMD suite
/// and the perf table compare against on AVX2 hardware.
pub fn compare_groups_columnar_scalar(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    compare_groups_prepared(prep, g1, g2, gamma, boxes, opts, stats, StraddleMode::ColumnarScalar)
}

#[allow(clippy::too_many_arguments)]
fn compare_groups_prepared(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
    mode: StraddleMode,
) -> PairVerdict {
    stats.group_pairs += 1;
    let total = crate::num::pair_product(prep.group_len(g1), prep.group_len(g2));
    let mut counter = Counter::new(total, gamma, opts);
    if let Some(v) = bbox_shortcut(boxes, stats) {
        return v;
    }
    match run_blocks_from(prep, g1, g2, &mut counter, opts, stats, mode, 0, u64::MAX).0 {
        Some(v) => v,
        None => counter.final_verdict(),
    }
}

/// The memoizing comparison path behind [`Kernel::compare_cached`]: counts
/// in canonical `(min, max)` group orientation so one cache entry serves
/// both orientations, serves memoized verdicts when they are already
/// certain under the caller's γ, and otherwise resumes the block cursor
/// from where the memoized tally stopped.
#[allow(clippy::too_many_arguments)]
fn compare_groups_cached(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    cache: &mut PairCache,
    stats: &mut Stats,
    mode: StraddleMode,
) -> PairVerdict {
    stats.group_pairs += 1;
    if let Some(v) = bbox_shortcut(boxes, stats) {
        return v;
    }
    let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
    let total = crate::num::pair_product(prep.group_len(lo), prep.group_len(hi));
    let (tally, was_cached) = match cache.lookup(lo, hi) {
        Some(t) => {
            debug_assert_eq!(t.total, total, "cache entry from a different dataset");
            (t, true)
        }
        None => {
            stats.cache_misses += 1;
            (CachedTally::fresh(total), false)
        }
    };
    let mut counter = Counter::resume(total, gamma, opts, tally.n12, tally.n21, tally.checked);
    // Can the memoized evidence already decide the pair under this γ?
    let served = if tally.complete() {
        Some(counter.final_verdict())
    } else if opts.stop_rule {
        counter.verdict()
    } else {
        None
    };
    let verdict = match served {
        Some(v) => {
            if was_cached {
                stats.cache_hits += 1;
            }
            v
        }
        None => {
            if was_cached {
                stats.cache_resumes += 1;
            }
            let (early, cursor) = run_blocks_from(
                prep,
                lo,
                hi,
                &mut counter,
                opts,
                stats,
                mode,
                tally.cursor,
                u64::MAX,
            );
            cache.store(
                lo,
                hi,
                CachedTally {
                    n12: counter.n12,
                    n21: counter.n21,
                    checked: counter.checked,
                    total,
                    cursor,
                },
            );
            match early {
                Some(v) => v,
                None => counter.final_verdict(),
            }
        }
    };
    if g1 <= g2 {
        verdict
    } else {
        verdict.flipped()
    }
}

/// Exact pair counts `(n12, n21)` for one group pair, computed with the
/// blocked kernel and no early termination.
///
/// This is the kernel-side ground truth the equivalence tests compare
/// against [`crate::DominationMatrix::build`].
pub fn count_pairs(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    stats: &mut Stats,
) -> (u64, u64) {
    let total = crate::num::pair_product(prep.group_len(g1), prep.group_len(g2));
    let opts = PairOptions { stop_rule: false, need_bar: false, corrected_bar: false };
    let mut counter = Counter::new(total, Gamma::DEFAULT, opts);
    let mode =
        if prep.lanes_enabled() { StraddleMode::columnar_auto() } else { StraddleMode::RowWise };
    let (early, _) = run_blocks_from(prep, g1, g2, &mut counter, opts, stats, mode, 0, u64::MAX);
    debug_assert!(early.is_none(), "stop rule is disabled");
    crate::invariants::check_pair_conservation(
        counter.checked,
        prep.group_len(g1),
        prep.group_len(g2),
    );
    debug_assert_eq!(counter.checked, counter.total);
    (counter.n12, counter.n21)
}

/// The block-pair loop, resumable at an arbitrary cursor position and
/// stoppable after a bounded number of block pairs.
///
/// Block pairs are visited in the linear cursor order `idx ↦
/// (idx / nb₂, idx mod nb₂)`; `start` pairs (which a [`PairCache`] tally
/// has already accounted for) are skipped by direct seek, in O(1) — this is
/// what keeps the pair-granular scheduler's bounded batches linear overall.
/// At most `limit` block pairs are then processed. Returns `Some` plus the
/// cursor *after* the deciding pair when the stopping rule resolves the
/// comparison early, or `None` plus the cursor after the last processed
/// pair — which is one past the end exactly when every block pair has been
/// accounted for (`counter.checked == counter.total`), and a resume point
/// for the next batch otherwise.
#[allow(clippy::too_many_arguments)]
fn run_blocks_from(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    counter: &mut Counter,
    opts: PairOptions,
    stats: &mut Stats,
    mode: StraddleMode,
    start: u64,
    limit: u64,
) -> (Option<PairVerdict>, u64) {
    let dim = prep.dim();
    let nb1 = prep.n_blocks(g1);
    let nb2 = prep.n_blocks(g2);
    let total_pairs = crate::num::wide(nb1).saturating_mul(crate::num::wide(nb2));
    let mut cursor = start.min(total_pairs);
    let stop_at = cursor.saturating_add(limit);
    // Direct seek: cursor c sits at block pair (c / nb₂, c mod nb₂). Both
    // quotients are bounded by the (usize) block counts, so `narrow` cannot
    // fail; the fallback value just keeps the loops empty.
    let a0 = crate::num::narrow(cursor / crate::num::wide(nb2)).unwrap_or(nb1);
    let mut b_next = crate::num::narrow(cursor % crate::num::wide(nb2)).unwrap_or(nb2);
    for a in a0..nb1 {
        let ba = prep.block(g1, a);
        let b_start = b_next;
        b_next = 0;
        for b in b_start..nb2 {
            cursor += 1;
            let bb = prep.block(g2, b);
            let pairs = crate::num::pair_product(ba.len(), bb.len());
            if dominates(ba.min, bb.max) {
                // Every record of `ba` is ≥ its block minimum, which already
                // dominates `bb`'s maximum: all k₁·k₂ pairs dominate forward.
                counter.n12 += pairs;
                counter.checked += pairs;
                stats.blocks_full += 1;
            } else if dominates(bb.min, ba.max) {
                counter.n21 += pairs;
                counter.checked += pairs;
                stats.blocks_full += 1;
            } else {
                // A direction is possible only if the best corner dominates
                // the other block's worst corner *and* the sum ranges allow
                // a strictly larger sum (dominance implies one).
                let fwd = dominates(ba.max, bb.min) && ba.sums[0] > bb.sums[bb.len() - 1];
                let bwd = dominates(bb.max, ba.min) && bb.sums[0] > ba.sums[ba.len() - 1];
                if !fwd && !bwd {
                    counter.checked += pairs;
                    stats.blocks_skipped += 1;
                } else {
                    match mode {
                        StraddleMode::ColumnarScalar | StraddleMode::ColumnarSimd
                            if prep.lanes_enabled() =>
                        {
                            let la = prep.lane_block(g1, a);
                            let lb = prep.lane_block(g2, b);
                            if mode == StraddleMode::ColumnarSimd {
                                crate::simd::straddle_lanes_simd(
                                    dim, &la, &lb, fwd, bwd, counter, stats,
                                );
                            } else {
                                crate::columnar::straddle_lanes(
                                    dim, &la, &lb, fwd, bwd, counter, stats,
                                );
                            }
                        }
                        _ => straddle(dim, &ba, &bb, fwd, bwd, counter, stats),
                    }
                    counter.checked += pairs;
                }
            }
            if opts.stop_rule && counter.checked < counter.total {
                if let Some(v) = counter.verdict() {
                    stats.early_stops += 1;
                    return (Some(v), cursor);
                }
            }
            if cursor >= stop_at {
                return (None, cursor);
            }
        }
    }
    (None, cursor)
}

/// Row-wise record loop for a straddling block pair. Only the directions
/// flagged possible are tested, and within a direction only the records
/// whose sums permit it: `bb.sums` is descending, so for each probe record
/// the strictly-greater prefix can only dominate it and the strictly-smaller
/// suffix can only be dominated by it.
fn straddle(
    dim: usize,
    ba: &BlockView<'_>,
    bb: &BlockView<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    let k2 = bb.len();
    let mut tests = 0u64;
    for (i, r1) in ba.rows.chunks_exact(dim).enumerate() {
        let s1 = ba.sums[i];
        let p = bb.sums.partition_point(|&s| crate::ord::gt(s, s1));
        if bwd {
            for r2 in bb.rows[..p * dim].chunks_exact(dim) {
                if dominates(r2, r1) {
                    counter.n21 += 1;
                }
            }
            tests += crate::num::wide(p);
        }
        if fwd {
            let q = p + bb.sums[p..].partition_point(|&s| crate::ord::ge(s, s1));
            for r2 in bb.rows[q * dim..].chunks_exact(dim) {
                if dominates(r1, r2) {
                    counter.n12 += 1;
                }
            }
            tests += crate::num::wide(k2 - q);
        }
    }
    stats.records_compared += tests;
    stats.record_pairs += tests;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DominationMatrix;
    use crate::testdata::{movie_directors, random_dataset};

    fn all_pair_options() -> Vec<PairOptions> {
        let mut out = Vec::new();
        for stop_rule in [false, true] {
            for need_bar in [false, true] {
                for corrected_bar in [false, true] {
                    out.push(PairOptions { stop_rule, need_bar, corrected_bar });
                }
            }
        }
        out
    }

    #[test]
    fn blocked_verdicts_match_unblocked_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(10, 9, 3, 600 + seed);
            for block_size in [1, 3, 64] {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                let boxes = Mbb::of_all_groups(&ds);
                for g1 in 0..ds.n_groups() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        let oracle = crate::paircount::compare_groups_exhaustive(
                            &ds,
                            g1,
                            g2,
                            Gamma::DEFAULT,
                        );
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let mut stats = Stats::default();
                                let v = compare_groups_blocked(
                                    &prep,
                                    g1,
                                    g2,
                                    Gamma::DEFAULT,
                                    pair_boxes,
                                    opts,
                                    &mut stats,
                                );
                                // `need_bar: false` folds γ̄ into γ; compare at
                                // the granularity the options promise.
                                assert_eq!(
                                    v.forward.dominates(),
                                    oracle.forward.dominates(),
                                    "seed={seed} bs={block_size} {g1}v{g2} {opts:?}"
                                );
                                assert_eq!(v.backward.dominates(), oracle.backward.dominates());
                                if opts.need_bar && !opts.corrected_bar {
                                    assert_eq!(v, oracle);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The columnar straddle kernel is bit-identical to the row-wise one:
    /// same verdicts *and* same `Stats`, for every option set, with and
    /// without boxes (kernel-level differential; the workspace-level suite
    /// in `tests/columnar_differential.rs` extends this across dimensions
    /// and algorithms).
    #[test]
    fn columnar_is_bit_identical_to_row_wise() {
        for seed in 0..6 {
            let ds = random_dataset(8, 9, 3, 900 + seed);
            for block_size in [1, 3, 8, 64] {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                assert!(prep.lanes_enabled());
                let boxes = Mbb::of_all_groups(&ds);
                for g1 in 0..ds.n_groups() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let mut s_row = Stats::default();
                                let mut s_col = Stats::default();
                                let row = compare_groups_blocked(
                                    &prep,
                                    g1,
                                    g2,
                                    Gamma::DEFAULT,
                                    pair_boxes,
                                    opts,
                                    &mut s_row,
                                );
                                let col = compare_groups_columnar(
                                    &prep,
                                    g1,
                                    g2,
                                    Gamma::DEFAULT,
                                    pair_boxes,
                                    opts,
                                    &mut s_col,
                                );
                                assert_eq!(
                                    row, col,
                                    "seed={seed} bs={block_size} {g1}v{g2} {opts:?}"
                                );
                                assert_eq!(
                                    s_row, s_col,
                                    "stats diverged: seed={seed} bs={block_size} {g1}v{g2} \
                                     {opts:?} boxes={use_boxes}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn ones(m: &DominationMatrix) -> u64 {
        let mut n = 0;
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                n += m.get(i, j) as u64;
            }
        }
        n
    }

    #[test]
    fn count_pairs_matches_domination_matrix() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 2).unwrap();
        for g1 in ds.group_ids() {
            for g2 in ds.group_ids() {
                if g1 == g2 {
                    continue;
                }
                let mut stats = Stats::default();
                let (n12, n21) = count_pairs(&prep, g1, g2, &mut stats);
                assert_eq!(n12, ones(&DominationMatrix::build(&ds, g1, g2)), "{g1} over {g2}");
                assert_eq!(n21, ones(&DominationMatrix::build(&ds, g2, g1)), "{g2} over {g1}");
            }
        }
    }

    #[test]
    fn full_blocks_are_detected_on_stacked_groups() {
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        let lo: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.1, 1.0]).collect();
        let hi: Vec<Vec<f64>> = (0..8).map(|i| vec![100.0 + i as f64, 100.0]).collect();
        b.push_group("lo", &lo).unwrap();
        b.push_group("hi", &hi).unwrap();
        let ds = b.build().unwrap();
        let prep = PreparedDataset::build(&ds, 4).unwrap();
        let mut stats = Stats::default();
        let (n12, n21) = count_pairs(&prep, 1, 0, &mut stats);
        assert_eq!((n12, n21), (64, 0));
        assert_eq!(stats.blocks_full, 4, "2x2 block pairs, all fully dominating");
        assert_eq!(stats.records_compared, 0);
    }

    #[test]
    fn kernel_dispatch_matches_compare_groups() {
        let ds = movie_directors();
        let exhaustive = Kernel::new(&ds, KernelConfig::Exhaustive).unwrap();
        let blocked = Kernel::new(&ds, KernelConfig::blocked()).unwrap();
        let columnar = Kernel::new(&ds, KernelConfig::columnar()).unwrap();
        assert!(exhaustive.prepared().is_none());
        assert!(blocked.prepared().is_some());
        assert!(columnar.prepared().is_some() && columnar.is_columnar());
        let opts = PairOptions::default();
        for g1 in ds.group_ids() {
            for g2 in (g1 + 1)..ds.n_groups() {
                let mut s1 = Stats::default();
                let mut s2 = Stats::default();
                let mut s3 = Stats::default();
                let v = exhaustive.compare(g1, g2, Gamma::DEFAULT, None, opts, &mut s1);
                assert_eq!(v, blocked.compare(g1, g2, Gamma::DEFAULT, None, opts, &mut s2));
                assert_eq!(v, columnar.compare(g1, g2, Gamma::DEFAULT, None, opts, &mut s3));
            }
        }
    }

    #[test]
    fn invalid_kernel_configs_are_rejected() {
        let ds = movie_directors();
        assert!(matches!(
            Kernel::new(&ds, KernelConfig::Blocked { block_size: 0 }),
            Err(Error::InvalidArgument(_))
        ));
        assert!(matches!(
            Kernel::new(&ds, KernelConfig::Columnar { block_size: 0 }),
            Err(Error::InvalidArgument(_))
        ));
        assert!(matches!(
            Kernel::new(&ds, KernelConfig::Columnar { block_size: MAX_LANE_BLOCK + 1 }),
            Err(Error::InvalidArgument(_))
        ));
        let big = PreparedDataset::build(&ds, MAX_LANE_BLOCK + 1).unwrap();
        assert!(!big.lanes_enabled());
        assert!(matches!(
            Kernel::with_prepared_columnar(&ds, &big),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn with_prepared_shares_one_preparation() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 8).unwrap();
        let kernel = Kernel::with_prepared(&ds, &prep);
        assert!(std::ptr::eq(kernel.prepared().unwrap(), &prep));
        assert_eq!(kernel.group_mbbs().unwrap(), &Mbb::of_all_groups(&ds)[..]);
        let columnar = Kernel::with_prepared_columnar(&ds, &prep).unwrap();
        assert!(columnar.is_columnar());
    }

    /// Cached comparisons serve and resume without flipping any verdict,
    /// in either orientation, across a γ sweep that tightens the threshold.
    #[test]
    fn cached_compare_matches_uncached_across_gammas() {
        for seed in 0..4 {
            let ds = random_dataset(8, 9, 3, 1200 + seed);
            let kernel = Kernel::new(&ds, KernelConfig::columnar()).unwrap();
            let mut cache = PairCache::new();
            let opts = PairOptions::default();
            for gamma in [0.5, 0.6, 0.75, 0.9] {
                let gamma = Gamma::new(gamma).unwrap();
                for g1 in 0..ds.n_groups() {
                    for g2 in 0..ds.n_groups() {
                        if g1 == g2 {
                            continue;
                        }
                        let mut s1 = Stats::default();
                        let mut s2 = Stats::default();
                        let plain = kernel.compare(g1, g2, gamma, None, opts, &mut s1);
                        let cached = kernel.compare_cached(
                            g1,
                            g2,
                            gamma,
                            None,
                            opts,
                            Some(&mut cache),
                            &mut s2,
                        );
                        assert_eq!(plain, cached, "seed={seed} γ={gamma} {g1}v{g2}");
                    }
                }
            }
            // Both orientations of every pair were queried at four γ values:
            // the second orientation and later sweeps must reuse evidence.
            assert!(!cache.is_empty());
        }
    }
}
