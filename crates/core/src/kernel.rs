//! The blocked counting kernel: block-at-a-time pair counting over a
//! [`PreparedDataset`].
//!
//! [`crate::compare_groups`] resolves a group pair one record comparison at
//! a time. The blocked kernel instead walks the fixed-size record blocks
//! prepared by [`PreparedDataset::build`] and classifies each *block pair*
//! first:
//!
//! * **full** — the first block's minimum corner dominates the second's
//!   maximum corner: every record of the first dominates every record of
//!   the second, contributing `k₁·k₂` pairs in O(1) (Figure 9(b) applied at
//!   block granularity);
//! * **skipped** — neither block's maximum corner dominates the other's
//!   minimum corner (or the coordinate-sum ranges rule a direction out):
//!   no pair in either direction can dominate, contributing 0 in O(1);
//! * **straddling** — anything else falls back to the record loop, where
//!   the descending-sum order lets each probe record binary-search the
//!   opposite block into a "can only be dominated" prefix and a "can only
//!   dominate" suffix, skipping the equal-sum middle outright.
//!
//! Every classification updates the same [`Counter`] the record-at-a-time
//! path uses, so the Section 3.3 stopping rule (evaluated after each block
//! pair) and the exact `n12`/`n21` tallies are preserved bit-for-bit.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircount::{compare_groups, Counter, DomLevel, PairOptions, PairVerdict};
use crate::prepared::{BlockView, PreparedDataset};
use crate::stats::Stats;

/// Selects the record-counting strategy used inside every group-vs-group
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelConfig {
    /// Compare records pairwise with [`crate::compare_groups`] (no
    /// preprocessing; the paper's configuration).
    #[default]
    Exhaustive,
    /// Preprocess each group once ([`PreparedDataset::build`]) and count
    /// block-at-a-time.
    Blocked {
        /// Records per block; see [`PreparedDataset::DEFAULT_BLOCK_SIZE`].
        block_size: usize,
    },
}

impl KernelConfig {
    /// The blocked kernel at the default block size.
    pub fn blocked() -> KernelConfig {
        KernelConfig::Blocked { block_size: PreparedDataset::DEFAULT_BLOCK_SIZE }
    }
}

enum Prep<'a> {
    None,
    Owned(PreparedDataset),
    Borrowed(&'a PreparedDataset),
}

/// A dataset bound to a counting strategy: the single entry point the
/// algorithms use for group-vs-group comparisons.
///
/// Construction performs the (one-time) preprocessing when the config asks
/// for the blocked kernel; [`Kernel::with_prepared`] reuses a
/// [`PreparedDataset`] built elsewhere, e.g. one shared by several
/// algorithm runs or worker threads. The kernel is plain data, so a shared
/// reference can be used from many threads concurrently.
pub struct Kernel<'a> {
    ds: &'a GroupedDataset,
    prep: Prep<'a>,
}

impl<'a> Kernel<'a> {
    /// Binds `ds` to the strategy selected by `config`.
    pub fn new(ds: &'a GroupedDataset, config: KernelConfig) -> Kernel<'a> {
        let prep = match config {
            KernelConfig::Exhaustive => Prep::None,
            KernelConfig::Blocked { block_size } => {
                Prep::Owned(PreparedDataset::build(ds, block_size))
            }
        };
        Kernel { ds, prep }
    }

    /// Binds `ds` to an existing preparation (always blocked).
    ///
    /// The preparation must have been built from `ds`.
    pub fn with_prepared(ds: &'a GroupedDataset, prep: &'a PreparedDataset) -> Kernel<'a> {
        debug_assert_eq!(ds.n_records(), prep.n_records());
        Kernel { ds, prep: Prep::Borrowed(prep) }
    }

    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &'a GroupedDataset {
        self.ds
    }

    /// The preparation, when the blocked kernel is active.
    #[inline]
    pub fn prepared(&self) -> Option<&PreparedDataset> {
        match &self.prep {
            Prep::None => None,
            Prep::Owned(p) => Some(p),
            Prep::Borrowed(p) => Some(p),
        }
    }

    /// Group bounding boxes precomputed during preparation (`None` in
    /// exhaustive mode); lets algorithms skip a redundant
    /// [`Mbb::of_all_groups`] pass.
    #[inline]
    pub fn group_mbbs(&self) -> Option<&[Mbb]> {
        self.prepared().map(|p| p.mbbs())
    }

    /// Compares groups `g1` and `g2` with this kernel's strategy; drop-in
    /// replacement for [`crate::compare_groups`].
    pub fn compare(
        &self,
        g1: GroupId,
        g2: GroupId,
        gamma: Gamma,
        boxes: Option<(&Mbb, &Mbb)>,
        opts: PairOptions,
        stats: &mut Stats,
    ) -> PairVerdict {
        match self.prepared() {
            Some(p) => compare_groups_blocked(p, g1, g2, gamma, boxes, opts, stats),
            None => compare_groups(self.ds, g1, g2, gamma, boxes, opts, stats),
        }
    }
}

/// Compares groups `g1` and `g2` block-at-a-time over a prepared dataset.
///
/// Semantically identical to [`crate::compare_groups`] on the source
/// dataset: the same γ/γ̄ verdicts, the same Figure 9(b) group-level
/// shortcuts when `boxes` is given, and the same Section 3.3 stopping rule
/// (here evaluated after each block pair). The Figure 9(c) per-record region
/// decomposition is subsumed by the block classification.
pub fn compare_groups_blocked(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    stats.group_pairs += 1;
    let total = crate::num::pair_product(prep.group_len(g1), prep.group_len(g2));
    let mut counter = Counter::new(total, gamma, opts);
    if let Some((b1, b2)) = boxes {
        // Figure 9(b) at group granularity, exactly as in `compare_groups`.
        if b1.strictly_dominates(b2) {
            stats.bbox_resolved += 1;
            return PairVerdict { forward: DomLevel::GammaBar, backward: DomLevel::None };
        }
        if b2.strictly_dominates(b1) {
            stats.bbox_resolved += 1;
            return PairVerdict { forward: DomLevel::None, backward: DomLevel::GammaBar };
        }
        if !b1.may_dominate(b2) && !b2.may_dominate(b1) {
            stats.bbox_resolved += 1;
            return PairVerdict::INCOMPARABLE;
        }
    }
    match run_blocks(prep, g1, g2, &mut counter, opts, stats) {
        Some(v) => v,
        None => counter.final_verdict(),
    }
}

/// Exact pair counts `(n12, n21)` for one group pair, computed with the
/// blocked kernel and no early termination.
///
/// This is the kernel-side ground truth the equivalence tests compare
/// against [`crate::DominationMatrix::build`].
pub fn count_pairs(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    stats: &mut Stats,
) -> (u64, u64) {
    let total = crate::num::pair_product(prep.group_len(g1), prep.group_len(g2));
    let opts = PairOptions { stop_rule: false, need_bar: false, corrected_bar: false };
    let mut counter = Counter::new(total, Gamma::DEFAULT, opts);
    let early = run_blocks(prep, g1, g2, &mut counter, opts, stats);
    debug_assert!(early.is_none(), "stop rule is disabled");
    crate::invariants::check_pair_conservation(
        counter.checked,
        prep.group_len(g1),
        prep.group_len(g2),
    );
    debug_assert_eq!(counter.checked, counter.total);
    (counter.n12, counter.n21)
}

/// The block-pair loop. Returns `Some` when the stopping rule resolves the
/// pair early, `None` when every block pair has been accounted for (in
/// which case `counter.checked == counter.total`).
fn run_blocks(
    prep: &PreparedDataset,
    g1: GroupId,
    g2: GroupId,
    counter: &mut Counter,
    opts: PairOptions,
    stats: &mut Stats,
) -> Option<PairVerdict> {
    let dim = prep.dim();
    for a in 0..prep.n_blocks(g1) {
        let ba = prep.block(g1, a);
        for b in 0..prep.n_blocks(g2) {
            let bb = prep.block(g2, b);
            let pairs = crate::num::pair_product(ba.len(), bb.len());
            if dominates(ba.min, bb.max) {
                // Every record of `ba` is ≥ its block minimum, which already
                // dominates `bb`'s maximum: all k₁·k₂ pairs dominate forward.
                counter.n12 += pairs;
                counter.checked += pairs;
                stats.blocks_full += 1;
            } else if dominates(bb.min, ba.max) {
                counter.n21 += pairs;
                counter.checked += pairs;
                stats.blocks_full += 1;
            } else {
                // A direction is possible only if the best corner dominates
                // the other block's worst corner *and* the sum ranges allow
                // a strictly larger sum (dominance implies one).
                let fwd = dominates(ba.max, bb.min) && ba.sums[0] > bb.sums[bb.len() - 1];
                let bwd = dominates(bb.max, ba.min) && bb.sums[0] > ba.sums[ba.len() - 1];
                if !fwd && !bwd {
                    counter.checked += pairs;
                    stats.blocks_skipped += 1;
                } else {
                    straddle(dim, &ba, &bb, fwd, bwd, counter, stats);
                    counter.checked += pairs;
                }
            }
            if opts.stop_rule && counter.checked < counter.total {
                if let Some(v) = counter.verdict() {
                    stats.early_stops += 1;
                    return Some(v);
                }
            }
        }
    }
    None
}

/// Record loop for a straddling block pair. Only the directions flagged
/// possible are tested, and within a direction only the records whose sums
/// permit it: `bb.sums` is descending, so for each probe record the
/// strictly-greater prefix can only dominate it and the strictly-smaller
/// suffix can only be dominated by it.
fn straddle(
    dim: usize,
    ba: &BlockView<'_>,
    bb: &BlockView<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    let k2 = bb.len();
    let mut tests = 0u64;
    for (i, r1) in ba.rows.chunks_exact(dim).enumerate() {
        let s1 = ba.sums[i];
        let p = bb.sums.partition_point(|&s| crate::ord::gt(s, s1));
        if bwd {
            for r2 in bb.rows[..p * dim].chunks_exact(dim) {
                if dominates(r2, r1) {
                    counter.n21 += 1;
                }
            }
            tests += crate::num::wide(p);
        }
        if fwd {
            let q = p + bb.sums[p..].partition_point(|&s| crate::ord::ge(s, s1));
            for r2 in bb.rows[q * dim..].chunks_exact(dim) {
                if dominates(r1, r2) {
                    counter.n12 += 1;
                }
            }
            tests += crate::num::wide(k2 - q);
        }
    }
    stats.records_compared += tests;
    stats.record_pairs += tests;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DominationMatrix;
    use crate::testdata::{movie_directors, random_dataset};

    fn all_pair_options() -> Vec<PairOptions> {
        let mut out = Vec::new();
        for stop_rule in [false, true] {
            for need_bar in [false, true] {
                for corrected_bar in [false, true] {
                    out.push(PairOptions { stop_rule, need_bar, corrected_bar });
                }
            }
        }
        out
    }

    #[test]
    fn blocked_verdicts_match_unblocked_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(10, 9, 3, 600 + seed);
            for block_size in [1, 3, 64] {
                let prep = PreparedDataset::build(&ds, block_size);
                let boxes = Mbb::of_all_groups(&ds);
                for g1 in 0..ds.n_groups() {
                    for g2 in (g1 + 1)..ds.n_groups() {
                        let oracle = crate::paircount::compare_groups_exhaustive(
                            &ds,
                            g1,
                            g2,
                            Gamma::DEFAULT,
                        );
                        for opts in all_pair_options() {
                            for use_boxes in [false, true] {
                                let pair_boxes = use_boxes.then(|| (&boxes[g1], &boxes[g2]));
                                let mut stats = Stats::default();
                                let v = compare_groups_blocked(
                                    &prep,
                                    g1,
                                    g2,
                                    Gamma::DEFAULT,
                                    pair_boxes,
                                    opts,
                                    &mut stats,
                                );
                                // `need_bar: false` folds γ̄ into γ; compare at
                                // the granularity the options promise.
                                assert_eq!(
                                    v.forward.dominates(),
                                    oracle.forward.dominates(),
                                    "seed={seed} bs={block_size} {g1}v{g2} {opts:?}"
                                );
                                assert_eq!(v.backward.dominates(), oracle.backward.dominates());
                                if opts.need_bar && !opts.corrected_bar {
                                    assert_eq!(v, oracle);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn ones(m: &DominationMatrix) -> u64 {
        let mut n = 0;
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                n += m.get(i, j) as u64;
            }
        }
        n
    }

    #[test]
    fn count_pairs_matches_domination_matrix() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 2);
        for g1 in ds.group_ids() {
            for g2 in ds.group_ids() {
                if g1 == g2 {
                    continue;
                }
                let mut stats = Stats::default();
                let (n12, n21) = count_pairs(&prep, g1, g2, &mut stats);
                assert_eq!(n12, ones(&DominationMatrix::build(&ds, g1, g2)), "{g1} over {g2}");
                assert_eq!(n21, ones(&DominationMatrix::build(&ds, g2, g1)), "{g2} over {g1}");
            }
        }
    }

    #[test]
    fn full_blocks_are_detected_on_stacked_groups() {
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        let lo: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.1, 1.0]).collect();
        let hi: Vec<Vec<f64>> = (0..8).map(|i| vec![100.0 + i as f64, 100.0]).collect();
        b.push_group("lo", &lo).unwrap();
        b.push_group("hi", &hi).unwrap();
        let ds = b.build().unwrap();
        let prep = PreparedDataset::build(&ds, 4);
        let mut stats = Stats::default();
        let (n12, n21) = count_pairs(&prep, 1, 0, &mut stats);
        assert_eq!((n12, n21), (64, 0));
        assert_eq!(stats.blocks_full, 4, "2x2 block pairs, all fully dominating");
        assert_eq!(stats.records_compared, 0);
    }

    #[test]
    fn kernel_dispatch_matches_compare_groups() {
        let ds = movie_directors();
        let exhaustive = Kernel::new(&ds, KernelConfig::Exhaustive);
        let blocked = Kernel::new(&ds, KernelConfig::blocked());
        assert!(exhaustive.prepared().is_none());
        assert!(blocked.prepared().is_some());
        let opts = PairOptions::default();
        for g1 in ds.group_ids() {
            for g2 in (g1 + 1)..ds.n_groups() {
                let mut s1 = Stats::default();
                let mut s2 = Stats::default();
                assert_eq!(
                    exhaustive.compare(g1, g2, Gamma::DEFAULT, None, opts, &mut s1),
                    blocked.compare(g1, g2, Gamma::DEFAULT, None, opts, &mut s2),
                );
            }
        }
    }

    #[test]
    fn with_prepared_shares_one_preparation() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 8);
        let kernel = Kernel::with_prepared(&ds, &prep);
        assert!(std::ptr::eq(kernel.prepared().unwrap(), &prep));
        assert_eq!(kernel.group_mbbs().unwrap(), &Mbb::of_all_groups(&ds)[..]);
    }
}
