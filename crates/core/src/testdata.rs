//! Shared fixtures for the crate's unit tests (compiled only under
//! `cfg(test)`).

use crate::dataset::{GroupedDataset, GroupedDatasetBuilder};

/// The Figure 1 movie table grouped by director: `(popularity, quality)`.
pub(crate) fn movie_directors() -> GroupedDataset {
    let mut b = GroupedDatasetBuilder::new(2);
    b.push_group("Cameron", &[vec![404.0, 8.0], vec![326.0, 8.6]]).unwrap();
    b.push_group("Nolan", &[vec![371.0, 8.3]]).unwrap();
    b.push_group("Tarantino", &[vec![313.0, 8.2], vec![557.0, 9.0]]).unwrap();
    b.push_group("Kershner", &[vec![362.0, 8.8]]).unwrap();
    b.push_group("Coppola", &[vec![531.0, 9.2], vec![76.0, 7.3]]).unwrap();
    b.push_group("Jackson", &[vec![518.0, 8.7]]).unwrap();
    b.push_group("Wiseau", &[vec![10.0, 3.2]]).unwrap();
    b.build().unwrap()
}

/// Deterministic xorshift generator for dependency-free pseudorandom tests.
pub(crate) fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.max(1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random grouped dataset: `n_groups` groups of up to `max_records` records
/// each, `dim` dimensions, values in `[0, 1)`.
pub(crate) fn random_dataset(
    n_groups: usize,
    max_records: usize,
    dim: usize,
    seed: u64,
) -> GroupedDataset {
    let mut next = lcg(seed);
    let mut b = GroupedDatasetBuilder::new(dim);
    for g in 0..n_groups {
        let len = 1 + (next() * max_records as f64) as usize;
        let rows: Vec<Vec<f64>> = (0..len).map(|_| (0..dim).map(|_| next()).collect()).collect();
        b.push_group(format!("g{g}"), &rows).unwrap();
    }
    b.build().unwrap()
}
