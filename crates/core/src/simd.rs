//! AVX2 straddle kernel: the hand-vectorized twin of [`crate::columnar`].
//!
//! The scalar columnar kernel already expresses one probe record against a
//! whole block as `u64` bitmasks; this module computes the same masks four
//! 64-bit lane elements per instruction with `std::arch` AVX2 intrinsics,
//! selected at runtime by [`crate::cpu::simd_active`]. The scalar path stays
//! as the differential oracle: verdicts, `n12`/`n21` tallies, and every
//! [`Stats`] charge are **bit-identical** (pinned by
//! `tests/simd_differential.rs`), so SIMD dispatch can never change a
//! result, only how fast it is produced.
//!
//! # Lane → vector mapping
//!
//! [`crate::prepared::PreparedDataset`] pads every key lane to
//! [`crate::prepared::LANE_VECTOR`] elements, so lane `d` of a block is an
//! exact sequence of `width / 4` unaligned `__m256i` loads; bit `j` of a
//! mask word corresponds to record `j`, and each `_mm256_movemask_pd` of a
//! compare result contributes four mask bits at offset `4·v`. Per probe:
//!
//! * the **strict-sum mask** is `_mm256_cmpgt_epi64(sum_lane, Σr₁)` (and the
//!   mirror for the forward direction). The sum lane is sorted descending,
//!   so this vector compare reproduces exactly the prefix/suffix masks the
//!   scalar kernel derives from its monotone cursors — which is why the
//!   `records_compared` / `record_pairs` popcount charges match bit-for-bit;
//! * the **per-dimension ≥ masks** use the identity `v ≥ k ⟺ ¬(k > v)`:
//!   `_mm256_andnot_si256(_mm256_cmpgt_epi64(k, v), acc)` folds each
//!   dimension into the accumulator seeded with the strict-sum compare, so
//!   dominance needs one compare + one andnot per dimension per four
//!   records, with a single movemask at the end.
//!
//! A **sum-lane prefilter** runs before the per-record loop: one packed
//! compare of the live sum-range corners (`b` first/last vs probe-block
//! first/last) classifies each direction as *skip* (no record of `b` can be
//! a sum-qualified candidate for any probe — the scalar kernel would add 0
//! everywhere, so the whole direction is elided), *full* (every live `b`
//! record is sum-qualified for every probe — the strict-sum mask is `valid`
//! without any per-chunk compare), or *mixed*. Both shortcuts preserve the
//! exact `Stats` charges because they only replace compares whose outcome
//! is constant over the block.
//!
//! # Safety
//!
//! This is the workspace's only sanctioned `unsafe` module (lint rule L7;
//! every `unsafe` token is line-pinned in `lint-allowlist.txt`). The
//! argument, in full (DESIGN.md §13):
//!
//! * **Feature availability** — the AVX2 intrinsics are only reached
//!   through [`straddle_lanes_simd`], whose callers gate on
//!   [`crate::cpu::simd_active`] (runtime `is_x86_feature_detected!`); the
//!   `#[target_feature]` functions are never called on a CPU without AVX2.
//! * **In-bounds loads** — `LaneBlock` guarantees `keys.len() ==
//!   (dim + 1) · width` with `width` a positive multiple of 4
//!   ([`crate::prepared::LANE_VECTOR`], asserted here), so every 32-byte
//!   load at `lane_base + 4·v`, `v < width / 4`, reads entirely inside one
//!   lane. Probe reads use `i < a.len ≤ a.width` and `d ≤ dim`.
//! * **Alignment & validity** — `_mm256_loadu_si256` is the unaligned load;
//!   `i64` has no invalid bit patterns, and the pad slots are initialized
//!   sentinels, so reading them is defined (their mask bits are discarded
//!   by `valid_mask`, exactly as in the scalar kernel).

use crate::paircount::Counter;
use crate::prepared::LaneBlock;
use crate::stats::Stats;

/// Counts the dominating pairs of one straddling block pair with the AVX2
/// kernel. Exact drop-in for the scalar [`crate::columnar::straddle_lanes`]:
/// identical `Counter` and [`Stats`] updates.
///
/// Callers must have checked [`crate::cpu::simd_active`]; on a non-x86-64
/// target this delegates to the scalar kernel (and is never selected by the
/// dispatcher anyway).
#[cfg(target_arch = "x86_64")]
pub(crate) fn straddle_lanes_simd(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    debug_assert!(crate::cpu::avx2_available(), "SIMD kernel selected without AVX2");
    // SAFETY: AVX2 is available — the dispatcher (and the debug assertion
    // above) gates on `cpu::simd_active()`, which wraps
    // `is_x86_feature_detected!("avx2")`. See the module-level safety notes
    // for the in-bounds argument of every load inside.
    unsafe { dispatch_avx2(dim, a, b, fwd, bwd, counter, stats) }
}

/// Non-x86-64 stub: the dispatcher never selects SIMD here
/// ([`crate::cpu::avx2_available`] is `false`), but the symbol keeps the
/// call graph target-independent.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn straddle_lanes_simd(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    crate::columnar::straddle_lanes(dim, a, b, fwd, bwd, counter, stats);
}

/// Monomorphization dispatch inside the AVX2 context, mirroring the scalar
/// kernel's `const D` fast path (here 1..=8; the dynamic tail keeps the
/// per-dimension trip count a runtime value).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dispatch_avx2(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    match dim {
        1 => straddle_avx2_impl(1, a, b, fwd, bwd, counter, stats),
        2 => straddle_avx2_impl(2, a, b, fwd, bwd, counter, stats),
        3 => straddle_avx2_impl(3, a, b, fwd, bwd, counter, stats),
        4 => straddle_avx2_impl(4, a, b, fwd, bwd, counter, stats),
        5 => straddle_avx2_impl(5, a, b, fwd, bwd, counter, stats),
        6 => straddle_avx2_impl(6, a, b, fwd, bwd, counter, stats),
        7 => straddle_avx2_impl(7, a, b, fwd, bwd, counter, stats),
        8 => straddle_avx2_impl(8, a, b, fwd, bwd, counter, stats),
        _ => straddle_avx2_impl(dim, a, b, fwd, bwd, counter, stats),
    }
}

/// The vector kernel proper. `#[inline]` so each constant-`dim` call site in
/// [`dispatch_avx2`] specializes the per-dimension loop, exactly like the
/// scalar kernel's `straddle_fixed` shims.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn straddle_avx2_impl(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    use crate::num::movemask4;
    use crate::prepared::LANE_VECTOR;
    use std::arch::x86_64::{
        __m256i, _mm256_andnot_si256, _mm256_castsi256_pd, _mm256_cmpgt_epi64, _mm256_loadu_si256,
        _mm256_movemask_pd, _mm256_set1_epi64x, _mm256_setr_epi64x,
    };

    let valid = b.valid_mask();
    let a_sum = a.lane(dim);
    let b_sum = b.lane(dim);
    let width = b.width;
    debug_assert_eq!(width % LANE_VECTOR, 0, "lane stride not padded to the vector width");
    debug_assert!(a.len >= 1 && b.len >= 1, "blocks are never empty");
    let n_chunks = width / LANE_VECTOR;

    // Sum-lane prefilter: one packed compare of the live sum-range corners
    // classifies both directions as skip / full / mixed (lanes: bwd-any,
    // bwd-full, fwd-any, fwd-full). `skip` means the scalar kernel's sum
    // mask would be 0 for every probe, `full` that it would be `valid`.
    let cls = movemask4(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(
        _mm256_setr_epi64x(b_sum[0], b_sum[b.len - 1], a_sum[0], a_sum[a.len - 1]),
        _mm256_setr_epi64x(a_sum[a.len - 1], a_sum[0], b_sum[b.len - 1], b_sum[0]),
    ))));
    let bwd = bwd && cls & 0b0001 != 0;
    let bwd_full = cls & 0b0010 != 0;
    let fwd = fwd && cls & 0b0100 != 0;
    let fwd_full = cls & 0b1000 != 0;
    if !fwd && !bwd {
        return;
    }

    let a_keys = a.keys.as_ptr();
    let b_keys = b.keys.as_ptr();
    let b_sums = b_sum.as_ptr();
    let a_width = a.width;
    let ones = _mm256_set1_epi64x(-1);

    let mut n12 = 0u64;
    let mut n21 = 0u64;
    let mut tests = 0u64;
    for (i, &probe_sum) in a_sum.iter().enumerate().take(a.len) {
        let s1v = _mm256_set1_epi64x(probe_sum);
        if bwd {
            let mut sum_gt = 0u64;
            let mut all_ge = 0u64;
            for v in 0..n_chunks {
                let at = v * LANE_VECTOR;
                // Strict-sum mask: b-records with a strictly larger sum. In
                // `full` mode the compare is constant-true over the block.
                let seed = if bwd_full {
                    ones
                } else {
                    let sums = _mm256_loadu_si256(b_sums.add(at) as *const __m256i);
                    _mm256_cmpgt_epi64(sums, s1v)
                };
                sum_gt |= movemask4(_mm256_movemask_pd(_mm256_castsi256_pd(seed))) << at;
                // Fold the per-dimension ≥ masks into the sum seed:
                // v ≥ k ⟺ ¬(k > v).
                let mut acc = seed;
                for d in 0..dim {
                    let key = _mm256_set1_epi64x(*a_keys.add(d * a_width + i));
                    let lane = _mm256_loadu_si256(b_keys.add(d * width + at) as *const __m256i);
                    acc = _mm256_andnot_si256(_mm256_cmpgt_epi64(key, lane), acc);
                }
                all_ge |= movemask4(_mm256_movemask_pd(_mm256_castsi256_pd(acc))) << at;
            }
            sum_gt &= valid;
            tests += u64::from(sum_gt.count_ones());
            n21 += u64::from((all_ge & valid).count_ones());
        }
        if fwd {
            let mut sum_lt = 0u64;
            let mut all_le = 0u64;
            for v in 0..n_chunks {
                let at = v * LANE_VECTOR;
                let seed = if fwd_full {
                    ones
                } else {
                    let sums = _mm256_loadu_si256(b_sums.add(at) as *const __m256i);
                    _mm256_cmpgt_epi64(s1v, sums)
                };
                sum_lt |= movemask4(_mm256_movemask_pd(_mm256_castsi256_pd(seed))) << at;
                // v ≤ k ⟺ ¬(v > k).
                let mut acc = seed;
                for d in 0..dim {
                    let key = _mm256_set1_epi64x(*a_keys.add(d * a_width + i));
                    let lane = _mm256_loadu_si256(b_keys.add(d * width + at) as *const __m256i);
                    acc = _mm256_andnot_si256(_mm256_cmpgt_epi64(lane, key), acc);
                }
                all_le |= movemask4(_mm256_movemask_pd(_mm256_castsi256_pd(acc))) << at;
            }
            sum_lt &= valid;
            tests += u64::from(sum_lt.count_ones());
            n12 += u64::from((all_le & valid).count_ones());
        }
    }
    counter.n12 += n12;
    counter.n21 += n21;
    stats.records_compared += tests;
    stats.record_pairs += tests;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;
    use crate::paircount::PairOptions;
    use crate::prepared::PreparedDataset;
    use crate::testdata::random_dataset;

    /// Module-level differential: the SIMD kernel's tallies and work charges
    /// equal the scalar columnar kernel's on every block pair, across the
    /// monomorphization boundary. (The workspace suite in
    /// `tests/simd_differential.rs` extends this to verdicts, all
    /// `PairOptions`, and whole algorithm runs.)
    #[test]
    fn simd_matches_scalar_on_every_block_pair() {
        if !crate::cpu::simd_active() {
            eprintln!("skipping: AVX2 unavailable or AGGSKY_FORCE_SCALAR set");
            return;
        }
        for dim in [1usize, 2, 4, 5, 8, 9] {
            let ds = random_dataset(4, 11, dim, 7 + dim as u64);
            for block_size in [1usize, 7, 64] {
                let prep = PreparedDataset::build(&ds, block_size).unwrap();
                for g1 in 0..ds.n_groups() {
                    for g2 in 0..ds.n_groups() {
                        if g1 == g2 {
                            continue;
                        }
                        for ba in 0..prep.n_blocks(g1) {
                            for bb in 0..prep.n_blocks(g2) {
                                let la = prep.lane_block(g1, ba);
                                let lb = prep.lane_block(g2, bb);
                                for (f, w) in [(true, true), (true, false), (false, true)] {
                                    let opts = PairOptions::default();
                                    let total = crate::num::pair_product(la.len, lb.len);
                                    let mut c_simd = Counter::new(total, Gamma::DEFAULT, opts);
                                    let mut c_ref = Counter::new(total, Gamma::DEFAULT, opts);
                                    let mut s_simd = Stats::default();
                                    let mut s_ref = Stats::default();
                                    straddle_lanes_simd(
                                        dim,
                                        &la,
                                        &lb,
                                        f,
                                        w,
                                        &mut c_simd,
                                        &mut s_simd,
                                    );
                                    crate::columnar::straddle_lanes(
                                        dim, &la, &lb, f, w, &mut c_ref, &mut s_ref,
                                    );
                                    let tag = format!(
                                        "dim={dim} bs={block_size} {g1}v{g2} blocks {ba}/{bb} \
                                         fwd={f} bwd={w}"
                                    );
                                    assert_eq!(
                                        (c_simd.n12, c_simd.n21),
                                        (c_ref.n12, c_ref.n21),
                                        "{tag}"
                                    );
                                    assert_eq!(s_simd, s_ref, "stats drift: {tag}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
