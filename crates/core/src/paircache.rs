//! Cross-γ memoization of pair counts.
//!
//! Every algorithm resolves a group pair by counting dominating record
//! pairs, and a γ-sensitivity sweep (or two algorithms sharing one run)
//! recomputes the *same* tallies: the counts `n12`/`n21` depend only on the
//! data, never on γ or on [`crate::PairOptions`]. [`PairCache`] memoizes
//! the [`Counter`](crate::paircount) state per unordered group pair —
//! including *partial* tallies cut short by the Section 3.3 stopping rule —
//! so a later query can either serve the verdict outright or resume
//! counting from where the previous one stopped.
//!
//! Resumption is sound because of two properties (DESIGN.md §12):
//!
//! 1. the blocked kernel counts block pairs in a fixed deterministic order
//!    (a single linear cursor over `(block of g_lo) × (block of g_hi)` in
//!    canonical `g_lo < g_hi` orientation), so a cached `cursor` uniquely
//!    identifies *which* pairs the tallies cover, regardless of which
//!    algorithm, straddle kernel (row-wise or columnar — they tally
//!    identically), or γ produced them;
//! 2. every verdict the stopping rule accepts is *certain* — equal to the
//!    full-count verdict — so serving a cached partial under a new γ (when
//!    its `verdict()` resolves) and finishing the count (when it does not)
//!    agree with what an uncached run would conclude.
//!
//! The cache is deliberately **not** synchronized: the parallel scheduler
//! gives each worker its own shard ([`crate::parallel_skyline`]), which
//! costs duplicate work across workers but never serializes them. Budget
//! accounting in [`crate::RunContext`] charges only freshly counted pairs
//! (`Stats::record_pairs` is advanced by the kernel loops, not by cache
//! hits), so resumed work is ticked exactly once across a sweep.

use crate::dataset::GroupId;
use crate::error::{Error, Result};
use crate::prepared::PreparedDataset;
use std::collections::HashMap;

/// Memoized counting state of one group pair, in canonical orientation
/// (`n12` counts records of the *smaller* group id dominating the larger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedTally {
    /// Dominating pairs `g_lo → g_hi` among the first `checked` pairs.
    pub n12: u64,
    /// Dominating pairs `g_hi → g_lo` among the first `checked` pairs.
    pub n21: u64,
    /// Record pairs accounted for so far (classified, skipped or counted).
    pub checked: u64,
    /// The pair-count denominator `|g_lo|·|g_hi|`.
    pub total: u64,
    /// Next block-pair index of the kernel's linear block cursor; counting
    /// resumes here when a tighter γ needs more evidence.
    pub cursor: u64,
}

impl CachedTally {
    /// A tally covering no pairs yet.
    #[inline]
    pub fn fresh(total: u64) -> CachedTally {
        CachedTally { n12: 0, n21: 0, checked: 0, total, cursor: 0 }
    }

    /// Whether every pair has been accounted for (nothing left to resume).
    #[inline]
    pub fn complete(&self) -> bool {
        self.checked == self.total
    }
}

/// A memo table of [`CachedTally`] entries keyed by unordered group pair,
/// shared across algorithms within a run and across the γ-sweep driver
/// ([`crate::gamma_sweep`]).
///
/// Valid only against one fixed dataset/preparation; callers own that
/// association (the sweep driver builds the preparation and the cache side
/// by side, the parallel scheduler keeps one shard per worker).
#[derive(Debug, Clone, Default)]
pub struct PairCache {
    map: HashMap<(GroupId, GroupId), CachedTally>,
}

impl PairCache {
    /// An empty cache.
    pub fn new() -> PairCache {
        PairCache::default()
    }

    /// Number of memoized pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized tally for the unordered pair `{g1, g2}`, if any.
    #[inline]
    pub fn lookup(&self, g1: GroupId, g2: GroupId) -> Option<CachedTally> {
        self.map.get(&Self::key(g1, g2)).copied()
    }

    /// Stores (or overwrites) the tally for the unordered pair `{g1, g2}`.
    /// The tally must be oriented canonically: `n12` for the smaller id
    /// dominating the larger.
    #[inline]
    pub fn store(&mut self, g1: GroupId, g2: GroupId, tally: CachedTally) {
        self.map.insert(Self::key(g1, g2), tally);
    }

    /// Drops every entry (e.g. when switching datasets).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Drops every tally touching group `g` — the coarse revision primitive
    /// for a group whose membership changed: any memoized count involving
    /// `g` now has a stale denominator and must be recounted. Entries
    /// between two *other* groups are untouched (their record sets did not
    /// change). Returns how many entries were dropped.
    pub fn invalidate_group(&mut self, g: GroupId) -> usize {
        let before = self.map.len();
        self.map.retain(|&(lo, hi), _| lo != g && hi != g);
        before - self.map.len()
    }

    /// Replaces the tally of the unordered pair `{g1, g2}` with a *complete*
    /// delta-adjusted count — the fine revision primitive: after an
    /// insert/delete batch the maintenance layer recounts only the affected
    /// cross pairs (through the kernel, against a mini delta preparation)
    /// and folds the adjustment into the memoized tally here. `n12` counts
    /// records of `g1` dominating `g2`; orientation is canonicalized
    /// internally, so callers may pass either order. The stored entry is
    /// complete (`checked == total`, cursor rewound to 0), which
    /// [`crate::Kernel::compare_bounded`] serves without ever resuming, and
    /// which [`PairCache::ingest`] accepts against a preparation of the
    /// revised dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `n12 + n21 > total` — a
    /// delta adjustment that produced an impossible tally must never be
    /// memoized.
    pub fn revise(
        &mut self,
        g1: GroupId,
        g2: GroupId,
        n12: u64,
        n21: u64,
        total: u64,
    ) -> Result<()> {
        if n12.saturating_add(n21) > total {
            return Err(Error::InvalidArgument(format!(
                "revised tally for pair ({g1}, {g2}) is impossible: n12 {n12} + n21 {n21} \
                 exceeds the {total} record pairs"
            )));
        }
        let (n12, n21) = if g1 <= g2 { (n12, n21) } else { (n21, n12) };
        self.map
            .insert(Self::key(g1, g2), CachedTally { n12, n21, checked: total, total, cursor: 0 });
        Ok(())
    }

    /// Every memoized entry in canonical orientation, sorted ascending by
    /// key — a deterministic order, so two exports of equal caches are
    /// byte-identical once serialized (the persist layer relies on this).
    pub fn export(&self) -> Vec<((GroupId, GroupId), CachedTally)> {
        let mut entries: Vec<_> = self.map.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// Validates and installs externally produced entries (e.g. read back
    /// from a checkpoint frame) against the preparation the cache will be
    /// used with. Every entry must name groups that exist, carry the exact
    /// pair-count denominator `|g_lo|·|g_hi|`, keep its tallies within
    /// `checked ≤ total`, and point its resume cursor inside the kernel's
    /// `n_blocks(lo) × n_blocks(hi)` block-pair space. Validation is
    /// all-or-nothing: on any violation the cache is left untouched and a
    /// typed [`Error::CorruptCheckpoint`] names the offending pair —
    /// resuming a kernel from an out-of-range cursor would silently
    /// miscount, which is exactly what this refuses to allow.
    pub fn ingest(
        &mut self,
        prep: &PreparedDataset,
        entries: &[((GroupId, GroupId), CachedTally)],
    ) -> Result<usize> {
        let n = prep.n_groups();
        for &((lo, hi), t) in entries {
            let reject = |why: String| {
                Error::CorruptCheckpoint(format!("pair cache entry ({lo}, {hi}): {why}"))
            };
            if lo >= hi {
                return Err(reject("not in canonical lo < hi orientation".into()));
            }
            if hi >= n {
                return Err(reject(format!("dataset has only {n} groups")));
            }
            let total = crate::num::pair_count(prep.group_len(lo), prep.group_len(hi))?;
            if t.total != total {
                return Err(reject(format!(
                    "denominator {} does not match |g_lo|*|g_hi| = {total}",
                    t.total
                )));
            }
            if t.checked > t.total {
                return Err(reject(format!("checked {} exceeds total {}", t.checked, t.total)));
            }
            if t.n12 > t.checked || t.n21 > t.checked {
                return Err(reject(format!(
                    "tallies {}/{} exceed the {} pairs checked",
                    t.n12, t.n21, t.checked
                )));
            }
            let block_pairs = crate::num::wide(prep.n_blocks(lo))
                .saturating_mul(crate::num::wide(prep.n_blocks(hi)));
            if t.cursor > block_pairs {
                return Err(reject(format!(
                    "block cursor {} outside the {block_pairs} block pairs of this preparation",
                    t.cursor
                )));
            }
        }
        for &((lo, hi), t) in entries {
            self.map.insert((lo, hi), t);
        }
        Ok(entries.len())
    }

    #[inline]
    fn key(g1: GroupId, g2: GroupId) -> (GroupId, GroupId) {
        if g1 <= g2 {
            (g1, g2)
        } else {
            (g2, g1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_orientation_free() {
        let mut cache = PairCache::new();
        assert!(cache.is_empty());
        let t = CachedTally { n12: 3, n21: 1, checked: 10, total: 12, cursor: 2 };
        cache.store(7, 2, t);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(2, 7), Some(t));
        assert_eq!(cache.lookup(7, 2), Some(t));
        assert!(!t.complete());
        cache.clear();
        assert!(cache.lookup(2, 7).is_none());
    }

    #[test]
    fn fresh_tally_is_incomplete_until_total_zero() {
        assert!(!CachedTally::fresh(5).complete());
        assert!(CachedTally::fresh(0).complete());
    }

    #[test]
    fn export_is_sorted_and_ingest_round_trips() {
        let ds = crate::testdata::random_dataset(6, 4, 2, 1234);
        let prep = PreparedDataset::build(&ds, 2).unwrap();
        let mut cache = PairCache::new();
        let t = |lo: GroupId, hi: GroupId| {
            CachedTally::fresh(crate::num::pair_count(ds.group_len(lo), ds.group_len(hi)).unwrap())
        };
        cache.store(4, 1, t(1, 4));
        cache.store(0, 3, t(0, 3));
        cache.store(2, 5, t(2, 5));
        let exported = cache.export();
        let keys: Vec<_> = exported.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(0, 3), (1, 4), (2, 5)], "export must be sorted");
        let mut restored = PairCache::new();
        assert_eq!(restored.ingest(&prep, &exported).unwrap(), 3);
        assert_eq!(restored.export(), exported);
    }

    #[test]
    fn invalidate_group_drops_exactly_the_touching_entries() {
        let mut cache = PairCache::new();
        for (lo, hi) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            cache.store(lo, hi, CachedTally::fresh(6));
        }
        assert_eq!(cache.invalidate_group(2), 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(0, 1).is_some());
        assert!(cache.lookup(0, 2).is_none());
        assert_eq!(cache.invalidate_group(7), 0, "absent group drops nothing");
    }

    #[test]
    fn revise_canonicalizes_orientation_and_stores_complete() {
        let mut cache = PairCache::new();
        cache.revise(5, 2, 4, 1, 12).unwrap();
        let t = cache.lookup(2, 5).expect("revised entry present");
        assert_eq!((t.n12, t.n21), (1, 4), "n12 must count the smaller id dominating");
        assert!(t.complete());
        assert_eq!(t.cursor, 0);
        // Same-orientation overwrite.
        cache.revise(2, 5, 7, 0, 12).unwrap();
        assert_eq!(cache.lookup(5, 2).map(|t| t.n12), Some(7));
        // Impossible tallies are refused without mutating.
        let err = cache.revise(2, 5, 10, 3, 12).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
        assert_eq!(cache.lookup(2, 5).map(|t| t.n12), Some(7));
    }

    #[test]
    fn ingest_rejects_malformed_entries_without_mutating() {
        use crate::error::Error;
        let ds = crate::testdata::random_dataset(6, 4, 2, 1235);
        let prep = PreparedDataset::build(&ds, 2).unwrap();
        let ok_total = crate::num::pair_count(ds.group_len(0), ds.group_len(1)).unwrap();
        let ok = ((0, 1), CachedTally::fresh(ok_total));
        let cases: Vec<((GroupId, GroupId), CachedTally)> = vec![
            // Non-canonical orientation.
            ((1, 0), CachedTally::fresh(ok_total)),
            // Out-of-range group.
            ((0, 99), CachedTally::fresh(ok_total)),
            // Wrong denominator.
            ((0, 1), CachedTally::fresh(ok_total + 1)),
            // checked > total.
            (
                (0, 1),
                CachedTally { n12: 0, n21: 0, checked: ok_total + 1, total: ok_total, cursor: 0 },
            ),
            // Tally exceeding checked.
            ((0, 1), CachedTally { n12: 5, n21: 0, checked: 1, total: ok_total, cursor: 0 }),
            // Cursor beyond the block-pair space.
            ((0, 1), CachedTally { n12: 0, n21: 0, checked: 0, total: ok_total, cursor: u64::MAX }),
        ];
        for bad in cases {
            let mut cache = PairCache::new();
            // All-or-nothing: the valid leading entry must not survive the
            // rejected batch.
            let err = cache.ingest(&prep, &[ok, bad]).unwrap_err();
            assert!(matches!(err, Error::CorruptCheckpoint(_)), "{bad:?}: {err}");
            assert!(cache.is_empty(), "{bad:?} left the cache mutated");
        }
    }
}
