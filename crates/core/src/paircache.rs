//! Cross-γ memoization of pair counts.
//!
//! Every algorithm resolves a group pair by counting dominating record
//! pairs, and a γ-sensitivity sweep (or two algorithms sharing one run)
//! recomputes the *same* tallies: the counts `n12`/`n21` depend only on the
//! data, never on γ or on [`crate::PairOptions`]. [`PairCache`] memoizes
//! the [`Counter`](crate::paircount) state per unordered group pair —
//! including *partial* tallies cut short by the Section 3.3 stopping rule —
//! so a later query can either serve the verdict outright or resume
//! counting from where the previous one stopped.
//!
//! Resumption is sound because of two properties (DESIGN.md §12):
//!
//! 1. the blocked kernel counts block pairs in a fixed deterministic order
//!    (a single linear cursor over `(block of g_lo) × (block of g_hi)` in
//!    canonical `g_lo < g_hi` orientation), so a cached `cursor` uniquely
//!    identifies *which* pairs the tallies cover, regardless of which
//!    algorithm, straddle kernel (row-wise or columnar — they tally
//!    identically), or γ produced them;
//! 2. every verdict the stopping rule accepts is *certain* — equal to the
//!    full-count verdict — so serving a cached partial under a new γ (when
//!    its `verdict()` resolves) and finishing the count (when it does not)
//!    agree with what an uncached run would conclude.
//!
//! The cache is deliberately **not** synchronized: the parallel scheduler
//! gives each worker its own shard ([`crate::parallel_skyline`]), which
//! costs duplicate work across workers but never serializes them. Budget
//! accounting in [`crate::RunContext`] charges only freshly counted pairs
//! (`Stats::record_pairs` is advanced by the kernel loops, not by cache
//! hits), so resumed work is ticked exactly once across a sweep.

use crate::dataset::GroupId;
use std::collections::HashMap;

/// Memoized counting state of one group pair, in canonical orientation
/// (`n12` counts records of the *smaller* group id dominating the larger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedTally {
    /// Dominating pairs `g_lo → g_hi` among the first `checked` pairs.
    pub n12: u64,
    /// Dominating pairs `g_hi → g_lo` among the first `checked` pairs.
    pub n21: u64,
    /// Record pairs accounted for so far (classified, skipped or counted).
    pub checked: u64,
    /// The pair-count denominator `|g_lo|·|g_hi|`.
    pub total: u64,
    /// Next block-pair index of the kernel's linear block cursor; counting
    /// resumes here when a tighter γ needs more evidence.
    pub cursor: u64,
}

impl CachedTally {
    /// A tally covering no pairs yet.
    #[inline]
    pub fn fresh(total: u64) -> CachedTally {
        CachedTally { n12: 0, n21: 0, checked: 0, total, cursor: 0 }
    }

    /// Whether every pair has been accounted for (nothing left to resume).
    #[inline]
    pub fn complete(&self) -> bool {
        self.checked == self.total
    }
}

/// A memo table of [`CachedTally`] entries keyed by unordered group pair,
/// shared across algorithms within a run and across the γ-sweep driver
/// ([`crate::gamma_sweep`]).
///
/// Valid only against one fixed dataset/preparation; callers own that
/// association (the sweep driver builds the preparation and the cache side
/// by side, the parallel scheduler keeps one shard per worker).
#[derive(Debug, Default)]
pub struct PairCache {
    map: HashMap<(GroupId, GroupId), CachedTally>,
}

impl PairCache {
    /// An empty cache.
    pub fn new() -> PairCache {
        PairCache::default()
    }

    /// Number of memoized pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized tally for the unordered pair `{g1, g2}`, if any.
    #[inline]
    pub fn lookup(&self, g1: GroupId, g2: GroupId) -> Option<CachedTally> {
        self.map.get(&Self::key(g1, g2)).copied()
    }

    /// Stores (or overwrites) the tally for the unordered pair `{g1, g2}`.
    /// The tally must be oriented canonically: `n12` for the smaller id
    /// dominating the larger.
    #[inline]
    pub fn store(&mut self, g1: GroupId, g2: GroupId, tally: CachedTally) {
        self.map.insert(Self::key(g1, g2), tally);
    }

    /// Drops every entry (e.g. when switching datasets).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    #[inline]
    fn key(g1: GroupId, g2: GroupId) -> (GroupId, GroupId) {
        if g1 <= g2 {
            (g1, g2)
        } else {
            (g2, g1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_orientation_free() {
        let mut cache = PairCache::new();
        assert!(cache.is_empty());
        let t = CachedTally { n12: 3, n21: 1, checked: 10, total: 12, cursor: 2 };
        cache.store(7, 2, t);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(2, 7), Some(t));
        assert_eq!(cache.lookup(7, 2), Some(t));
        assert!(!t.complete());
        cache.clear();
        assert!(cache.lookup(2, 7).is_none());
    }

    #[test]
    fn fresh_tally_is_incomplete_until_total_zero() {
        assert!(!CachedTally::fresh(5).complete());
        assert!(CachedTally::fresh(0).complete());
    }
}
