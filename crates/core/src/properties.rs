//! Executable checkers for the paper's formal properties (Section 2).
//!
//! These functions turn the paper's propositions into testable predicates:
//! the test suite runs them over hand-picked and randomized datasets, and
//! they double as documentation of what each property means operationally.

use crate::dataset::{GroupId, GroupedDataset, GroupedDatasetBuilder};
use crate::dominance::Direction;
use crate::error::Result;
use crate::gamma::{domination_probability, Gamma};

/// Property 1 (Asymmetry): `R ≻_γ S ⟹ S ⊁_γ R`, for every ordered pair of
/// groups. Holds whenever `γ ≥ 0.5` (Proposition 1). Returns the violating
/// pair, if any.
pub fn check_asymmetry(ds: &GroupedDataset, gamma: Gamma) -> Option<(GroupId, GroupId)> {
    let n = ds.n_groups();
    for r in 0..n {
        for s in (r + 1)..n {
            let p_rs = domination_probability(ds, r, s);
            let p_sr = domination_probability(ds, s, r);
            if gamma.dominated(p_rs) && gamma.dominated(p_sr) {
                return Some((r, s));
            }
        }
    }
    None
}

/// Property 2 (Stability to updates): removing records from `R` (keeping it
/// non-empty) moves `γ' = p(R' ≻ S)` by at most `γ(1−ε) ≤ γ' ≤ γ(1+ε)`.
///
/// The paper states `ε = (|R|−|R'|)/|R|`, but the algebra of its own proof
/// (rewriting `|R|·|S| = |R'|·|S| + (|R|−|R'|)·|S|` and dividing by
/// `|R'|·|S|`) produces the ratio `(|R|−|R'|)/|R'|` — the removed fraction
/// relative to the *remaining* group. We use the proof-consistent form; with
/// the paper's ε the upper bound is the equivalent `γ' ≤ γ/(1−ε)`.
///
/// `removed` lists record indices (within group `r`) to delete.
pub fn check_update_stability(
    ds: &GroupedDataset,
    r: GroupId,
    s: GroupId,
    removed: &[usize],
) -> Result<UpdateStability> {
    let before = domination_probability(ds, r, s);
    let reduced = remove_records(ds, r, removed)?;
    let after = domination_probability(&reduced, r, s);
    let remaining = ds.group_len(r) - removed.len();
    let eps = removed.len() as f64 / remaining as f64;
    // Upper bound γ(1+ε) holds for any γ; the lower bound in the γ(1−ε)
    // form needs γ ≥ 1/2, with the pre-specialization bound (1+ε)γ − ε
    // applying in general.
    let upper_ok = crate::ord::le(after, before * (1.0 + eps) + 1e-12);
    let lower_ok = if crate::ord::ge(before, 0.5) {
        after >= before * (1.0 - eps) - 1e-12
    } else {
        after >= (1.0 + eps) * before - eps - 1e-12
    };
    Ok(UpdateStability { before, after, epsilon: eps, within_bounds: upper_ok && lower_ok })
}

/// Outcome of a [`check_update_stability`] experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStability {
    /// `p(R ≻ S)` before the removal.
    pub before: f64,
    /// `p(R' ≻ S)` after the removal.
    pub after: f64,
    /// Fraction of `R` that was removed.
    pub epsilon: f64,
    /// Whether the paper's bounds held.
    pub within_bounds: bool,
}

/// Proposition 2 (Stability to monotone transformations): applying strictly
/// increasing per-dimension functions to every record leaves every
/// `p(S ≻ R)` unchanged. Returns the maximum absolute difference over all
/// ordered group pairs (0 when the property holds).
pub fn monotone_transform_deviation(
    ds: &GroupedDataset,
    transforms: &[&dyn Fn(f64) -> f64],
) -> Result<f64> {
    let transformed = apply_transforms(ds, transforms)?;
    let n = ds.n_groups();
    let mut max_dev = 0.0f64;
    for s in 0..n {
        for r in 0..n {
            if s == r {
                continue;
            }
            let a = domination_probability(ds, s, r);
            let b = domination_probability(&transformed, s, r);
            max_dev = max_dev.max((a - b).abs());
        }
    }
    Ok(max_dev)
}

/// Rebuilds the dataset with the listed records removed from group `r`.
fn remove_records(ds: &GroupedDataset, r: GroupId, removed: &[usize]) -> Result<GroupedDataset> {
    let mut b = GroupedDatasetBuilder::new(ds.dim()).trusted_labels();
    for g in ds.group_ids() {
        let rows: Vec<Vec<f64>> = ds
            .records(g)
            .enumerate()
            .filter(|(i, _)| g != r || !removed.contains(i))
            .map(|(_, rec)| rec.to_vec())
            .collect();
        b.push_group(ds.label(g), &rows)?;
    }
    b.build()
}

/// Rebuilds the dataset with per-dimension scalar transforms applied.
/// The input values handed to the transforms are in the normalized (MAX)
/// orientation; the rebuilt dataset is all-MAX.
fn apply_transforms(
    ds: &GroupedDataset,
    transforms: &[&dyn Fn(f64) -> f64],
) -> Result<GroupedDataset> {
    assert_eq!(transforms.len(), ds.dim(), "one transform per dimension");
    let mut b =
        GroupedDatasetBuilder::with_directions(vec![Direction::Max; ds.dim()]).trusted_labels();
    for g in ds.group_ids() {
        let rows: Vec<Vec<f64>> = ds
            .records(g)
            .map(|rec| rec.iter().zip(transforms.iter()).map(|(&v, f)| f(v)).collect())
            .collect();
        b.push_group(ds.label(g), &rows)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn asymmetry_holds_at_half_on_movies_and_random_data() {
        assert_eq!(check_asymmetry(&movie_directors(), Gamma::DEFAULT), None);
        for seed in 0..10 {
            let ds = random_dataset(12, 6, 3, 500 + seed);
            for gamma in [0.5, 0.75, 1.0] {
                assert_eq!(
                    check_asymmetry(&ds, Gamma::new(gamma).unwrap()),
                    None,
                    "seed={seed} gamma={gamma}"
                );
            }
        }
    }

    #[test]
    fn update_stability_bounds_hold_on_movies() {
        let ds = movie_directors();
        // Remove Pulp Fiction (record 1) from Tarantino (group 2) and check
        // the p(Tarantino ≻ X) drift against every other group.
        for other in [0usize, 1, 3, 4, 5, 6] {
            let r = check_update_stability(&ds, 2, other, &[1]).unwrap();
            assert!(r.within_bounds, "bounds violated vs group {other}: {r:?}");
        }
    }

    #[test]
    fn update_stability_bounds_hold_on_random_removals() {
        for seed in 0..15 {
            let ds = random_dataset(6, 10, 3, 900 + seed);
            for r in 0..ds.n_groups() {
                if ds.group_len(r) < 3 {
                    continue;
                }
                for s in 0..ds.n_groups() {
                    if s == r {
                        continue;
                    }
                    let res = check_update_stability(&ds, r, s, &[0, 1]).unwrap();
                    assert!(res.within_bounds, "seed={seed} r={r} s={s}: {res:?}");
                }
            }
        }
    }

    #[test]
    fn monotone_transforms_never_change_probabilities() {
        let ds = movie_directors();
        let square_keep_sign = |v: f64| v.signum() * v * v;
        let cube = |v: f64| v * v * v;
        let dev = monotone_transform_deviation(&ds, &[&square_keep_sign, &cube]).unwrap();
        assert_eq!(dev, 0.0);
        // The paper's own example: a step-like (but strictly monotone)
        // re-scaling of quality around 9.0 must not change the result.
        let stepish = |v: f64| if v > 9.0 { v + 100.0 } else { v };
        let id = |v: f64| v;
        let dev = monotone_transform_deviation(&ds, &[&id, &stepish]).unwrap();
        assert_eq!(dev, 0.0);
    }

    #[test]
    fn non_monotone_transform_does_change_probabilities() {
        // Sanity check that the checker can detect violations: a decreasing
        // transform flips dominance.
        let ds = movie_directors();
        let neg = |v: f64| -v;
        let id = |v: f64| v;
        let dev = monotone_transform_deviation(&ds, &[&neg, &id]).unwrap();
        assert!(dev > 0.0);
    }
}
