//! Traditional record-wise skylines (the "stars" of the paper's title).
//!
//! Two classic algorithms are provided as substrates: block-nested-loops
//! (BNL, Börzsönyi et al.) and sort-filter-skyline (SFS, Chomicki et al.).
//! They are used by tests of the (failing) skyline-containment property and
//! by the SQL engine's `SKYLINE OF` clause.

use crate::dominance::{compare, DomRelation};

/// Computes the skyline of `rows` with block-nested-loops and returns the
/// indices of non-dominated records, in input order.
///
/// `rows` is a flat row-major buffer of `dim`-dimensional records, all
/// normalized to MAX preference. Duplicate records are all retained (none
/// dominates the other under Definition 1).
pub fn bnl(rows: &[f64], dim: usize) -> Vec<usize> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(rows.len() % dim, 0, "buffer length must be a multiple of dim");
    let n = rows.len() / dim;
    let mut window: Vec<usize> = Vec::new();
    'outer: for i in 0..n {
        let cand = &rows[i * dim..(i + 1) * dim];
        let mut k = 0;
        while k < window.len() {
            let w = &rows[window[k] * dim..(window[k] + 1) * dim];
            match compare(cand, w) {
                DomRelation::DominatedBy => continue 'outer,
                DomRelation::Dominates => {
                    window.swap_remove(k);
                }
                DomRelation::Incomparable | DomRelation::Equal => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Computes the skyline with sort-filter-skyline: records are pre-sorted by
/// descending coordinate sum (a monotone scoring function), which guarantees
/// a record can only be dominated by records *earlier* in the order, so the
/// window never needs eviction.
///
/// Returns indices into the original `rows` order, sorted ascending.
pub fn sfs(rows: &[f64], dim: usize) -> Vec<usize> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(rows.len() % dim, 0, "buffer length must be a multiple of dim");
    let n = rows.len() / dim;
    let mut order: Vec<usize> = (0..n).collect();
    let sum = |i: usize| -> f64 { rows[i * dim..(i + 1) * dim].iter().sum() };
    order.sort_by(|&a, &b| crate::ord::cmp_desc(sum(a), sum(b)));
    let mut skyline: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        let cand = &rows[i * dim..(i + 1) * dim];
        for &s in &skyline {
            let w = &rows[s * dim..(s + 1) * dim];
            // A later record can never dominate an earlier one (its sum is
            // not larger), so only the DominatedBy outcome matters.
            if compare(cand, w) == DomRelation::DominatedBy {
                continue 'outer;
            }
        }
        skyline.push(i);
    }
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 movie table, (popularity, quality) columns.
    fn movie_rows() -> Vec<f64> {
        vec![
            404.0, 8.0, // Avatar
            371.0, 8.3, // Batman Begins
            313.0, 8.2, // Kill Bill
            557.0, 9.0, // Pulp Fiction
            362.0, 8.8, // Star Wars (V)
            326.0, 8.6, // Terminator (II)
            531.0, 9.2, // The Godfather
            518.0, 8.7, // The Lord of the Rings
            10.0, 3.2, // The Room
            76.0, 7.3, // Dracula
        ]
    }

    #[test]
    fn figure_2_movie_skyline_bnl() {
        // Figure 2: the skyline is {Pulp Fiction, The Godfather}.
        assert_eq!(bnl(&movie_rows(), 2), vec![3, 6]);
    }

    #[test]
    fn figure_2_movie_skyline_sfs() {
        assert_eq!(sfs(&movie_rows(), 2), vec![3, 6]);
    }

    #[test]
    fn single_record_is_its_own_skyline() {
        assert_eq!(bnl(&[1.0, 2.0, 3.0], 3), vec![0]);
        assert_eq!(sfs(&[1.0, 2.0, 3.0], 3), vec![0]);
    }

    #[test]
    fn duplicates_are_all_kept() {
        let rows = vec![1.0, 1.0, 1.0, 1.0];
        assert_eq!(bnl(&rows, 2), vec![0, 1]);
        assert_eq!(sfs(&rows, 2), vec![0, 1]);
    }

    #[test]
    fn totally_ordered_chain_keeps_only_top() {
        let rows = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(bnl(&rows, 2), vec![2]);
        assert_eq!(sfs(&rows, 2), vec![2]);
    }

    #[test]
    fn anti_chain_keeps_everything() {
        let rows = vec![1.0, 4.0, 2.0, 3.0, 3.0, 2.0, 4.0, 1.0];
        assert_eq!(bnl(&rows, 2), vec![0, 1, 2, 3]);
        assert_eq!(sfs(&rows, 2), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(bnl(&[], 2), Vec::<usize>::new());
        assert_eq!(sfs(&[], 2), Vec::<usize>::new());
    }

    #[test]
    fn bnl_and_sfs_agree_on_pseudorandom_data() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for dim in [1usize, 2, 3, 5] {
            let rows: Vec<f64> = (0..200 * dim).map(|_| next()).collect();
            assert_eq!(bnl(&rows, dim), sfs(&rows, dim), "dim={dim}");
        }
    }
}
