//! Minimum bounding boxes of groups and the corner-based pruning relations
//! of Figure 9.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;

/// Axis-aligned minimum bounding box of a group's records (in the normalized,
/// all-MAX orientation).
#[derive(Debug, Clone, PartialEq)]
pub struct Mbb {
    /// Per-dimension minima (the "worst" corner under MAX preference).
    pub min: Vec<f64>,
    /// Per-dimension maxima (the "best" corner under MAX preference).
    pub max: Vec<f64>,
}

impl Mbb {
    /// Computes the bounding box of group `g`.
    pub fn of_group(ds: &GroupedDataset, g: GroupId) -> Mbb {
        let dim = ds.dim();
        let mut min = vec![f64::INFINITY; dim];
        let mut max = vec![f64::NEG_INFINITY; dim];
        for rec in ds.records(g) {
            for d in 0..dim {
                if crate::ord::lt(rec[d], min[d]) {
                    min[d] = rec[d];
                }
                if crate::ord::gt(rec[d], max[d]) {
                    max[d] = rec[d];
                }
            }
        }
        let mbb = Mbb { min, max };
        for rec in ds.records(g) {
            crate::invariants::check_mbb_contains(&mbb, rec);
        }
        mbb
    }

    /// Bounding boxes for every group, indexed by [`GroupId`].
    pub fn of_all_groups(ds: &GroupedDataset) -> Vec<Mbb> {
        ds.group_ids().map(|g| Mbb::of_group(ds, g)).collect()
    }

    /// Euclidean distance of the minimum corner from the origin.
    pub fn min_corner_norm(&self) -> f64 {
        self.min.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Euclidean distance of the maximum corner from the origin.
    pub fn max_corner_norm(&self) -> f64 {
        self.max.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sort key of Algorithm 4: the sum of the distances between the origin
    /// and the minimum and maximum corners of the box.
    pub fn corner_distance_sum(&self) -> f64 {
        self.min_corner_norm() + self.max_corner_norm()
    }

    /// Figure 9(b): if this box's minimum corner dominates `other`'s maximum
    /// corner, every record of this group dominates every record of the
    /// other group (`p = 1`) and no record comparison is needed.
    #[inline]
    pub fn strictly_dominates(&self, other: &Mbb) -> bool {
        dominates(&self.min, &other.max)
    }

    /// Necessary condition for *any* record of this group to dominate *any*
    /// record of `other` (used to build window queries in Algorithm 5): the
    /// best corner of this box must dominate the worst corner of the other.
    #[inline]
    pub fn may_dominate(&self, other: &Mbb) -> bool {
        dominates(&self.max, &other.min)
    }

    /// True iff the boxes overlap in every dimension.
    pub fn overlaps(&self, other: &Mbb) -> bool {
        self.min.iter().zip(other.max.iter()).all(|(&a_min, &b_max)| crate::ord::le(a_min, b_max))
            && other
                .min
                .iter()
                .zip(self.max.iter())
                .all(|(&b_min, &a_max)| crate::ord::le(b_min, a_max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;

    fn dataset() -> GroupedDataset {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("low", &[vec![0.0, 0.0], vec![1.0, 2.0]]).unwrap();
        b.push_group("high", &[vec![3.0, 4.0], vec![5.0, 3.0]]).unwrap();
        b.push_group("mixed", &[vec![0.5, 5.0], vec![4.0, 0.5]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mbb_corners() {
        let ds = dataset();
        let m = Mbb::of_group(&ds, 2);
        assert_eq!(m.min, vec![0.5, 0.5]);
        assert_eq!(m.max, vec![4.0, 5.0]);
    }

    #[test]
    fn strict_dominance_between_boxes() {
        let ds = dataset();
        let boxes = Mbb::of_all_groups(&ds);
        // high.min = (3,3) dominates low.max = (1,2): strict group dominance.
        assert!(boxes[1].strictly_dominates(&boxes[0]));
        assert!(!boxes[0].strictly_dominates(&boxes[1]));
        // mixed.min = (.5,.5) does not dominate high's corners.
        assert!(!boxes[2].strictly_dominates(&boxes[1]));
    }

    #[test]
    fn may_dominate_is_a_superset_of_strict() {
        let ds = dataset();
        let boxes = Mbb::of_all_groups(&ds);
        assert!(boxes[1].may_dominate(&boxes[0]));
        // mixed.max = (4,5) dominates high.min = (3,3): possible domination.
        assert!(boxes[2].may_dominate(&boxes[1]));
        // low.max = (1,2) does not dominate high.min = (3,3).
        assert!(!boxes[0].may_dominate(&boxes[1]));
    }

    #[test]
    fn corner_distance_sum() {
        let ds = dataset();
        let m = Mbb::of_group(&ds, 0);
        // min corner (0,0) norm 0, max corner (1,2) norm sqrt(5).
        assert!((m.corner_distance_sum() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let ds = dataset();
        let boxes = Mbb::of_all_groups(&ds);
        assert!(boxes[2].overlaps(&boxes[1]));
        assert!(boxes[2].overlaps(&boxes[0]));
        assert!(!boxes[0].overlaps(&boxes[1]));
    }
}
