//! Anytime (budgeted, progressive, resumable) aggregate-skyline
//! computation — an extension beyond the paper in the spirit of the
//! authors' companion work on anytime record skylines.
//!
//! [`anytime_skyline`] spends at most a caller-supplied budget of
//! record-pair comparisons and returns a three-way partition of the groups:
//! *confirmed in*, *confirmed out* (a γ-dominator was found), and
//! *undecided*. With an unlimited budget the result equals the exact
//! skyline; with a tiny budget the confirmed sets are small but never
//! wrong. Candidate dominators are pruned with the Algorithm 5 window query
//! and processed cheapest-pair-first (the Section 3.4 global optimization),
//! which front-loads decisions per unit of work.
//!
//! An incomplete result carries an [`AnytimeCheckpoint`] — the open groups'
//! not-yet-compared candidate lists — so [`anytime_resume`] continues where
//! the budget ran out instead of restarting: repeated resumption with any
//! per-step budget converges to the same partition as one unlimited run.

use crate::algorithms::PairDeltas;
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircount::{compare_groups, PairOptions};
use crate::runctx::RunContext;
use crate::stats::Stats;
use aggsky_obs::Stamp;
use aggsky_spatial::{Aabb, RTree};

/// Outcome of a budgeted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimeResult {
    /// Groups proven to be in the skyline (all candidate dominators
    /// refuted), ascending.
    pub confirmed_in: Vec<GroupId>,
    /// Groups proven dominated, ascending.
    pub confirmed_out: Vec<GroupId>,
    /// Groups whose status was still open when the budget ran out,
    /// ascending.
    pub undecided: Vec<GroupId>,
    /// Work counters (`record_pairs` is the budget actually spent by this
    /// call; resumed runs count from zero again).
    pub stats: Stats,
    /// Resume state: present iff the run left groups undecided *and* the
    /// producer supports resumption (the anytime engine does; interrupted
    /// one-shot algorithms hand back `None`, and [`anytime_resume`] then
    /// restarts from scratch).
    pub checkpoint: Option<AnytimeCheckpoint>,
}

impl AnytimeResult {
    /// True iff no group was left undecided.
    pub fn is_complete(&self) -> bool {
        self.undecided.is_empty()
    }
}

/// The resume state of an incomplete anytime run: for every still-open
/// group, the candidate dominators it has not yet been compared against.
/// Everything else (confirmed sets) lives in the carrying
/// [`AnytimeResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimeCheckpoint {
    /// `(group, remaining candidate dominators)` for each undecided group.
    pub remaining: Vec<(GroupId, Vec<GroupId>)>,
}

/// Runs the aggregate skyline until done or until roughly
/// `budget_record_pairs` record comparisons have been spent (the budget is
/// checked between pairwise group comparisons, so it can overshoot by at
/// most one group-pair resolution).
pub fn anytime_skyline(
    ds: &GroupedDataset,
    gamma: Gamma,
    budget_record_pairs: u64,
) -> AnytimeResult {
    engine(ds, gamma, &RunContext::with_budget(budget_record_pairs), None)
}

/// [`anytime_skyline`] under an execution-control context (honours both
/// the context's tick budget and its cancellation token).
pub fn anytime_skyline_ctx(ds: &GroupedDataset, gamma: Gamma, ctx: &RunContext) -> AnytimeResult {
    engine(ds, gamma, ctx, None)
}

/// Continues an earlier run from its checkpoint, spending at most `budget`
/// further record comparisons. A complete `prev` is returned unchanged; a
/// `prev` *without* a checkpoint (produced by an interrupted one-shot
/// algorithm) falls back to a fresh run. A `prev` whose checkpoint
/// mentions ids outside `ds` — the signature of resuming against the
/// wrong dataset, or of a corrupted frame read from disk — is refused
/// with a typed [`Error::CorruptCheckpoint`] instead of being silently
/// replayed or discarded.
pub fn anytime_resume(
    ds: &GroupedDataset,
    gamma: Gamma,
    budget: u64,
    prev: &AnytimeResult,
) -> Result<AnytimeResult> {
    anytime_resume_ctx(ds, gamma, &RunContext::with_budget(budget), prev)
}

/// [`anytime_resume`] under an execution-control context (honours the
/// context's tick budget, cancellation token and observability recorder).
pub fn anytime_resume_ctx(
    ds: &GroupedDataset,
    gamma: Gamma,
    ctx: &RunContext,
    prev: &AnytimeResult,
) -> Result<AnytimeResult> {
    if prev.is_complete() {
        return Ok(prev.clone());
    }
    match &prev.checkpoint {
        Some(cp) => {
            validate_checkpoint(prev, cp, ds.n_groups())?;
            Ok(engine(ds, gamma, ctx, Some((prev, cp))))
        }
        None => Ok(engine(ds, gamma, ctx, None)),
    }
}

/// A checkpoint is only replayable when every id it mentions exists in the
/// dataset. Violations are typed errors naming the offending id, so a
/// corrupted or mismatched resume state can never be silently replayed.
fn validate_checkpoint(prev: &AnytimeResult, cp: &AnytimeCheckpoint, n: usize) -> Result<()> {
    let oob = |what: &str, g: GroupId| {
        Error::CorruptCheckpoint(format!(
            "{what} mentions group {g}, but the dataset has only {n} groups"
        ))
    };
    for &g in &prev.confirmed_out {
        if g >= n {
            return Err(oob("confirmed-out set", g));
        }
    }
    for (g, cands) in &cp.remaining {
        if *g >= n {
            return Err(oob("checkpoint remaining list", *g));
        }
        for &s in cands {
            if s >= n {
                return Err(oob("checkpoint candidate list", s));
            }
        }
    }
    Ok(())
}

/// The shared engine behind fresh and resumed runs. State is one candidate
/// list per group (dominators not yet compared against); a group is
/// confirmed in when its list drains, confirmed out when a comparison
/// finds a dominator.
fn engine(
    ds: &GroupedDataset,
    gamma: Gamma,
    ctx: &RunContext,
    resume: Option<(&AnytimeResult, &AnytimeCheckpoint)>,
) -> AnytimeResult {
    let n = ds.n_groups();
    let engine_span = ctx.obs().map_or(0, |rec| rec.span_start("anytime", 0, Stamp::ZERO));
    let boxes = Mbb::of_all_groups(ds);
    let mut stats = Stats::default();

    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Open,
        Out,
    }
    let mut status = vec![St::Open; n];
    let mut remaining: Vec<Vec<GroupId>> = vec![Vec::new(); n];

    match resume {
        None => {
            let index_span =
                ctx.obs().map_or(0, |rec| rec.span_start("index_build", 0, Stamp::ZERO));
            let tree = RTree::bulk_load(
                ds.dim(),
                boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
            );
            if let Some(rec) = ctx.obs() {
                rec.span_end(index_span, Stamp::ZERO, &[("entries", crate::num::wide(n))]);
            }
            for (g, b) in boxes.iter().enumerate() {
                let mut c = tree.window_query(&Aabb::at_least(&b.min));
                c.retain(|&s| s != g);
                stats.index_candidates += crate::num::wide(c.len());
                remaining[g] = c;
            }
        }
        Some((prev, cp)) => {
            // Confirmed-out groups stay out (their dominators are real);
            // confirmed-in groups have no remaining candidates and are
            // re-derived as in; undecided groups resume their lists.
            for &g in &prev.confirmed_out {
                status[g] = St::Out;
            }
            for (g, cands) in &cp.remaining {
                remaining[*g] = cands.clone();
            }
        }
    }

    // Work items: (cost, g, candidate) triples, cheapest first — the same
    // deterministic order whether the run is fresh or resumed, which is
    // why chunked resumption converges to the one-shot partition.
    let mut work: Vec<(u64, GroupId, GroupId)> = Vec::new();
    for (g, cands) in remaining.iter().enumerate() {
        for &s in cands {
            let cost = crate::num::pair_product(ds.group_len(g), ds.group_len(s));
            work.push((cost, g, s));
        }
    }
    work.sort_unstable();

    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    for &(_, g, s) in &work {
        if ctx.poll(stats.record_pairs).is_some() {
            break;
        }
        if status[g] == St::Out {
            continue; // membership settled, remaining candidates moot
        }
        // The mirror of an earlier comparison may already have resolved
        // this item; `remaining` is the ground truth.
        let Some(pos) = remaining[g].iter().position(|&x| x == s) else {
            continue;
        };
        remaining[g].swap_remove(pos);
        let before = PairDeltas::before(&stats);
        let mut verdict =
            compare_groups(ds, s, g, gamma, Some((&boxes[s], &boxes[g])), pair_opts, &mut stats);
        ctx.corrupt_verdict(&mut verdict, stats.record_pairs);
        before.observe(ctx, &stats);
        if verdict.forward.dominates() {
            status[g] = St::Out;
        }
        // The comparison resolved BOTH directions, so the mirror work item
        // (s, g) — pending whenever the boxes overlap both ways — is free
        // information: strike it from s's list so its record pairs are
        // never recounted, and apply the reverse domination if any.
        if let Some(mirror) = remaining[s].iter().position(|&x| x == g) {
            remaining[s].swap_remove(mirror);
        }
        if verdict.backward.dominates() {
            status[s] = St::Out;
        }
    }

    let mut confirmed_in = Vec::new();
    let mut confirmed_out = Vec::new();
    let mut undecided = Vec::new();
    for g in 0..n {
        match status[g] {
            St::Out => confirmed_out.push(g),
            St::Open if remaining[g].is_empty() => confirmed_in.push(g),
            St::Open => undecided.push(g),
        }
    }
    let checkpoint = (!undecided.is_empty()).then(|| AnytimeCheckpoint {
        remaining: undecided.iter().map(|&g| (g, std::mem::take(&mut remaining[g]))).collect(),
    });
    // The anytime engine bypasses `run_on`, so it dumps its own counters.
    if let Some(rec) = ctx.obs() {
        stats.record_to(rec);
        if checkpoint.is_some() {
            rec.event(
                "checkpoint",
                0,
                Stamp::tick(stats.record_pairs),
                &[("undecided", crate::num::wide(undecided.len()))],
            );
        }
        rec.span_end(
            engine_span,
            Stamp::tick(stats.record_pairs),
            &[
                ("confirmed_in", crate::num::wide(confirmed_in.len())),
                ("confirmed_out", crate::num::wide(confirmed_out.len())),
                ("undecided", crate::num::wide(undecided.len())),
                ("record_pairs", stats.record_pairs),
            ],
        );
    }
    AnytimeResult { confirmed_in, confirmed_out, undecided, stats, checkpoint }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn unlimited_budget_is_exact() {
        let ds = movie_directors();
        let r = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
        assert!(r.is_complete());
        assert!(r.checkpoint.is_none(), "complete run carries no checkpoint");
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(r.confirmed_in, oracle);
    }

    #[test]
    fn unlimited_budget_is_exact_on_random_data() {
        for seed in 0..15 {
            let ds = random_dataset(20, 6, 3, 7000 + seed);
            let r = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
            assert!(r.is_complete(), "seed {seed}");
            let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
            assert_eq!(r.confirmed_in, oracle, "seed {seed}");
        }
    }

    #[test]
    fn confirmed_sets_are_always_correct_at_any_budget() {
        for seed in 0..10 {
            let ds = random_dataset(15, 6, 3, 8000 + seed);
            let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
            for budget in [0u64, 10, 50, 200, 1000, 10_000] {
                let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
                for g in &r.confirmed_in {
                    assert!(oracle.contains(g), "budget {budget}: {g} wrongly confirmed in");
                }
                for g in &r.confirmed_out {
                    assert!(!oracle.contains(g), "budget {budget}: {g} wrongly confirmed out");
                }
                // Partition sanity.
                let total = r.confirmed_in.len() + r.confirmed_out.len() + r.undecided.len();
                assert_eq!(total, ds.n_groups());
                assert_eq!(r.checkpoint.is_some(), !r.is_complete());
            }
        }
    }

    #[test]
    fn more_budget_never_decides_less() {
        let ds = random_dataset(15, 6, 3, 9001);
        let mut prev = 0usize;
        for budget in [0u64, 100, 1_000, 10_000, u64::MAX] {
            let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
            let decided = r.confirmed_in.len() + r.confirmed_out.len();
            assert!(decided >= prev, "budget {budget} decided {decided} < {prev}");
            prev = decided;
        }
        assert_eq!(prev, ds.n_groups(), "full budget decides everything");
    }

    #[test]
    fn zero_budget_still_confirms_unchallenged_groups() {
        // Two distant clusters: the top cluster's groups have no candidate
        // dominators at all and are confirmed for free.
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        b.push_group("low", &[vec![0.0, 0.0]]).unwrap();
        b.push_group("high", &[vec![10.0, 10.0]]).unwrap();
        let ds = b.build().unwrap();
        let r = anytime_skyline(&ds, Gamma::DEFAULT, 0);
        assert!(r.confirmed_in.contains(&1), "unchallenged group confirmed");
        assert!(r.undecided.contains(&0), "challenged group undecided at zero budget");
    }

    #[test]
    fn chunked_resume_equals_one_unlimited_run() {
        for seed in 0..8 {
            let ds = random_dataset(18, 6, 3, 9100 + seed);
            let full = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
            for step in [1u64, 7, 50, 400] {
                let mut r = anytime_skyline(&ds, Gamma::DEFAULT, step);
                let mut rounds = 0;
                while !r.is_complete() {
                    r = anytime_resume(&ds, Gamma::DEFAULT, step, &r).unwrap();
                    rounds += 1;
                    assert!(rounds < 100_000, "resume loop did not converge (step {step})");
                }
                assert_eq!(r.confirmed_in, full.confirmed_in, "seed {seed} step {step}");
                assert_eq!(r.confirmed_out, full.confirmed_out, "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn resume_monotonically_decides() {
        let ds = random_dataset(15, 8, 3, 9200);
        let mut r = anytime_skyline(&ds, Gamma::DEFAULT, 25);
        let mut decided = r.confirmed_in.len() + r.confirmed_out.len();
        let mut rounds = 0;
        while !r.is_complete() {
            let prev_in = r.confirmed_in.clone();
            let prev_out = r.confirmed_out.clone();
            r = anytime_resume(&ds, Gamma::DEFAULT, 25, &r).unwrap();
            // Decisions are never retracted across a resume.
            for g in &prev_in {
                assert!(r.confirmed_in.contains(g), "round {rounds}: {g} retracted from in");
            }
            for g in &prev_out {
                assert!(r.confirmed_out.contains(g), "round {rounds}: {g} retracted from out");
            }
            let now = r.confirmed_in.len() + r.confirmed_out.len();
            assert!(now >= decided);
            decided = now;
            rounds += 1;
            assert!(rounds < 100_000, "resume loop did not converge");
        }
    }

    #[test]
    fn resume_of_complete_result_is_identity() {
        let ds = movie_directors();
        let full = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
        let resumed = anytime_resume(&ds, Gamma::DEFAULT, 1, &full).unwrap();
        assert_eq!(resumed, full);
    }

    #[test]
    fn resume_without_checkpoint_restarts() {
        let ds = movie_directors();
        let mut r = anytime_skyline(&ds, Gamma::DEFAULT, 1);
        assert!(!r.is_complete(), "movie example should not resolve in one pair");
        r.checkpoint = None; // e.g. a partial handed back by an interrupted algorithm
        let resumed = anytime_resume(&ds, Gamma::DEFAULT, u64::MAX, &r).unwrap();
        assert!(resumed.is_complete());
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(resumed.confirmed_in, oracle);
    }

    #[test]
    fn out_of_range_checkpoint_ids_are_typed_errors() {
        use crate::error::Error;
        let ds = movie_directors();
        let base = anytime_skyline(&ds, Gamma::DEFAULT, 1);
        assert!(!base.is_complete());
        let n = ds.n_groups();
        // A candidate id beyond the dataset.
        let mut r = base.clone();
        if let Some(cp) = &mut r.checkpoint {
            if let Some((_, cands)) = cp.remaining.first_mut() {
                cands.push(n + 3);
            }
        }
        let err = anytime_resume(&ds, Gamma::DEFAULT, u64::MAX, &r).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "{err}");
        // An undecided group id beyond the dataset.
        let mut r = base.clone();
        if let Some(cp) = &mut r.checkpoint {
            cp.remaining.push((n, vec![0]));
        }
        let err = anytime_resume(&ds, Gamma::DEFAULT, u64::MAX, &r).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "{err}");
        // A confirmed-out id beyond the dataset.
        let mut r = base.clone();
        r.confirmed_out.push(n + 1);
        let err = anytime_resume(&ds, Gamma::DEFAULT, u64::MAX, &r).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "{err}");
        // The untampered checkpoint still resumes fine.
        assert!(anytime_resume(&ds, Gamma::DEFAULT, u64::MAX, &base).is_ok());
    }

    #[test]
    fn ctx_cancellation_stops_the_run() {
        let ds = random_dataset(15, 6, 3, 9300);
        let ctx = RunContext::unlimited();
        ctx.cancel_token().cancel();
        let r = anytime_skyline_ctx(&ds, Gamma::DEFAULT, &ctx);
        assert_eq!(r.stats.record_pairs, 0, "cancelled run spent work");
        // Unchallenged groups are still confirmed for free.
        let total = r.confirmed_in.len() + r.confirmed_out.len() + r.undecided.len();
        assert_eq!(total, ds.n_groups());
    }
}
