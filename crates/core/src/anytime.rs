//! Anytime (budgeted, progressive) aggregate-skyline computation — an
//! extension beyond the paper in the spirit of the authors' companion work
//! on anytime record skylines.
//!
//! [`anytime_skyline`] spends at most a caller-supplied budget of
//! record-pair comparisons and returns a three-way partition of the groups:
//! *confirmed in*, *confirmed out* (a γ-dominator was found), and
//! *undecided*. With an unlimited budget the result equals the exact
//! skyline; with a tiny budget the confirmed sets are small but never
//! wrong. Candidate dominators are pruned with the Algorithm 5 window query
//! and processed cheapest-pair-first (the Section 3.4 global optimization),
//! which front-loads decisions per unit of work.

use crate::dataset::{GroupId, GroupedDataset};
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircount::{compare_groups, PairOptions};
use crate::stats::Stats;
use aggsky_spatial::{Aabb, RTree};

/// Outcome of a budgeted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimeResult {
    /// Groups proven to be in the skyline (all candidate dominators
    /// refuted), ascending.
    pub confirmed_in: Vec<GroupId>,
    /// Groups proven dominated, ascending.
    pub confirmed_out: Vec<GroupId>,
    /// Groups whose status was still open when the budget ran out,
    /// ascending.
    pub undecided: Vec<GroupId>,
    /// Work counters (`record_pairs` is the budget actually spent).
    pub stats: Stats,
}

impl AnytimeResult {
    /// True iff no group was left undecided.
    pub fn is_complete(&self) -> bool {
        self.undecided.is_empty()
    }
}

/// Runs the aggregate skyline until done or until roughly
/// `budget_record_pairs` record comparisons have been spent (the budget is
/// checked between pairwise group comparisons, so it can overshoot by at
/// most one group-pair resolution).
pub fn anytime_skyline(
    ds: &GroupedDataset,
    gamma: Gamma,
    budget_record_pairs: u64,
) -> AnytimeResult {
    let n = ds.n_groups();
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let mut stats = Stats::default();
    // Remaining candidate dominators per group.
    let mut candidates: Vec<Vec<GroupId>> = Vec::with_capacity(n);
    for (g, b) in boxes.iter().enumerate() {
        let mut c = tree.window_query(&Aabb::at_least(&b.min));
        c.retain(|&s| s != g);
        stats.index_candidates += crate::num::wide(c.len());
        candidates.push(c);
    }
    // Work items: (g, candidate) pairs, cheapest first.
    let mut work: Vec<(u64, GroupId, GroupId)> = Vec::new();
    for (g, cands) in candidates.iter().enumerate() {
        for &s in cands {
            let cost = crate::num::pair_product(ds.group_len(g), ds.group_len(s));
            work.push((cost, g, s));
        }
    }
    work.sort_unstable();

    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Open,
        Out,
    }
    let mut status = vec![St::Open; n];
    let mut unresolved = vec![0usize; n];
    for (g, c) in candidates.iter().enumerate() {
        unresolved[g] = c.len();
    }
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let mut decided_pairs: std::collections::HashSet<(GroupId, GroupId)> =
        std::collections::HashSet::new();

    for &(_, g, s) in &work {
        if stats.record_pairs >= budget_record_pairs {
            break;
        }
        if status[g] == St::Out {
            continue; // membership settled, remaining candidates moot
        }
        if !decided_pairs.insert((g, s)) {
            continue;
        }
        let verdict =
            compare_groups(ds, s, g, gamma, Some((&boxes[s], &boxes[g])), pair_opts, &mut stats);
        unresolved[g] -= 1;
        if verdict.forward.dominates() {
            status[g] = St::Out;
        }
        // The comparison resolved BOTH directions, so the mirror work item
        // (s, g) — pending whenever the boxes overlap both ways — is free
        // information: record it as decided so its record pairs are never
        // recounted, and apply the reverse domination if any.
        if decided_pairs.insert((s, g)) {
            if candidates[s].contains(&g) {
                unresolved[s] -= 1;
            }
            if verdict.backward.dominates() {
                status[s] = St::Out;
            }
        }
    }

    let mut confirmed_in = Vec::new();
    let mut confirmed_out = Vec::new();
    let mut undecided = Vec::new();
    for g in 0..n {
        match status[g] {
            St::Out => confirmed_out.push(g),
            St::Open if unresolved[g] == 0 => confirmed_in.push(g),
            St::Open => undecided.push(g),
        }
    }
    AnytimeResult { confirmed_in, confirmed_out, undecided, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn unlimited_budget_is_exact() {
        let ds = movie_directors();
        let r = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
        assert!(r.is_complete());
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(r.confirmed_in, oracle);
    }

    #[test]
    fn unlimited_budget_is_exact_on_random_data() {
        for seed in 0..15 {
            let ds = random_dataset(20, 6, 3, 7000 + seed);
            let r = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
            assert!(r.is_complete(), "seed {seed}");
            let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
            assert_eq!(r.confirmed_in, oracle, "seed {seed}");
        }
    }

    #[test]
    fn confirmed_sets_are_always_correct_at_any_budget() {
        for seed in 0..10 {
            let ds = random_dataset(15, 6, 3, 8000 + seed);
            let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
            for budget in [0u64, 10, 50, 200, 1000, 10_000] {
                let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
                for g in &r.confirmed_in {
                    assert!(oracle.contains(g), "budget {budget}: {g} wrongly confirmed in");
                }
                for g in &r.confirmed_out {
                    assert!(!oracle.contains(g), "budget {budget}: {g} wrongly confirmed out");
                }
                // Partition sanity.
                let total = r.confirmed_in.len() + r.confirmed_out.len() + r.undecided.len();
                assert_eq!(total, ds.n_groups());
            }
        }
    }

    #[test]
    fn more_budget_never_decides_less() {
        let ds = random_dataset(15, 6, 3, 9001);
        let mut prev = 0usize;
        for budget in [0u64, 100, 1_000, 10_000, u64::MAX] {
            let r = anytime_skyline(&ds, Gamma::DEFAULT, budget);
            let decided = r.confirmed_in.len() + r.confirmed_out.len();
            assert!(decided >= prev, "budget {budget} decided {decided} < {prev}");
            prev = decided;
        }
        assert_eq!(prev, ds.n_groups(), "full budget decides everything");
    }

    #[test]
    fn zero_budget_still_confirms_unchallenged_groups() {
        // Two distant clusters: the top cluster's groups have no candidate
        // dominators at all and are confirmed for free.
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        b.push_group("low", &[vec![0.0, 0.0]]).unwrap();
        b.push_group("high", &[vec![10.0, 10.0]]).unwrap();
        let ds = b.build().unwrap();
        let r = anytime_skyline(&ds, Gamma::DEFAULT, 0);
        assert!(r.confirmed_in.contains(&1), "unchallenged group confirmed");
        assert!(r.undecided.contains(&0), "challenged group undecided at zero budget");
    }
}
