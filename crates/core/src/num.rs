//! Sanctioned numeric conversions and overflow-checked pair counting
//! (project rule L3).
//!
//! The denominator of a domination probability is `|S|·|R|` (Definition 3).
//! A wrapping multiply there does not crash — it silently shrinks the
//! denominator and *inflates* the probability, flipping verdicts. This
//! module centralizes the conversions the counting paths need so every
//! `as` cast in the workspace is either provably lossless (and lives here)
//! or individually allowlisted.

use crate::error::{Error, Result};

/// Losslessly widens a `usize` to `u64`. Rust supports 16-, 32- and 64-bit
/// `usize`, so this can never truncate; the cast is confined here so rule
/// L3 can forbid `as u64` everywhere else.
#[inline(always)]
pub fn wide(n: usize) -> u64 {
    n as u64
}

/// Checked narrowing of a `u64` to `usize` (fails on 32-bit targets for
/// values above `usize::MAX`).
#[inline]
pub fn narrow(n: u64) -> Option<usize> {
    usize::try_from(n).ok()
}

/// The pair-count denominator `|S|·|R|`, overflow-checked: adversarially
/// large groups yield [`Error::PairCountOverflow`] instead of a wrapped
/// (and therefore verdict-corrupting) product.
#[inline]
pub fn pair_count(len_s: usize, len_r: usize) -> Result<u64> {
    wide(len_s).checked_mul(wide(len_r)).ok_or(Error::PairCountOverflow { len_s, len_r })
}

/// Saturating pair product for hot paths whose inputs are already bounded.
///
/// [`crate::GroupedDatasetBuilder`] caps groups at
/// [`crate::dataset::MAX_GROUP_LEN`] records, which makes `|S|·|R| < 2⁶⁴`
/// for every dataset reachable through the public API; this helper still
/// refuses to wrap (it saturates, and debug builds assert) so a dataset
/// constructed by future internal code cannot corrupt counts silently.
#[inline]
pub fn pair_product(len_s: usize, len_r: usize) -> u64 {
    debug_assert!(
        wide(len_s).checked_mul(wide(len_r)).is_some(),
        "pair product {len_s}x{len_r} overflows u64; builder caps should prevent this"
    );
    wide(len_s).saturating_mul(wide(len_r))
}

/// Largest integer magnitude exactly representable in `f64` (2⁵³): the
/// boundary for the checked float→integer conversions below.
pub const FLOAT_EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53

/// Converts a non-negative float to a `usize` by flooring, clamping to the
/// representable range; NaN maps to zero. Centralizes the float→int `as`
/// cast used by samplers that partition sizes proportionally.
#[inline]
pub fn floor_usize(x: f64) -> usize {
    // `as` from float to int saturates (never UB, never wraps) since Rust
    // 1.45; the clamp documents the intended domain.
    x.clamp(0.0, FLOAT_EXACT_MAX) as usize
}

/// The exact integral value of a float, when it has one: `Some(i)` iff `x`
/// is integral and within ±2⁵³, so `x as i64` is exact and round-trips.
/// Used by consumers (e.g. the SQL value model) that must keep float and
/// integer representations of the same number interchangeable.
#[inline]
pub fn exact_int(x: f64) -> Option<i64> {
    if crate::ord::eq(x.fract(), 0.0) && crate::ord::le(x.abs(), FLOAT_EXACT_MAX) {
        Some(x as i64)
    } else {
        None
    }
}

/// Reinterprets a float's IEEE-754 bit pattern as a signed integer and
/// folds the sign-magnitude encoding into two's complement, yielding an
/// `i64` whose natural order equals [`f64::total_cmp`]: for all `a`, `b`,
/// `f64_total_bits(a) < f64_total_bits(b)` iff `a.total_cmp(&b)` is
/// `Less`. This is the same transposition `total_cmp` performs internally;
/// the `as` casts are same-width reinterpretations (never truncating) and
/// are confined here per rule L3. [`crate::dominance::sort_key`] layers the
/// `-0.0` canonicalization on top for the columnar kernel's key lanes.
#[inline(always)]
pub fn f64_total_bits(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    // Negative floats sort descending by raw bits; flipping their magnitude
    // bits (all but the sign bit) makes the integer order total and
    // consistent with total_cmp.
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

/// Saturating float→`i32` conversion (NaN maps to zero), centralizing the
/// float→int `as` cast for callers that clamp user-supplied numeric
/// arguments to a small integer range.
#[inline]
pub fn to_i32_sat(x: f64) -> i32 {
    // `as` from float to int saturates (never UB, never wraps) since Rust
    // 1.45.
    x as i32
}

/// The low four bits of an AVX2 `movemask` result as a `u64` lane mask.
///
/// `_mm256_movemask_pd` packs the four 64-bit lane sign bits into bits
/// 0..=3 of an `i32`; masking with `0xF` before the widening cast makes the
/// conversion lossless by construction, centralizing the one `as` the SIMD
/// kernel needs.
#[inline(always)]
pub fn movemask4(m: i32) -> u64 {
    (m & 0xF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_round_trips() {
        assert_eq!(wide(0), 0);
        assert_eq!(wide(usize::MAX) as u128, usize::MAX as u128);
        assert_eq!(narrow(wide(12345)), Some(12345));
    }

    #[test]
    fn pair_count_checks_overflow() {
        assert_eq!(pair_count(3, 4), Ok(12));
        assert_eq!(pair_count(0, 9), Ok(0));
        let huge = usize::MAX;
        assert_eq!(pair_count(huge, 2), Err(Error::PairCountOverflow { len_s: huge, len_r: 2 }));
        // The largest builder-reachable product stays checked-safe.
        let cap = crate::dataset::MAX_GROUP_LEN;
        assert!(pair_count(cap, cap).is_ok());
    }

    #[test]
    fn pair_product_saturates_instead_of_wrapping() {
        assert_eq!(pair_product(7, 8), 56);
        // Wrapping would yield a small number here; saturation keeps the
        // denominator on the conservative side. (Debug builds assert first,
        // so exercise the release-mode contract only when assertions are
        // off.)
        if !cfg!(debug_assertions) {
            assert_eq!(pair_product(usize::MAX, usize::MAX), u64::MAX);
        }
    }

    #[test]
    fn exact_int_requires_integral_in_range() {
        assert_eq!(exact_int(3.0), Some(3));
        assert_eq!(exact_int(-0.0), Some(0));
        assert_eq!(exact_int(3.5), None);
        assert_eq!(exact_int(FLOAT_EXACT_MAX), Some(1 << 53));
        assert_eq!(exact_int(FLOAT_EXACT_MAX * 2.0), None);
        assert_eq!(exact_int(f64::NAN), None);
        assert_eq!(exact_int(f64::INFINITY), None);
    }

    #[test]
    fn to_i32_sat_saturates() {
        assert_eq!(to_i32_sat(12.9), 12);
        assert_eq!(to_i32_sat(-12.9), -12);
        assert_eq!(to_i32_sat(1e12), i32::MAX);
        assert_eq!(to_i32_sat(-1e12), i32::MIN);
        assert_eq!(to_i32_sat(f64::NAN), 0);
    }

    #[test]
    fn f64_total_bits_orders_like_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-9,
            2.5,
            1e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    f64_total_bits(a).cmp(&f64_total_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn floor_usize_clamps() {
        assert_eq!(floor_usize(3.9), 3);
        assert_eq!(floor_usize(-1.5), 0);
        assert_eq!(floor_usize(f64::NAN), 0);
        assert_eq!(floor_usize(f64::INFINITY), FLOAT_EXACT_MAX as usize);
    }

    #[test]
    fn movemask4_keeps_the_low_nibble() {
        for m in 0..16 {
            assert_eq!(movemask4(m), m as u64);
        }
        assert_eq!(movemask4(-1), 0xF);
        assert_eq!(movemask4(0x7FFF_FFF0), 0);
    }
}
