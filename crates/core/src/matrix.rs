//! Domination matrices (proof machinery of Proposition 5).
//!
//! The paper models the dominance relation between two groups `R`, `S` as a
//! `|R| × |S|` 0/1 matrix whose fraction of non-zero entries equals
//! `p(R ≻ S)`, and observes that the Boolean product of the `R→S` and `S→T`
//! matrices is again a domination matrix for `R→T`. This module makes that
//! machinery executable so the weak-transitivity bound can be tested
//! directly, exactly as in the proof.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;

/// A dense 0/1 domination matrix: `entry(i, j) = 1 ⟺ rᵢ ≻ sⱼ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominationMatrix {
    rows: usize,
    cols: usize,
    bits: Vec<bool>,
}

impl DominationMatrix {
    /// Builds the domination matrix of group `r` over group `s`.
    pub fn build(ds: &GroupedDataset, r: GroupId, s: GroupId) -> DominationMatrix {
        let rows = ds.group_len(r);
        let cols = ds.group_len(s);
        let mut bits = Vec::with_capacity(rows * cols);
        for rv in ds.records(r) {
            for sv in ds.records(s) {
                bits.push(dominates(rv, sv));
            }
        }
        DominationMatrix { rows, cols, bits }
    }

    /// Constructs a matrix from explicit entries (row-major). Panics if the
    /// dimensions do not match the entry count.
    pub fn from_bits(rows: usize, cols: usize, bits: Vec<bool>) -> DominationMatrix {
        assert_eq!(rows * cols, bits.len(), "entry count must equal rows*cols");
        DominationMatrix { rows, cols, bits }
    }

    /// Number of rows (`|R|`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`|S|`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.cols + j]
    }

    /// `pos(M)`: the fraction of non-zero entries, which equals the
    /// domination probability `p(R ≻ S)`.
    pub fn pos(&self) -> f64 {
        let ones = self.bits.iter().filter(|&&b| b).count();
        ones as f64 / self.bits.len() as f64
    }

    /// Boolean matrix product. If `self` is a domination matrix for `R → S`
    /// and `other` for `S → T`, the product is a (lower-bound) domination
    /// matrix for `R → T`: `out(i, k) = ∃j self(i, j) ∧ other(j, k)`.
    ///
    /// This relies on transitivity of *record* dominance: `rᵢ ≻ sⱼ ≻ tₖ ⟹
    /// rᵢ ≻ tₖ`.
    pub fn product(&self, other: &DominationMatrix) -> DominationMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let rows = self.rows;
        let cols = other.cols;
        let mut bits = vec![false; rows * cols];
        for i in 0..rows {
            for j in 0..self.cols {
                if self.get(i, j) {
                    for k in 0..cols {
                        if other.get(j, k) {
                            bits[i * cols + k] = true;
                        }
                    }
                }
            }
        }
        DominationMatrix { rows, cols, bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;

    /// The explicit matrices from the Proposition 4/5 proof (Figure 6):
    /// pos(RS) = 5/8, pos(ST) = 2/3, pos(RS×ST) = 1/2.
    #[test]
    fn paper_proof_example_matrices() {
        let rs = DominationMatrix::from_bits(
            4,
            2,
            vec![true, false, true, true, true, false, true, false],
        );
        let st = DominationMatrix::from_bits(2, 3, vec![true, false, false, true, true, true]);
        assert!((rs.pos() - 5.0 / 8.0).abs() < 1e-12);
        assert!((st.pos() - 2.0 / 3.0).abs() < 1e-12);
        let rt = rs.product(&st);
        assert!((rt.pos() - 0.5).abs() < 1e-12);
        // R ≻.5 S and S ≻.5 T but R ⊁.5 T: transitivity fails (Prop. 4).
        assert!(rs.pos() > 0.5 && st.pos() > 0.5 && rt.pos() <= 0.5);
    }

    #[test]
    fn matrix_from_dataset_matches_probability() {
        let mut b = GroupedDatasetBuilder::new(2);
        let r = b.push_group("R", &[vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let s = b.push_group("S", &[vec![2.0, 3.0]]).unwrap();
        let ds = b.build().unwrap();
        let m = DominationMatrix::build(&ds, s, r);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 3);
        assert!((m.pos() - crate::gamma::domination_probability(&ds, s, r)).abs() < 1e-12);
    }

    /// The product matrix is a *lower bound* on true R→T domination.
    #[test]
    fn product_is_lower_bound_on_true_domination() {
        let mut b = GroupedDatasetBuilder::new(2);
        let r = b.push_group("R", &[vec![9.0, 9.0], vec![4.0, 4.0]]).unwrap();
        let s = b.push_group("S", &[vec![6.0, 6.0], vec![2.0, 2.0]]).unwrap();
        let t = b.push_group("T", &[vec![3.0, 3.0], vec![1.0, 1.0]]).unwrap();
        let ds = b.build().unwrap();
        let rs = DominationMatrix::build(&ds, r, s);
        let st = DominationMatrix::build(&ds, s, t);
        let rt_true = DominationMatrix::build(&ds, r, t);
        let rt_product = rs.product(&st);
        for i in 0..rt_product.rows() {
            for k in 0..rt_product.cols() {
                // Every product 1 must be a true 1 (record dominance is
                // transitive), though the converse can fail.
                if rt_product.get(i, k) {
                    assert!(rt_true.get(i, k));
                }
            }
        }
        assert!(rt_product.pos() <= rt_true.pos() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn product_rejects_mismatched_dimensions() {
        let a = DominationMatrix::from_bits(1, 2, vec![true, false]);
        let b = DominationMatrix::from_bits(3, 1, vec![true, false, true]);
        let _ = a.product(&b);
    }
}
