//! Sanctioned total-order comparisons on `f64` (project rule L2).
//!
//! γ-dominance is a *counting* predicate: a comparison that silently
//! misorders (as `partial_cmp` and the raw operators do on NaN) corrupts a
//! pair count — and therefore a skyline verdict — without crashing. All
//! float ordering in the workspace's library crates goes through this
//! module, which is built on [`f64::total_cmp`] and therefore total:
//!
//! * NaNs order deterministically (negative NaN below `-∞`, positive NaN
//!   above `+∞`) instead of poisoning every comparison they touch;
//! * `-0.0` and `+0.0` are normalized before comparing, so the boolean
//!   comparators agree exactly with IEEE `<`/`>` on every non-NaN input —
//!   including datasets whose MIN-direction normalization negates a zero.
//!
//! [`crate::GroupedDatasetBuilder`] rejects non-finite coordinates at
//! ingestion, so on the dominance hot path these helpers behave identically
//! to the raw operators while staying safe for data that bypassed
//! validation. `crates/spatial` may not depend on this crate (rule L4) and
//! carries a minimal mirror in `aggsky_spatial::ord`.

use std::cmp::Ordering;

/// Maps `-0.0` to `+0.0` (the IEEE sum `-0.0 + 0.0` is `+0.0`) so the total
/// order agrees with `==` on zeros; all other values, including NaN and the
/// infinities, are unchanged. Public within the crate so
/// [`crate::dominance::sort_key`] can apply the same normalization before
/// transposing bits into the columnar kernel's integer key space.
#[inline(always)]
pub(crate) fn canon(x: f64) -> f64 {
    x + 0.0
}

/// Total ordering: `total_cmp` over zero-normalized values.
#[inline(always)]
pub fn cmp(a: f64, b: f64) -> Ordering {
    canon(a).total_cmp(&canon(b))
}

/// Reversed total ordering, for descending sorts.
#[inline(always)]
pub fn cmp_desc(a: f64, b: f64) -> Ordering {
    cmp(b, a)
}

/// Total `a < b`.
#[inline(always)]
pub fn lt(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Less
}

/// Total `a <= b`.
#[inline(always)]
pub fn le(a: f64, b: f64) -> bool {
    cmp(a, b) != Ordering::Greater
}

/// Total `a > b`.
#[inline(always)]
pub fn gt(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Greater
}

/// Total `a >= b`.
#[inline(always)]
pub fn ge(a: f64, b: f64) -> bool {
    cmp(a, b) != Ordering::Less
}

/// Total `a == b`: like `==` but NaN equals NaN (of the same sign), so
/// deduplication and memoization keyed on floats stay coherent.
#[inline(always)]
pub fn eq(a: f64, b: f64) -> bool {
    cmp(a, b) == Ordering::Equal
}

/// Total maximum; unlike [`f64::max`] this is deterministic on NaN inputs
/// (a positive NaN wins over every number).
#[inline(always)]
pub fn max(a: f64, b: f64) -> f64 {
    if ge(a, b) {
        a
    } else {
        b
    }
}

/// Total minimum (see [`max`]).
#[inline(always)]
pub fn min(a: f64, b: f64) -> f64 {
    if le(a, b) {
        a
    } else {
        b
    }
}

/// Lexicographic total ordering of float slices (for deterministic sorts of
/// records in tests and tie-breaking).
pub fn cmp_slices(a: &[f64], b: &[f64]) -> Ordering {
    for (&x, &y) in a.iter().zip(b.iter()) {
        let o = cmp(x, y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_ieee_on_ordinary_values() {
        let vals = [-3.5, -1.0, 0.0, 0.5, 1.0, 2.0, f64::INFINITY, f64::NEG_INFINITY];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(lt(a, b), a < b, "lt({a}, {b})");
                assert_eq!(le(a, b), a <= b, "le({a}, {b})");
                assert_eq!(gt(a, b), a > b, "gt({a}, {b})");
                assert_eq!(ge(a, b), a >= b, "ge({a}, {b})");
                assert_eq!(eq(a, b), a == b, "eq({a}, {b})");
            }
        }
    }

    #[test]
    fn zeros_are_equal_both_ways() {
        // MIN-direction normalization negates values, so -0.0 occurs in real
        // datasets; it must compare equal to +0.0 exactly as IEEE says.
        assert!(eq(0.0, -0.0));
        assert!(eq(-0.0, 0.0));
        assert!(!gt(0.0, -0.0));
        assert!(!lt(-0.0, 0.0));
        assert_eq!(cmp(0.0, -0.0), Ordering::Equal);
    }

    #[test]
    fn nan_orders_deterministically() {
        assert_eq!(cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert!(gt(f64::NAN, f64::INFINITY));
        assert!(lt(-f64::NAN, f64::NEG_INFINITY));
        // Unlike raw operators, comparisons never become vacuously false in
        // both directions.
        assert!(gt(f64::NAN, 1.0) || lt(f64::NAN, 1.0) || eq(f64::NAN, 1.0));
    }

    #[test]
    fn min_max_are_total() {
        assert_eq!(max(1.0, 2.0), 2.0);
        assert_eq!(min(1.0, 2.0), 1.0);
        assert!(max(f64::NAN, 1.0).is_nan());
        assert_eq!(min(f64::NAN, 1.0), 1.0);
    }

    #[test]
    fn slice_ordering_is_lexicographic() {
        assert_eq!(cmp_slices(&[1.0, 2.0], &[1.0, 3.0]), Ordering::Less);
        assert_eq!(cmp_slices(&[1.0, 2.0], &[1.0, 2.0]), Ordering::Equal);
        assert_eq!(cmp_slices(&[1.0, 2.0], &[1.0, 2.0, 0.0]), Ordering::Less);
        assert_eq!(cmp_slices(&[2.0], &[1.0, 9.0]), Ordering::Greater);
    }

    #[test]
    fn sorting_with_cmp_never_panics_on_nan() {
        let mut v = [1.0, f64::NAN, -1.0, 0.0, -0.0, f64::INFINITY];
        v.sort_by(|a, b| cmp(*a, *b));
        assert_eq!(v[0], -1.0);
        assert!(v[5].is_nan());
    }
}
