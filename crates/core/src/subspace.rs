//! Subspace operations on grouped datasets: projecting onto a subset of
//! dimensions and restricting to a subset of groups.
//!
//! Skyline analyses routinely vary the attribute set (the paper's Figure 14
//! runs the same data with 3-8 skyline attributes); these helpers derive
//! the corresponding datasets without round-tripping through a builder.

use crate::dataset::{GroupId, GroupedDataset, GroupedDatasetBuilder};
use crate::error::{Error, Result};

impl GroupedDataset {
    /// Projects every record onto the given dimensions (in the given
    /// order; repeating a dimension is allowed). Values keep their
    /// normalized (MAX) orientation, and the projected dataset reports
    /// [`crate::Direction::Max`] everywhere.
    pub fn project(&self, dims: &[usize]) -> Result<GroupedDataset> {
        if dims.is_empty() {
            return Err(Error::ZeroDimensions);
        }
        for &d in dims {
            if d >= self.dim() {
                return Err(Error::DimensionMismatch { expected: self.dim(), got: d + 1 });
            }
        }
        let mut b = GroupedDatasetBuilder::new(dims.len()).trusted_labels();
        for g in self.group_ids() {
            let rows: Vec<Vec<f64>> =
                self.records(g).map(|rec| dims.iter().map(|&d| rec[d]).collect()).collect();
            b.push_group(self.label(g), &rows)?;
        }
        b.build()
    }

    /// Restricts the dataset to the given groups (in the given order).
    pub fn restrict(&self, groups: &[GroupId]) -> Result<GroupedDataset> {
        let mut b = GroupedDatasetBuilder::new(self.dim()).trusted_labels();
        for &g in groups {
            assert!(g < self.n_groups(), "group id {g} out of range");
            let rows: Vec<&[f64]> = self.records(g).collect();
            b.push_group(self.label(g), &rows)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::gamma::Gamma;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn project_selects_and_reorders() {
        let ds = movie_directors();
        let swapped = ds.project(&[1, 0]).unwrap();
        assert_eq!(swapped.dim(), 2);
        assert_eq!(swapped.record(0, 0), &[8.0, 404.0]);
        let quality_only = ds.project(&[1]).unwrap();
        assert_eq!(quality_only.dim(), 1);
        assert_eq!(quality_only.record(2, 1), &[9.0]);
    }

    #[test]
    fn projection_order_does_not_change_skyline() {
        let ds = random_dataset(12, 6, 3, 42);
        let a = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        let b = naive_skyline(&ds.project(&[2, 0, 1]).unwrap(), Gamma::DEFAULT).skyline;
        assert_eq!(a, b, "permuting dimensions preserves dominance");
    }

    #[test]
    fn projection_to_subspace_changes_results_sensibly() {
        // Single-dimension skyline = groups containing the max value chain.
        let ds = movie_directors();
        let pop_only = ds.project(&[0]).unwrap();
        let sky = naive_skyline(&pop_only, Gamma::DEFAULT).skyline;
        // Tarantino holds the single most popular movie; in 1-D every group
        // with p(S>R) > .5 excludes R, so the survivors hold top movies.
        assert!(sky.contains(&ds.group_by_label("Tarantino").unwrap()));
        assert!(!sky.contains(&ds.group_by_label("Wiseau").unwrap()));
    }

    #[test]
    fn project_errors() {
        let ds = movie_directors();
        assert!(matches!(ds.project(&[]), Err(Error::ZeroDimensions)));
        assert!(matches!(ds.project(&[5]), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn restrict_keeps_selected_groups() {
        let ds = movie_directors();
        let t = ds.group_by_label("Tarantino").unwrap();
        let w = ds.group_by_label("Wiseau").unwrap();
        let two = ds.restrict(&[t, w]).unwrap();
        assert_eq!(two.n_groups(), 2);
        assert_eq!(two.label(0), "Tarantino");
        assert_eq!(two.group_len(0), 2);
        let sky = naive_skyline(&two, Gamma::DEFAULT).skyline;
        assert_eq!(two.sorted_labels(&sky), vec!["Tarantino"]);
    }

    #[test]
    fn restriction_can_only_grow_membership() {
        // Removing groups removes potential dominators: any group in the
        // full skyline stays in the restricted skyline.
        let ds = random_dataset(12, 5, 3, 77);
        let full = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        let keep: Vec<usize> = (0..ds.n_groups()).step_by(2).collect();
        let restricted = ds.restrict(&keep).unwrap();
        let sub_sky = naive_skyline(&restricted, Gamma::DEFAULT).skyline;
        for (new_id, &old_id) in keep.iter().enumerate() {
            if full.contains(&old_id) {
                assert!(sub_sky.contains(&new_id), "group {old_id} lost by restriction");
            }
        }
    }
}
