//! Persisted performance profiles and profile diffing (DESIGN.md §16).
//!
//! A [`ProfileSnapshot`] is the durable form of one run's observability
//! state: every non-zero counter, histogram and quantile sketch from a
//! [`TraceSnapshot`], plus per-name span aggregates (invocation count and
//! total duration). It travels inside the same checksummed `AGSKCKP1`
//! frame container as checkpoints ([`super::frame`]), with its own inner
//! tag and version so a profile file can never be mistaken for a
//! checkpoint (or vice versa) even though both share the outer codec.
//!
//! [`render_profile_diff`] compares two snapshots and flags counters,
//! span costs and tail quantiles that grew past a caller-chosen relative
//! threshold — the engine behind `aggsky profile diff`.

use crate::error::{Error, Result};
use crate::persist::frame::{decode_frame, encode_frame};
use aggsky_obs::{Counter, Hist, Sketch, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Inner payload tag: "AGSK" + "PROF". Distinguishes profile payloads from
/// checkpoint snapshots inside the shared frame container.
pub const PROFILE_TAG: [u8; 8] = *b"AGSKPROF";
/// Profile payload version; readers refuse newer versions.
pub const PROFILE_VERSION: u32 = 1;

/// Aggregate of all spans sharing one name: how often the span ran and the
/// summed duration of its completed instances (in the span's own clock
/// domain — ticks for counting-path spans, microseconds for persist I/O).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total `end - start` across completed instances.
    pub total: u64,
}

/// Persisted view of one histogram: enough to diff totals without
/// shipping the full bucket array.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistStat {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Persisted view of one quantile sketch: the tail summary the sketch
/// exists to answer, frozen at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SketchStat {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// Exact maximum observed.
    pub max: u64,
}

/// One run's observability state in persistable form. Entries are sorted
/// by name so equal recordings encode to equal bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// Non-zero counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Observed histograms, name-sorted.
    pub hists: Vec<HistStat>,
    /// Non-empty sketches, name-sorted.
    pub sketches: Vec<SketchStat>,
    /// Per-name span aggregates, name-sorted.
    pub spans: Vec<SpanStat>,
}

impl ProfileSnapshot {
    /// Builds a profile from a live trace snapshot. Zero counters, empty
    /// histograms/sketches and unfinished spans contribute nothing, so a
    /// quiet run produces a small file.
    pub fn from_trace(snap: &TraceSnapshot) -> ProfileSnapshot {
        let counters = Counter::ALL
            .into_iter()
            .filter(|c| snap.metrics.counter(*c) > 0)
            .map(|c| (c.name().to_owned(), snap.metrics.counter(c)))
            .collect();
        let hists = Hist::ALL
            .into_iter()
            .filter(|h| snap.metrics.hist(*h).count > 0)
            .map(|h| {
                let hs = snap.metrics.hist(h);
                HistStat { name: h.name().to_owned(), count: hs.count, sum: hs.sum }
            })
            .collect();
        let sketches = Sketch::ALL
            .into_iter()
            .filter(|s| snap.metrics.sketch(*s).count > 0)
            .map(|s| {
                let sk = snap.metrics.sketch(s);
                SketchStat {
                    name: s.name().to_owned(),
                    count: sk.count,
                    p50: sk.quantile(500).unwrap_or(0),
                    p95: sk.quantile(950).unwrap_or(0),
                    p99: sk.quantile(990).unwrap_or(0),
                    max: sk.max,
                }
            })
            .collect();
        let mut by_name: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &snap.spans {
            let entry = by_name.entry(s.name).or_insert((0, 0));
            entry.0 += 1;
            if let Some(end) = s.end {
                entry.1 = entry.1.saturating_add(end.value.saturating_sub(s.start.value));
            }
        }
        let spans = by_name
            .into_iter()
            .map(|(name, (count, total))| SpanStat { name: name.to_owned(), count, total })
            .collect();
        ProfileSnapshot { counters, hists, sketches, spans }
    }

    /// Encodes the profile into a framed byte stream ready to write to
    /// disk: inner tag + version + sections inside the outer `AGSKCKP1`
    /// checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ProfWriter::new();
        w.bytes_raw(&PROFILE_TAG);
        w.buf.extend_from_slice(&PROFILE_VERSION.to_le_bytes());
        w.u64(u64_len(self.counters.len()));
        for (name, v) in &self.counters {
            w.str(name);
            w.u64(*v);
        }
        w.u64(u64_len(self.hists.len()));
        for h in &self.hists {
            w.str(&h.name);
            w.u64(h.count);
            w.u64(h.sum);
        }
        w.u64(u64_len(self.sketches.len()));
        for s in &self.sketches {
            w.str(&s.name);
            for v in [s.count, s.p50, s.p95, s.p99, s.max] {
                w.u64(v);
            }
        }
        w.u64(u64_len(self.spans.len()));
        for s in &self.spans {
            w.str(&s.name);
            w.u64(s.count);
            w.u64(s.total);
        }
        encode_frame(&w.buf)
    }

    /// Decodes a framed profile produced by [`ProfileSnapshot::encode`].
    /// Wrong tag, future version, truncation and trailing garbage are all
    /// typed [`Error::CorruptCheckpoint`] failures — never panics.
    pub fn decode(bytes: &[u8]) -> Result<ProfileSnapshot> {
        let payload = decode_frame(bytes)?;
        let mut r = ProfReader::new(payload);
        let tag = r.take(PROFILE_TAG.len(), "profile tag")?;
        if tag != PROFILE_TAG {
            return Err(Error::CorruptCheckpoint(
                "payload is not a profile snapshot (bad inner tag)".into(),
            ));
        }
        let vbytes = r.take(4, "profile version")?;
        let varr: [u8; 4] =
            vbytes.try_into().map_err(|_| ProfReader::corrupt("profile version"))?;
        let version = u32::from_le_bytes(varr);
        if version != PROFILE_VERSION {
            return Err(Error::CorruptCheckpoint(format!(
                "profile version {version} not supported (reader speaks {PROFILE_VERSION})"
            )));
        }
        let n = r.len(9, "counter count")?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str("counter name")?;
            let v = r.u64("counter value")?;
            counters.push((name, v));
        }
        let n = r.len(17, "histogram count")?;
        let mut hists = Vec::with_capacity(n);
        for _ in 0..n {
            hists.push(HistStat {
                name: r.str("histogram name")?,
                count: r.u64("histogram count field")?,
                sum: r.u64("histogram sum")?,
            });
        }
        let n = r.len(41, "sketch count")?;
        let mut sketches = Vec::with_capacity(n);
        for _ in 0..n {
            sketches.push(SketchStat {
                name: r.str("sketch name")?,
                count: r.u64("sketch count field")?,
                p50: r.u64("sketch p50")?,
                p95: r.u64("sketch p95")?,
                p99: r.u64("sketch p99")?,
                max: r.u64("sketch max")?,
            });
        }
        let n = r.len(17, "span count")?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            spans.push(SpanStat {
                name: r.str("span name")?,
                count: r.u64("span count field")?,
                total: r.u64("span total")?,
            });
        }
        r.done()?;
        Ok(ProfileSnapshot { counters, hists, sketches, spans })
    }

    /// Writes the encoded profile to `path`.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.encode())
            .map_err(|e| Error::Io(format!("writing profile {}: {e}", path.display())))
    }

    /// Reads and decodes a profile from `path`.
    pub fn load(path: &Path) -> Result<ProfileSnapshot> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io(format!("reading profile {}: {e}", path.display())))?;
        ProfileSnapshot::decode(&bytes)
    }
}

fn u64_len(n: usize) -> u64 {
    crate::num::wide(n)
}

// Local byte helpers: `frame::ByteWriter`/`ByteReader` are private to the
// snapshot codec, and the profile payload additionally needs strings.

struct ProfWriter {
    buf: Vec<u8>,
}

impl ProfWriter {
    fn new() -> ProfWriter {
        ProfWriter { buf: Vec::new() }
    }

    fn bytes_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(crate::num::wide(s.len()));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct ProfReader<'a> {
    rest: &'a [u8],
}

impl<'a> ProfReader<'a> {
    fn new(bytes: &'a [u8]) -> ProfReader<'a> {
        ProfReader { rest: bytes }
    }

    fn corrupt(what: &str) -> Error {
        Error::CorruptCheckpoint(format!("profile payload truncated reading {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let (head, tail) = self.rest.split_at_checked(n).ok_or_else(|| Self::corrupt(what))?;
        self.rest = tail;
        Ok(head)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| Self::corrupt(what))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// A length prefix bounded by the remaining bytes (each element at
    /// least `elem_bytes` wide), so a corrupted count cannot drive an
    /// over-allocation.
    fn len(&mut self, elem_bytes: usize, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        let n = crate::num::narrow(v)
            .ok_or_else(|| Error::CorruptCheckpoint(format!("{what} {v} exceeds usize")))?;
        if n.checked_mul(elem_bytes).is_none_or(|total| total > self.rest.len()) {
            return Err(Error::CorruptCheckpoint(format!(
                "{what} {n} larger than the remaining {} payload bytes allow",
                self.rest.len()
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let n = self.len(1, what)?;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| Error::CorruptCheckpoint(format!("{what} is not valid UTF-8")))
    }

    fn done(&self) -> Result<()> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(Error::CorruptCheckpoint(format!(
                "{} trailing bytes after the profile encoding",
                self.rest.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// `true` when `new` grew past `old` by more than `threshold_pct` percent.
/// Integer-exact: `new * 100 > old * (100 + threshold_pct)`, computed in
/// u128 so no realistic counter can overflow. A value that appears from
/// zero is always flagged (any growth from nothing exceeds any relative
/// threshold).
pub fn is_regression(old: u64, new: u64, threshold_pct: u64) -> bool {
    if new <= old {
        return false;
    }
    if old == 0 {
        return true;
    }
    u128::from(new) * 100 > u128::from(old) * (100 + u128::from(threshold_pct))
}

fn fmt_delta(old: u64, new: u64) -> String {
    if new >= old {
        format!("+{}", new - old)
    } else {
        format!("-{}", old - new)
    }
}

fn diff_line(out: &mut String, name: &str, old: u64, new: u64, threshold_pct: u64) {
    let flag = if is_regression(old, new, threshold_pct) { " REGRESSION" } else { "" };
    let _ = writeln!(out, "  {name}: {old} -> {new} ({}){flag}", fmt_delta(old, new));
}

/// Merges two name-keyed value lists into one sorted sequence of
/// `(name, old, new)`, treating a missing side as zero.
fn merge<'a, I, J>(old: I, new: J) -> Vec<(String, u64, u64)>
where
    I: IntoIterator<Item = (&'a str, u64)>,
    J: IntoIterator<Item = (&'a str, u64)>,
{
    let mut m: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (name, v) in old {
        m.entry(name).or_insert((0, 0)).0 = v;
    }
    for (name, v) in new {
        m.entry(name).or_insert((0, 0)).1 = v;
    }
    m.into_iter().map(|(name, (o, n))| (name.to_owned(), o, n)).collect()
}

/// Renders a human-readable diff of two profiles: counters, span costs,
/// histogram sums and sketch tail quantiles, each line flagged
/// `REGRESSION` when the new value grew more than `threshold_pct` percent
/// over the old. Output is deterministic (name-sorted) and returns the
/// number of regressions alongside the text.
pub fn render_profile_diff(
    old: &ProfileSnapshot,
    new: &ProfileSnapshot,
    threshold_pct: u64,
) -> (String, u64) {
    let mut out = String::new();
    let _ = writeln!(out, "profile diff (regression threshold {threshold_pct}%)");
    let mut regressions = 0u64;
    let mut section = |out: &mut String, title: &str, rows: Vec<(String, u64, u64)>| {
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(out, "{title}:");
        for (name, o, n) in rows {
            if is_regression(o, n, threshold_pct) {
                regressions += 1;
            }
            diff_line(out, &name, o, n, threshold_pct);
        }
    };
    section(
        &mut out,
        "counters",
        merge(
            old.counters.iter().map(|(n, v)| (n.as_str(), *v)),
            new.counters.iter().map(|(n, v)| (n.as_str(), *v)),
        ),
    );
    section(
        &mut out,
        "span totals",
        merge(
            old.spans.iter().map(|s| (s.name.as_str(), s.total)),
            new.spans.iter().map(|s| (s.name.as_str(), s.total)),
        ),
    );
    section(
        &mut out,
        "histogram sums",
        merge(
            old.hists.iter().map(|h| (h.name.as_str(), h.sum)),
            new.hists.iter().map(|h| (h.name.as_str(), h.sum)),
        ),
    );
    section(
        &mut out,
        "sketch p99",
        merge(
            old.sketches.iter().map(|s| (s.name.as_str(), s.p99)),
            new.sketches.iter().map(|s| (s.name.as_str(), s.p99)),
        ),
    );
    let _ = writeln!(out, "regressions: {regressions}");
    (out, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggsky_obs::{Recorder, Stamp, TraceRecorder};

    fn sample_profile() -> ProfileSnapshot {
        let rec = TraceRecorder::new();
        let root = rec.span_start("select", 0, Stamp::tick(0));
        let scan = rec.span_start("scan", 0, Stamp::tick(0));
        rec.span_end(scan, Stamp::tick(40), &[]);
        rec.span_end(root, Stamp::tick(100), &[]);
        rec.add(aggsky_obs::Counter::RecordPairs, 100);
        rec.add(aggsky_obs::Counter::CacheHits, 7);
        rec.observe(aggsky_obs::Hist::BatchBlockPairs, 12);
        rec.observe(aggsky_obs::Hist::BatchBlockPairs, 48);
        ProfileSnapshot::from_trace(&rec.snapshot())
    }

    #[test]
    fn from_trace_aggregates_spans_and_filters_zeroes() {
        let p = sample_profile();
        assert!(p.counters.iter().any(|(n, v)| n == "aggsky_record_pairs_total" && *v == 100));
        assert!(!p.counters.iter().any(|(n, _)| n == "aggsky_checkpoint_saves_total"));
        let scan = p.spans.iter().find(|s| s.name == "scan").expect("scan span aggregated");
        assert_eq!((scan.count, scan.total), (1, 40));
        // BatchBlockPairs feeds its paired sketch, so the profile carries
        // the tail summary too.
        let sk = p.sketches.iter().find(|s| s.name.contains("batch_block_pairs"));
        assert_eq!(sk.map(|s| s.count), Some(2));
    }

    #[test]
    fn encode_decode_round_trip_is_identity() {
        let p = sample_profile();
        let bytes = p.encode();
        assert_eq!(ProfileSnapshot::decode(&bytes).expect("fresh profile must decode"), p);
    }

    #[test]
    fn empty_profile_round_trips() {
        let p = ProfileSnapshot::default();
        assert_eq!(ProfileSnapshot::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn checkpoint_payloads_are_refused_by_tag() {
        // A checkpoint frame decodes at the outer layer but must be
        // rejected as a profile by the inner tag.
        let frame = encode_frame(b"not a profile payload");
        let err = ProfileSnapshot::decode(&frame).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(ref m) if m.contains("tag")), "{err}");
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_profile().encode();
        for keep in 0..bytes.len() {
            let cut = bytes.get(..keep).unwrap_or_default();
            assert!(
                ProfileSnapshot::decode(cut).is_err(),
                "truncation to {keep} bytes slipped through"
            );
        }
    }

    #[test]
    fn regression_threshold_is_relative_and_exact() {
        assert!(!is_regression(100, 100, 10));
        assert!(!is_regression(100, 110, 10)); // exactly at threshold: not flagged
        assert!(is_regression(100, 111, 10));
        assert!(!is_regression(100, 50, 10)); // improvements never flag
        assert!(is_regression(0, 1, 1000)); // growth from zero always flags
        assert!(is_regression(u64::MAX - 1, u64::MAX, 0)); // no overflow
    }

    #[test]
    fn diff_flags_synthetic_regression_and_counts_it() {
        let old = sample_profile();
        let mut new = sample_profile();
        for (name, v) in &mut new.counters {
            if name == "aggsky_record_pairs_total" {
                *v = 250;
            }
        }
        let (text, regressions) = render_profile_diff(&old, &new, 10);
        assert_eq!(regressions, 1);
        assert!(text.contains("aggsky_record_pairs_total: 100 -> 250 (+150) REGRESSION"), "{text}");
        assert!(text.contains("regressions: 1"), "{text}");
        let (same_text, same) = render_profile_diff(&old, &old, 10);
        assert_eq!(same, 0);
        assert!(same_text.contains("aggsky_record_pairs_total: 100 -> 100 (+0)\n"), "{same_text}");
    }

    #[test]
    fn diff_treats_missing_entries_as_zero() {
        let old = ProfileSnapshot::default();
        let new = sample_profile();
        let (text, regressions) = render_profile_diff(&old, &new, 50);
        assert!(regressions > 0, "appearing counters must flag: {text}");
        assert!(text.contains("aggsky_cache_hits_total: 0 -> 7 (+7) REGRESSION"), "{text}");
    }
}
