//! Durable checkpoint storage: numbered frame files written atomically,
//! read back with graceful degradation (DESIGN.md §15).
//!
//! One frame per file, named `frame-NNNNNN.agsk` with a monotonically
//! increasing sequence number. A save follows the classic crash-consistent
//! protocol:
//!
//! 1. write the complete frame to `frame-NNNNNN.tmp`,
//! 2. `fsync` the temp file (data durable before it becomes visible),
//! 3. `rename` it to its final name (atomic on POSIX),
//! 4. `fsync` the directory (the rename itself durable),
//! 5. prune frames beyond the retention window (best effort).
//!
//! A crash between any two steps leaves either the previous frames intact
//! (steps 1–3) or the new frame fully durable (steps 4–5) — never a
//! half-visible frame, because readers ignore `.tmp` files and the frame
//! CRC catches a torn rename target. Loading walks the frames newest-first
//! and returns the first one that fully validates; anything that does not
//! (torn write, bit rot, truncation) is recorded as a [`SkippedFrame`] and
//! the loader degrades to the next older frame, or to a clean cold start.
//!
//! Behind the `chaos` feature the store accepts an [`IoFaultPlan`] that
//! deterministically injects the classic durability failure modes at a
//! chosen save: short writes, torn frames, bit flips, failed fsync/rename,
//! and simulated crashes on either side of the rename. Faults fire exactly
//! once (atomically disarmed), mirroring `runctx`'s compute-side plans.

use crate::error::{Error, Result};
use crate::persist::frame;
use crate::persist::{Fingerprint, Snapshot};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

#[cfg(feature = "chaos")]
use std::sync::atomic::AtomicU64;
#[cfg(feature = "chaos")]
use std::sync::Arc;

/// File extension of a committed frame.
const FRAME_EXT: &str = "agsk";
/// How many committed frames a save retains (newest first). Two frames
/// means a save that corrupts silently (torn write discovered only at the
/// next load) still leaves its predecessor to degrade to.
const RETAIN: usize = 2;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{op} {}: {e}", path.display()))
}

/// Why a frame was passed over during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedFrame {
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// Human-readable reason (unreadable, truncated, checksum mismatch …).
    pub reason: String,
}

/// What a [`CheckpointStore::load`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The newest snapshot that fully validated, with its sequence number;
    /// `None` means a clean cold start.
    pub snapshot: Option<(u64, Snapshot)>,
    /// Frames that were present but failed validation, newest first.
    pub skipped: Vec<SkippedFrame>,
}

/// Receipt of a successful [`CheckpointStore::save`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReceipt {
    /// Sequence number of the committed frame.
    pub seq: u64,
    /// Size of the committed frame in bytes.
    pub bytes: u64,
}

/// A directory of checkpoint frames with atomic saves and degrading loads.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    #[cfg(feature = "chaos")]
    fault: Option<Arc<IoFaultPlan>>,
    /// Ordinal of the next save, the trigger axis for I/O faults.
    #[cfg(feature = "chaos")]
    saves_issued: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<CheckpointStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create checkpoint dir", &dir, e))?;
        Ok(CheckpointStore {
            dir,
            #[cfg(feature = "chaos")]
            fault: None,
            #[cfg(feature = "chaos")]
            saves_issued: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Attaches a deterministic I/O fault plan (replacing any previous
    /// one). Mirrors [`crate::RunContext::with_fault`] for the disk layer.
    #[cfg(feature = "chaos")]
    pub fn with_io_fault(mut self, plan: IoFaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }

    /// The attached I/O fault plan, if any.
    #[cfg(feature = "chaos")]
    pub fn io_fault(&self) -> Option<&Arc<IoFaultPlan>> {
        self.fault.as_ref()
    }

    /// Committed frame sequence numbers, ascending. Unparseable file names
    /// are ignored (the directory may hold unrelated files).
    pub fn frames(&self) -> Result<Vec<u64>> {
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("read checkpoint dir", &self.dir, e))?;
        let mut seqs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read checkpoint dir entry", &self.dir, e))?;
            if let Some(seq) = parse_frame_name(&entry.file_name()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn frame_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("frame-{seq:06}.{FRAME_EXT}"))
    }

    /// Writes `snap` as a new frame with the crash-consistent protocol
    /// above, then prunes frames beyond the retention window.
    pub fn save(&self, snap: &Snapshot) -> Result<SaveReceipt> {
        crate::invariants::check_snapshot_roundtrip(snap);
        let seq = self.frames()?.last().copied().map_or(1, |s| s.saturating_add(1));
        let mut bytes = frame::encode_frame(&frame::encode_snapshot(snap));
        let len = crate::num::wide(bytes.len());
        let ordinal = self.next_save_ordinal();
        self.corrupt_bytes(&mut bytes, ordinal);

        let tmp = self.dir.join(format!("frame-{seq:06}.tmp"));
        let final_path = self.frame_path(seq);
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", &tmp, e))?;
        self.fail_fsync(ordinal, &tmp)?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(f);
        self.crash_before_rename(ordinal, &tmp)?;
        self.fail_rename(ordinal, &tmp, &final_path)?;
        fs::rename(&tmp, &final_path).map_err(|e| io_err("rename", &tmp, e))?;
        // Make the rename itself durable: fsync the directory.
        let d = fs::File::open(&self.dir).map_err(|e| io_err("open dir", &self.dir, e))?;
        d.sync_all().map_err(|e| io_err("fsync dir", &self.dir, e))?;
        self.crash_after_rename(ordinal, &final_path)?;
        self.prune(seq);
        Ok(SaveReceipt { seq, bytes: len })
    }

    /// Drops committed frames older than the retention window, plus any
    /// stale temp files from crashed saves. Best effort: a frame that
    /// cannot be removed only costs disk space, never correctness, so
    /// failures are deliberately ignored.
    fn prune(&self, newest: u64) {
        if let Ok(seqs) = self.frames() {
            for seq in seqs.iter().rev().skip(RETAIN) {
                let _ = fs::remove_file(self.frame_path(*seq));
            }
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let is_stale_tmp = name
                    .to_str()
                    .is_some_and(|n| n.ends_with(".tmp") && n != format!("frame-{newest:06}.tmp"));
                if is_stale_tmp {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Loads the newest frame that fully validates, degrading through older
    /// frames to a clean cold start. I/O errors on individual frames count
    /// as skips (the medium may be failing exactly where the frame is);
    /// only an unreadable *directory* is a hard error.
    pub fn load(&self) -> Result<Recovery> {
        self.load_inner(None)
    }

    /// [`CheckpointStore::load`], additionally refusing a frame that
    /// validates but was produced by a different dataset/configuration.
    /// Fingerprint mismatch is a hard [`Error::CheckpointMismatch`] — a
    /// healthy foreign checkpoint must never silently degrade into a cold
    /// start that then overwrites it.
    pub fn load_for(&self, expected: &Fingerprint) -> Result<Recovery> {
        self.load_inner(Some(expected))
    }

    fn load_inner(&self, expected: Option<&Fingerprint>) -> Result<Recovery> {
        let mut seqs = self.frames()?;
        seqs.reverse();
        let mut skipped = Vec::new();
        for seq in seqs {
            let path = self.frame_path(seq);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(SkippedFrame { seq, reason: format!("unreadable: {e}") });
                    continue;
                }
            };
            let payload = match frame::decode_frame(&bytes) {
                Ok(p) => p,
                Err(e) => {
                    skipped.push(SkippedFrame { seq, reason: e.to_string() });
                    continue;
                }
            };
            if let Some(want) = expected {
                let found = match frame::peek_fingerprint(payload) {
                    Ok(fp) => fp,
                    Err(e) => {
                        skipped.push(SkippedFrame { seq, reason: e.to_string() });
                        continue;
                    }
                };
                if found != *want {
                    return Err(Error::CheckpointMismatch(format!(
                        "frame {seq} in {} was written for {found}, caller expects {want}",
                        self.dir.display()
                    )));
                }
            }
            match frame::decode_snapshot(payload) {
                Ok(snap) => return Ok(Recovery { snapshot: Some((seq, snap)), skipped }),
                Err(e) => skipped.push(SkippedFrame { seq, reason: e.to_string() }),
            }
        }
        Ok(Recovery { snapshot: None, skipped })
    }

    /// Removes every committed frame and temp file (e.g. to restart cold on
    /// purpose). Unlike pruning this is an explicit request, so failures
    /// are reported.
    pub fn clear(&self) -> Result<()> {
        for seq in self.frames()? {
            let path = self.frame_path(seq);
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("read checkpoint dir", &self.dir, e))?;
        for entry in entries.flatten() {
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
            }
        }
        Ok(())
    }

    // -- chaos hooks --------------------------------------------------------

    #[cfg(feature = "chaos")]
    fn next_save_ordinal(&self) -> u64 {
        // AcqRel: the ordinal both publishes this save's slot to other
        // threads sharing the store and observes theirs, so two concurrent
        // saves can never draw the same fault trigger.
        self.saves_issued.fetch_add(1, std::sync::atomic::Ordering::AcqRel)
    }

    #[cfg(not(feature = "chaos"))]
    fn next_save_ordinal(&self) -> u64 {
        0
    }

    /// Applies a due silent-corruption fault (short write, torn frame, bit
    /// flip) to the encoded bytes. The save then *succeeds* from the
    /// caller's point of view — exactly the failure mode where only the
    /// next load can discover the damage.
    #[cfg(feature = "chaos")]
    fn corrupt_bytes(&self, bytes: &mut Vec<u8>, ordinal: u64) {
        let Some(f) = &self.fault else { return };
        match f.kind() {
            IoFaultKind::ShortWrite if f.try_fire(ordinal) => {
                bytes.truncate(bytes.len() / 2);
            }
            IoFaultKind::TornFrame if f.try_fire(ordinal) => {
                // Model a partial page flush: the file reaches full length
                // but the tail half never made it out of the page cache.
                let mid = bytes.len() / 2;
                for b in bytes.iter_mut().skip(mid) {
                    *b = 0;
                }
            }
            IoFaultKind::BitFlip if f.try_fire(ordinal) && !bytes.is_empty() => {
                let pos = crate::num::narrow(f.offset_seed() % crate::num::wide(bytes.len()))
                    .unwrap_or(0);
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 1 << (f.offset_seed() % 8);
                }
            }
            _ => {}
        }
    }

    #[cfg(not(feature = "chaos"))]
    fn corrupt_bytes(&self, _bytes: &mut [u8], _ordinal: u64) {}

    #[cfg(feature = "chaos")]
    fn fail_fsync(&self, ordinal: u64, tmp: &Path) -> Result<()> {
        if let Some(f) = &self.fault {
            if matches!(f.kind(), IoFaultKind::FailFsync) && f.try_fire(ordinal) {
                let _ = fs::remove_file(tmp);
                return Err(Error::Io(format!(
                    "chaos: injected fsync failure on {}",
                    tmp.display()
                )));
            }
        }
        Ok(())
    }

    #[cfg(not(feature = "chaos"))]
    fn fail_fsync(&self, _ordinal: u64, _tmp: &Path) -> Result<()> {
        Ok(())
    }

    #[cfg(feature = "chaos")]
    fn fail_rename(&self, ordinal: u64, tmp: &Path, to: &Path) -> Result<()> {
        if let Some(f) = &self.fault {
            if matches!(f.kind(), IoFaultKind::FailRename) && f.try_fire(ordinal) {
                let _ = fs::remove_file(tmp);
                return Err(Error::Io(format!(
                    "chaos: injected rename failure {} -> {}",
                    tmp.display(),
                    to.display()
                )));
            }
        }
        Ok(())
    }

    #[cfg(not(feature = "chaos"))]
    fn fail_rename(&self, _ordinal: u64, _tmp: &Path, _to: &Path) -> Result<()> {
        Ok(())
    }

    #[cfg(feature = "chaos")]
    fn crash_before_rename(&self, ordinal: u64, tmp: &Path) -> Result<()> {
        if let Some(f) = &self.fault {
            if matches!(f.kind(), IoFaultKind::CrashBeforeRename) && f.try_fire(ordinal) {
                // Simulated process death: the durable-but-uncommitted temp
                // file stays on disk, exactly as a real crash would leave
                // it, and the caller sees the save never return success.
                return Err(Error::Io(format!(
                    "chaos: simulated crash before rename of {}",
                    tmp.display()
                )));
            }
        }
        Ok(())
    }

    #[cfg(not(feature = "chaos"))]
    fn crash_before_rename(&self, _ordinal: u64, _tmp: &Path) -> Result<()> {
        Ok(())
    }

    #[cfg(feature = "chaos")]
    fn crash_after_rename(&self, ordinal: u64, committed: &Path) -> Result<()> {
        if let Some(f) = &self.fault {
            if matches!(f.kind(), IoFaultKind::CrashAfterRename) && f.try_fire(ordinal) {
                // The frame is fully durable; the process dies between
                // frames, before it could report success or prune.
                return Err(Error::Io(format!(
                    "chaos: simulated crash after commit of {}",
                    committed.display()
                )));
            }
        }
        Ok(())
    }

    #[cfg(not(feature = "chaos"))]
    fn crash_after_rename(&self, _ordinal: u64, _committed: &Path) -> Result<()> {
        Ok(())
    }
}

fn parse_frame_name(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    let stem = name.strip_suffix(".agsk")?;
    let digits = stem.strip_prefix("frame-")?;
    digits.parse::<u64>().ok()
}

#[cfg(feature = "chaos")]
pub use self::chaos::{IoFaultKind, IoFaultPlan};

#[cfg(feature = "chaos")]
mod chaos {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// The durability failure an [`IoFaultPlan`] injects at its save.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum IoFaultKind {
        /// Only a prefix of the frame reaches the file; the save still
        /// reports success (discovered at the next load).
        ShortWrite,
        /// The file reaches full length but its tail half is zeros — a
        /// partial page flush; the save still reports success.
        TornFrame,
        /// One seeded bit of the frame flips in flight; the save still
        /// reports success.
        BitFlip,
        /// `fsync` of the temp file fails; the save returns a typed
        /// [`crate::Error::Io`] and nothing becomes visible.
        FailFsync,
        /// The commit `rename` fails; the save returns a typed
        /// [`crate::Error::Io`] and nothing becomes visible.
        FailRename,
        /// Simulated process death after the temp file is durable but
        /// before the rename: the save never returns success and the temp
        /// file is left behind for the next open to ignore and prune.
        CrashBeforeRename,
        /// Simulated process death after the rename committed: the frame is
        /// durable but the saver never learns it.
        CrashAfterRename,
    }

    /// A deterministic, fire-once I/O fault, triggered by save *ordinal*
    /// (0-based count of saves issued through the store) rather than by
    /// virtual tick — the disk layer has no record-pair clock. All state is
    /// atomic so a plan can be shared across threads, mirroring
    /// [`crate::FaultPlan`].
    #[derive(Debug)]
    pub struct IoFaultPlan {
        kind: IoFaultKind,
        /// Save ordinal at (or after) which the fault fires.
        at_save: u64,
        /// Seed driving the corrupted byte/bit position for `BitFlip`.
        offset_seed: u64,
        armed: AtomicBool,
        fired: AtomicU64,
    }

    impl IoFaultPlan {
        /// A plan injecting `kind` at the `at_save`-th save (0-based).
        pub fn new(kind: IoFaultKind, at_save: u64) -> Self {
            IoFaultPlan {
                kind,
                at_save,
                offset_seed: 0x9E37_79B9_7F4A_7C15,
                armed: AtomicBool::new(true),
                fired: AtomicU64::new(0),
            }
        }

        /// Derives a plan from a seed (the same splitmix64 step as
        /// [`crate::FaultPlan::from_seed`]): the kind, trigger save below
        /// `horizon`, and corruption offset all follow from the seed, so
        /// chaos runs replay exactly.
        pub fn from_seed(seed: u64, horizon: u64) -> Self {
            let mut state = seed;
            let r0 = splitmix64(&mut state);
            let r1 = splitmix64(&mut state);
            let r2 = splitmix64(&mut state);
            let kind = match r0 % 7 {
                0 => IoFaultKind::ShortWrite,
                1 => IoFaultKind::TornFrame,
                2 => IoFaultKind::BitFlip,
                3 => IoFaultKind::FailFsync,
                4 => IoFaultKind::FailRename,
                5 => IoFaultKind::CrashBeforeRename,
                _ => IoFaultKind::CrashAfterRename,
            };
            let mut plan = IoFaultPlan::new(kind, r1 % horizon.max(1));
            plan.offset_seed = r2;
            plan
        }

        /// The fault's kind.
        pub fn kind(&self) -> IoFaultKind {
            self.kind
        }

        /// The save ordinal the fault triggers at.
        pub fn trigger_at(&self) -> u64 {
            self.at_save
        }

        /// Seed for the corruption position (`BitFlip`).
        pub(super) fn offset_seed(&self) -> u64 {
            self.offset_seed
        }

        /// How many times the fault has fired (0 or 1).
        pub fn fired(&self) -> u64 {
            self.fired.load(Ordering::Acquire)
        }

        /// Atomically fires the fault if its save is due and it is still
        /// armed.
        pub(super) fn try_fire(&self, ordinal: u64) -> bool {
            if ordinal < self.at_save {
                return false;
            }
            // AcqRel: the winning disarm must also publish any writes the
            // firing thread did before corrupting, matching FaultPlan.
            if self.armed.swap(false, Ordering::AcqRel) {
                self.fired.fetch_add(1, Ordering::AcqRel);
                true
            } else {
                false
            }
        }
    }

    /// The same splitmix64 step as `runctx::chaos` (re-stated because that
    /// module is private to `runctx`).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anytime::AnytimeResult;
    use crate::stats::Stats;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggsky-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snap(record_pairs: u64) -> Snapshot {
        Snapshot {
            fingerprint: Fingerprint {
                n_groups: 2,
                n_records: 3,
                dim: 2,
                gamma_bits: 0.5f64.to_bits(),
                block_size: 8,
                kernel_tag: 0,
                seed: 0,
                data_hash: 7,
            },
            partition: Some(AnytimeResult {
                confirmed_in: vec![0],
                confirmed_out: vec![],
                undecided: vec![1],
                stats: Stats { record_pairs, ..Stats::default() },
                checkpoint: None,
            }),
            pairs: Vec::new(),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.load().unwrap(), Recovery { snapshot: None, skipped: vec![] });
        let r1 = store.save(&snap(10)).unwrap();
        assert_eq!(r1.seq, 1);
        let r2 = store.save(&snap(20)).unwrap();
        assert_eq!(r2.seq, 2);
        let rec = store.load().unwrap();
        let (seq, loaded) = rec.snapshot.expect("newest frame must load");
        assert_eq!(seq, 2);
        assert_eq!(loaded, snap(20));
        assert!(rec.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_the_last_two_frames() {
        let dir = tmpdir("retain");
        let store = CheckpointStore::open(&dir).unwrap();
        for i in 0..5 {
            store.save(&snap(i)).unwrap();
        }
        assert_eq!(store.frames().unwrap(), vec![4, 5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_degrades_to_older_frame() {
        let dir = tmpdir("degrade");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&snap(10)).unwrap();
        let r2 = store.save(&snap(20)).unwrap();
        // Torn tail on the newest frame.
        let path = store.frame_path(r2.seq);
        let mut bytes = fs::read(&path).unwrap();
        let keep = bytes.len() / 2;
        bytes.truncate(keep);
        fs::write(&path, &bytes).unwrap();
        let rec = store.load().unwrap();
        let (seq, loaded) = rec.snapshot.expect("older frame must rescue the load");
        assert_eq!(seq, 1);
        assert_eq!(loaded, snap(10));
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.skipped.first().map(|s| s.seq), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_frames_corrupt_is_a_clean_cold_start() {
        let dir = tmpdir("coldstart");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&snap(10)).unwrap();
        store.save(&snap(20)).unwrap();
        for seq in store.frames().unwrap() {
            fs::write(store.frame_path(seq), b"not a frame").unwrap();
        }
        let rec = store.load().unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.skipped.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_ignored_and_pruned() {
        let dir = tmpdir("staletmp");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join("frame-000009.tmp"), b"half a frame from a crashed save").unwrap();
        let rec = store.load().unwrap();
        assert!(rec.snapshot.is_none(), "tmp files must not be read as frames");
        store.save(&snap(5)).unwrap();
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")))
            .collect();
        assert!(leftover.is_empty(), "crashed-save tmp file survived pruning");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_is_refused_not_degraded() {
        let dir = tmpdir("mismatch");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&snap(10)).unwrap();
        let mut other = snap(10).fingerprint;
        other.data_hash ^= 1;
        let err = store.load_for(&other).unwrap_err();
        assert!(matches!(err, Error::CheckpointMismatch(_)), "{err}");
        // The matching fingerprint still loads.
        assert!(store.load_for(&snap(10).fingerprint).unwrap().snapshot.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_every_frame() {
        let dir = tmpdir("clear");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&snap(1)).unwrap();
        store.save(&snap(2)).unwrap();
        store.clear().unwrap();
        assert!(store.frames().unwrap().is_empty());
        assert!(store.load().unwrap().snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "chaos")]
    mod chaos_tests {
        use super::*;

        #[test]
        fn silent_faults_are_detected_at_the_next_load() {
            for kind in [IoFaultKind::ShortWrite, IoFaultKind::TornFrame, IoFaultKind::BitFlip] {
                let dir = tmpdir(&format!("silent-{kind:?}"));
                let store =
                    CheckpointStore::open(&dir).unwrap().with_io_fault(IoFaultPlan::new(kind, 1));
                store.save(&snap(10)).unwrap();
                store.save(&snap(20)).unwrap(); // fault fires here, silently
                assert_eq!(store.io_fault().map(|f| f.fired()), Some(1));
                let rec = store.load().unwrap();
                let (seq, loaded) = rec.snapshot.expect("older frame must rescue");
                assert_eq!((seq, loaded), (1, snap(10)), "{kind:?}");
                assert_eq!(rec.skipped.len(), 1, "{kind:?}");
                let _ = fs::remove_dir_all(&dir);
            }
        }

        #[test]
        fn loud_faults_error_and_leave_previous_frames_intact() {
            for kind in
                [IoFaultKind::FailFsync, IoFaultKind::FailRename, IoFaultKind::CrashBeforeRename]
            {
                let dir = tmpdir(&format!("loud-{kind:?}"));
                let store =
                    CheckpointStore::open(&dir).unwrap().with_io_fault(IoFaultPlan::new(kind, 1));
                store.save(&snap(10)).unwrap();
                let err = store.save(&snap(20)).unwrap_err();
                assert!(matches!(err, Error::Io(_)), "{kind:?}: {err}");
                let rec = store.load().unwrap();
                assert_eq!(rec.snapshot, Some((1, snap(10))), "{kind:?}");
                assert!(rec.skipped.is_empty(), "{kind:?}");
                let _ = fs::remove_dir_all(&dir);
            }
        }

        #[test]
        fn crash_after_rename_commits_the_frame() {
            let dir = tmpdir("crash-after");
            let store = CheckpointStore::open(&dir)
                .unwrap()
                .with_io_fault(IoFaultPlan::new(IoFaultKind::CrashAfterRename, 0));
            let err = store.save(&snap(10)).unwrap_err();
            assert!(matches!(err, Error::Io(_)), "{err}");
            // The saver died without a receipt, but the frame is durable.
            let rec = store.load().unwrap();
            assert_eq!(rec.snapshot, Some((1, snap(10))));
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn io_faults_fire_exactly_once() {
            let dir = tmpdir("fireonce");
            let store = CheckpointStore::open(&dir)
                .unwrap()
                .with_io_fault(IoFaultPlan::new(IoFaultKind::FailFsync, 0));
            assert!(store.save(&snap(1)).is_err());
            // Disarmed: the retry succeeds.
            assert!(store.save(&snap(1)).is_ok());
            assert_eq!(store.io_fault().map(|f| f.fired()), Some(1));
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn seeded_io_plans_are_reproducible() {
            for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
                let a = IoFaultPlan::from_seed(seed, 10);
                let b = IoFaultPlan::from_seed(seed, 10);
                assert_eq!(a.kind(), b.kind(), "seed {seed}");
                assert_eq!(a.trigger_at(), b.trigger_at(), "seed {seed}");
                assert!(a.trigger_at() < 10);
            }
        }
    }
}
