//! Durable, crash-consistent checkpoints for anytime runs and pair-cache
//! state (DESIGN.md §15).
//!
//! The layer has three floors:
//!
//! * [`crc64`] — the dependency-free CRC-64/XZ integrity check;
//! * [`frame`] — the checksummed, versioned, length-prefixed frame codec
//!   for one [`Snapshot`] (an [`AnytimeResult`] partition and/or exported
//!   [`crate::PairCache`] tallies, bound to a [`Fingerprint`]);
//! * [`store`] — numbered frame files written with the atomic
//!   temp-file + fsync + rename protocol and read back with graceful
//!   degradation (newest valid frame → older valid frame → cold start).
//!
//! On top sit the drivers: [`checkpoint_step`] runs *one* budgeted chunk —
//! recover from disk, advance, persist — and [`run_durable`] loops it to
//! completion. Crucially the drivers persist **cumulative** [`Stats`]
//! inside each frame: work that was charged and persisted is never charged
//! again after a crash (it is recovered, not recomputed), while work lost
//! between the crash and the last durable frame is recomputed *and*
//! recharged — it was never persisted, so the totals still come out
//! exactly equal to an uninterrupted one-shot run. This mirrors the
//! γ-sweep single-charging rule and is what the crash/recovery
//! differential suite pins down bit-for-bit.

pub mod crc64;
pub mod frame;
pub mod profile;
pub mod store;

pub use profile::{is_regression, render_profile_diff, ProfileSnapshot};
pub use store::{CheckpointStore, Recovery, SaveReceipt, SkippedFrame};

#[cfg(feature = "chaos")]
pub use store::{IoFaultKind, IoFaultPlan};

use crate::anytime::{anytime_resume_ctx, anytime_skyline_ctx, AnytimeResult};
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::kernel::KernelConfig;
use crate::paircache::CachedTally;
use crate::runctx::{InterruptReason, RunContext};
use crate::stats::Stats;
use aggsky_obs::{Counter, Hist, Stamp, WallClock};
use std::fmt;

/// Identity of the inputs a checkpoint was computed from. Embedded at the
/// head of every frame; resuming against a different dataset, γ or kernel
/// configuration is refused with [`Error::CheckpointMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Number of groups in the dataset.
    pub n_groups: u64,
    /// Total number of records.
    pub n_records: u64,
    /// Dimensionality.
    pub dim: u64,
    /// IEEE-754 bit pattern of the γ threshold (bit-exact, no epsilon).
    pub gamma_bits: u64,
    /// Kernel block size the persisted cursors are meaningful for.
    pub block_size: u64,
    /// Kernel family tag (see [`Fingerprint::with_kernel`]).
    pub kernel_tag: u8,
    /// Caller-chosen seed / run identifier (0 when unused).
    pub seed: u64,
    /// CRC-64 over the dataset content: dimensions, directions, group
    /// labels and lengths, and every coordinate's bit pattern.
    pub data_hash: u64,
}

impl Fingerprint {
    /// Fingerprints `ds` under `gamma` with the default kernel
    /// configuration (no blocking, seed 0). Refine with
    /// [`Fingerprint::with_kernel`] / [`Fingerprint::with_seed`].
    pub fn of(ds: &GroupedDataset, gamma: Gamma) -> Fingerprint {
        let mut h = crc64::Crc64::new();
        h.update_u64(crate::num::wide(ds.dim()));
        h.update_u64(crate::num::wide(ds.n_groups()));
        for d in ds.directions() {
            h.update(&[match d {
                crate::dominance::Direction::Max => 0u8,
                crate::dominance::Direction::Min => 1u8,
            }]);
        }
        for g in ds.group_ids() {
            let label = ds.label(g);
            h.update_u64(crate::num::wide(label.len()));
            h.update(label.as_bytes());
            h.update_u64(crate::num::wide(ds.group_len(g)));
            for v in ds.group_rows(g) {
                h.update_u64(v.to_bits());
            }
        }
        Fingerprint {
            n_groups: crate::num::wide(ds.n_groups()),
            n_records: crate::num::wide(ds.n_records()),
            dim: crate::num::wide(ds.dim()),
            gamma_bits: gamma.value().to_bits(),
            block_size: 0,
            kernel_tag: 0,
            seed: 0,
            data_hash: h.finish(),
        }
    }

    /// Binds the fingerprint to a kernel configuration (tag + block size),
    /// so cursors persisted under one blocking are never replayed under
    /// another.
    pub fn with_kernel(mut self, cfg: KernelConfig) -> Fingerprint {
        let (tag, block_size) = match cfg {
            KernelConfig::Exhaustive => (1u8, 0usize),
            KernelConfig::Blocked { block_size } => (2, block_size),
            KernelConfig::Columnar { block_size } => (3, block_size),
            KernelConfig::ColumnarScalar { block_size } => (4, block_size),
        };
        self.kernel_tag = tag;
        self.block_size = crate::num::wide(block_size);
        self
    }

    /// Binds the fingerprint to a caller-chosen seed / run identifier.
    pub fn with_seed(mut self, seed: u64) -> Fingerprint {
        self.seed = seed;
        self
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} groups / {} records / {} dims, gamma bits {:#x}, kernel {} block {}, seed {}, \
             data hash {:#018x}",
            self.n_groups,
            self.n_records,
            self.dim,
            self.gamma_bits,
            self.kernel_tag,
            self.block_size,
            self.seed,
            self.data_hash
        )
    }
}

/// One exported [`crate::PairCache`] entry in canonical orientation
/// (`lo < hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEntry {
    /// Smaller group id of the unordered pair.
    pub lo: GroupId,
    /// Larger group id.
    pub hi: GroupId,
    /// The memoized counting state.
    pub tally: CachedTally,
}

/// Everything one frame persists: the input fingerprint, optionally an
/// anytime partition (with **cumulative** stats across all chunks charged
/// so far), and optionally exported pair-cache tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Identity of the inputs; checked before anything else is trusted.
    pub fingerprint: Fingerprint,
    /// The anytime partition at the moment of the save, if the frame
    /// carries one. Its `stats` are cumulative, so recovery resumes the
    /// budget accounting exactly where the durable history left it.
    pub partition: Option<AnytimeResult>,
    /// Exported pair-cache tallies, canonical orientation, ascending keys.
    pub pairs: Vec<PairEntry>,
}

/// What a durable run (or single [`checkpoint_step`]) produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableOutcome {
    /// The partition, with stats cumulative across every chunk ever
    /// charged for this checkpoint lineage (recovered frames included).
    pub result: AnytimeResult,
    /// Sequence number of the frame recovery resumed from (`None` = cold
    /// start).
    pub resumed_seq: Option<u64>,
    /// Sequence number of the frame this step committed (`None` when the
    /// recovered state was already complete and nothing new was written).
    pub saved_seq: Option<u64>,
    /// Frames that failed validation during recovery (torn writes found
    /// and degraded past).
    pub frames_skipped: usize,
    /// Why the chunk stopped short of completion, if it did.
    pub interrupt: Option<InterruptReason>,
}

impl DurableOutcome {
    /// True iff no group is left undecided.
    pub fn is_complete(&self) -> bool {
        self.result.is_complete()
    }
}

/// Runs **one** durable chunk: recover the newest valid frame for this
/// dataset/γ (degrading past torn frames), advance the anytime engine
/// under `ctx`'s budget/cancellation, and commit the new cumulative state
/// as a frame. Persist I/O is recorded on `ctx`'s recorder under the
/// wall-clock domain ([`WallClock`], the sanctioned source — persistence
/// is off the deterministic counting path).
///
/// Stats discipline: the committed frame stores *cumulative* stats
/// (recovered total + this chunk's fresh work), so a later recovery
/// continues the accounting without double-charging anything that was
/// already durable.
pub fn checkpoint_step(
    ds: &GroupedDataset,
    gamma: Gamma,
    ctx: &RunContext,
    store: &CheckpointStore,
) -> Result<DurableOutcome> {
    let fp = Fingerprint::of(ds, gamma);
    checkpoint_step_with(ds, gamma, ctx, store, &fp)
}

/// [`checkpoint_step`] with a caller-built [`Fingerprint`] (e.g. bound to
/// a kernel configuration or seed via [`Fingerprint::with_kernel`]).
pub fn checkpoint_step_with(
    ds: &GroupedDataset,
    gamma: Gamma,
    ctx: &RunContext,
    store: &CheckpointStore,
    fp: &Fingerprint,
) -> Result<DurableOutcome> {
    let rec = ctx.recorder();

    let clock = WallClock::start();
    let load_span = rec.span_start("checkpoint_load", 0, Stamp::wall_micros(0));
    let recovery = store.load_for(fp)?;
    let frames_skipped = recovery.skipped.len();
    rec.span_end(
        load_span,
        Stamp::wall_micros(clock.elapsed_micros()),
        &[
            ("recovered", u64::from(recovery.snapshot.is_some())),
            ("frames_skipped", crate::num::wide(frames_skipped)),
        ],
    );
    rec.add(Counter::CheckpointLoads, 1);
    rec.add(Counter::CheckpointFramesSkipped, crate::num::wide(frames_skipped));

    let (prev, resumed_seq) = match recovery.snapshot {
        Some((seq, snap)) => (snap.partition, Some(seq)),
        None => (None, None),
    };
    if resumed_seq.is_some() {
        // Recovery is rare and diagnostic gold: flush the flight ring so
        // the events leading into the crash survive next to the resume.
        rec.dump("checkpoint_recovery");
    }

    // A recovered complete partition is final: return it verbatim (its
    // stats are already the cumulative total) and write nothing.
    if let Some(p) = &prev {
        if p.is_complete() {
            return Ok(DurableOutcome {
                result: p.clone(),
                resumed_seq,
                saved_seq: None,
                frames_skipped,
                interrupt: None,
            });
        }
    }

    let recovered_stats = prev.as_ref().map_or_else(Stats::default, |p| p.stats);
    let chunk = match &prev {
        None => anytime_skyline_ctx(ds, gamma, ctx),
        Some(p) => anytime_resume_ctx(ds, gamma, ctx, p)?,
    };

    // Cumulative accounting: recovered (already persisted, never redone)
    // plus this chunk's fresh work. `chunk.stats` counts from zero.
    let mut cumulative = recovered_stats;
    cumulative.merge(&chunk.stats);
    let mut partition = chunk;
    partition.stats = cumulative;

    let interrupt = if partition.is_complete() {
        None
    } else if ctx.cancel_token().is_cancelled() {
        Some(InterruptReason::Cancelled)
    } else {
        Some(InterruptReason::BudgetExhausted)
    };

    let snap = Snapshot { fingerprint: *fp, partition: Some(partition.clone()), pairs: Vec::new() };
    let clock = WallClock::start();
    let save_span = rec.span_start("checkpoint_save", 0, Stamp::wall_micros(0));
    let receipt = store.save(&snap);
    let (saved_seq, bytes) = match &receipt {
        Ok(r) => (Some(r.seq), r.bytes),
        Err(_) => (None, 0),
    };
    rec.span_end(
        save_span,
        Stamp::wall_micros(clock.elapsed_micros()),
        &[("seq", saved_seq.unwrap_or(0)), ("bytes", bytes)],
    );
    let receipt = receipt?;
    rec.add(Counter::CheckpointSaves, 1);
    rec.observe(Hist::CheckpointFrameBytes, receipt.bytes);

    Ok(DurableOutcome {
        result: partition,
        resumed_seq,
        saved_seq: Some(receipt.seq),
        frames_skipped,
        interrupt,
    })
}

/// Loops [`checkpoint_step`] with a fresh `chunk_budget`-tick context per
/// chunk until the partition is complete. Every chunk re-recovers from
/// disk before advancing, so the loop *is* the crash-at-every-boundary
/// discipline the differential suite exercises: killing the process
/// between any two chunks and re-invoking `run_durable` changes nothing.
pub fn run_durable(
    ds: &GroupedDataset,
    gamma: Gamma,
    chunk_budget: u64,
    store: &CheckpointStore,
) -> Result<DurableOutcome> {
    if chunk_budget == 0 {
        return Err(Error::InvalidArgument(
            "durable chunk budget must be positive (a zero-tick chunk can never progress)".into(),
        ));
    }
    let mut first_resume = None;
    let mut total_skipped = 0usize;
    let mut first = true;
    loop {
        let ctx = RunContext::with_budget(chunk_budget);
        let step = checkpoint_step(ds, gamma, &ctx, store)?;
        if first {
            first_resume = step.resumed_seq;
            first = false;
        }
        total_skipped += step.frames_skipped;
        if step.is_complete() {
            return Ok(DurableOutcome {
                resumed_seq: first_resume,
                frames_skipped: total_skipped,
                ..step
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anytime::anytime_skyline;
    use crate::testdata::random_dataset;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aggsky-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let ds = random_dataset(10, 5, 3, 42);
        let base = Fingerprint::of(&ds, Gamma::DEFAULT);
        assert_eq!(base, Fingerprint::of(&ds, Gamma::DEFAULT), "deterministic");
        let other_gamma = Fingerprint::of(&ds, Gamma::new(0.75).unwrap());
        assert_ne!(base, other_gamma);
        let other_data = Fingerprint::of(&random_dataset(10, 5, 3, 43), Gamma::DEFAULT);
        assert_ne!(base.data_hash, other_data.data_hash);
        assert_ne!(base, base.with_seed(1));
        assert_ne!(base, base.with_kernel(KernelConfig::Blocked { block_size: 8 }));
        assert_ne!(
            base.with_kernel(KernelConfig::Blocked { block_size: 8 }),
            base.with_kernel(KernelConfig::Columnar { block_size: 8 }),
        );
    }

    #[test]
    fn run_durable_equals_one_shot_at_any_chunk_size() {
        for seed in 0..4 {
            let ds = random_dataset(14, 6, 3, 4200 + seed);
            let full = anytime_skyline(&ds, Gamma::DEFAULT, u64::MAX);
            for step in [1u64, 13, 250, u64::MAX] {
                let dir = tmpdir(&format!("durable-{seed}-{step}"));
                let store = CheckpointStore::open(&dir).unwrap();
                let out = run_durable(&ds, Gamma::DEFAULT, step, &store).unwrap();
                assert!(out.is_complete());
                assert_eq!(out.result, full, "seed {seed} step {step}");
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    #[test]
    fn rerunning_a_complete_checkpoint_is_instant_and_identical() {
        let ds = random_dataset(12, 6, 3, 4300);
        let dir = tmpdir("rerun");
        let store = CheckpointStore::open(&dir).unwrap();
        let first = run_durable(&ds, Gamma::DEFAULT, 100, &store).unwrap();
        let second = run_durable(&ds, Gamma::DEFAULT, 100, &store).unwrap();
        assert_eq!(second.result, first.result, "stats must not re-accumulate");
        assert_eq!(second.saved_seq, None, "a complete recovery writes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_dataset_is_refused() {
        let ds1 = random_dataset(10, 5, 3, 4400);
        let ds2 = random_dataset(10, 5, 3, 4401);
        let dir = tmpdir("refuse");
        let store = CheckpointStore::open(&dir).unwrap();
        run_durable(&ds1, Gamma::DEFAULT, 50, &store).unwrap();
        let err = run_durable(&ds2, Gamma::DEFAULT, 50, &store).unwrap_err();
        assert!(matches!(err, Error::CheckpointMismatch(_)), "{err}");
        // Same data under a different γ is a different question too.
        let err = run_durable(&ds1, Gamma::new(0.9).unwrap(), 50, &store).unwrap_err();
        assert!(matches!(err, Error::CheckpointMismatch(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_chunk_budget_is_rejected() {
        let ds = random_dataset(6, 4, 2, 4500);
        let dir = tmpdir("zerobudget");
        let store = CheckpointStore::open(&dir).unwrap();
        let err = run_durable(&ds, Gamma::DEFAULT, 0, &store).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_step_reports_interrupt_reason() {
        let ds = random_dataset(14, 6, 3, 4600);
        let dir = tmpdir("reason");
        let store = CheckpointStore::open(&dir).unwrap();
        let ctx = RunContext::with_budget(1);
        let step = checkpoint_step(&ds, Gamma::DEFAULT, &ctx, &store).unwrap();
        assert!(!step.is_complete(), "one tick should not finish this dataset");
        assert_eq!(step.interrupt, Some(InterruptReason::BudgetExhausted));
        let ctx = RunContext::unlimited();
        ctx.cancel_token().cancel();
        let step = checkpoint_step(&ds, Gamma::DEFAULT, &ctx, &store).unwrap();
        assert_eq!(step.interrupt, Some(InterruptReason::Cancelled));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
