//! The checkpoint frame codec: a checksummed, versioned, length-prefixed
//! container for one [`Snapshot`] (DESIGN.md §15).
//!
//! ```text
//! ┌──────────┬─────────┬─────────────┬───────────────┬───────────┐
//! │ magic    │ version │ payload_len │ payload       │ crc64     │
//! │ 8 bytes  │ u32 LE  │ u64 LE      │ payload_len B │ u64 LE    │
//! │ AGSKCKP1 │         │             │               │ over v+l+p│
//! └──────────┴─────────┴─────────────┴───────────────┴───────────┘
//! ```
//!
//! The CRC covers everything after the magic (version, length prefix and
//! payload), so a torn write, a flipped bit or a truncated tail is detected
//! before a single payload byte is interpreted. Decoding never panics and
//! never allocates more than the input holds: every length field is checked
//! against the bytes actually present before it is trusted.
//!
//! The payload is the [`Snapshot`] encoding, fingerprint first — a reader
//! can reject a frame from the wrong dataset without parsing the rest. All
//! integers are little-endian `u64` (group ids go through the sanctioned
//! [`crate::num`] conversions), floats travel as IEEE-754 bit patterns so
//! the round-trip is bit-exact.

use crate::anytime::{AnytimeCheckpoint, AnytimeResult};
use crate::dataset::GroupId;
use crate::error::{Error, Result};
use crate::paircache::CachedTally;
use crate::persist::crc64::crc64;
use crate::persist::{Fingerprint, PairEntry, Snapshot};
use crate::stats::Stats;

/// Frame magic: "AGSK" (the project) + "CKP" (checkpoint) + format family.
pub const MAGIC: [u8; 8] = *b"AGSKCKP1";
/// Current frame version; readers refuse newer versions instead of
/// guessing at their layout.
pub const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Byte-level reader/writer (no indexing, no panics)
// ---------------------------------------------------------------------------

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(crate::num::wide(v));
    }

    fn ids(&mut self, ids: &[GroupId]) {
        self.usize(ids.len());
        for &g in ids {
            self.usize(g);
        }
    }
}

struct ByteReader<'a> {
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { rest: bytes }
    }

    fn corrupt(what: &str) -> Error {
        Error::CorruptCheckpoint(format!("frame payload truncated reading {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let (head, tail) = self.rest.split_at_checked(n).ok_or_else(|| Self::corrupt(what))?;
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        let b = self.take(1, what)?;
        b.first().copied().ok_or_else(|| Self::corrupt(what))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| Self::corrupt(what))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn usize(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        crate::num::narrow(v)
            .ok_or_else(|| Error::CorruptCheckpoint(format!("{what} {v} exceeds usize")))
    }

    /// A length prefix that must be realizable from the remaining bytes
    /// (each element at least `elem_bytes` wide), so a corrupted count can
    /// never drive an over-allocation.
    fn len(&mut self, elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.usize(what)?;
        if n.checked_mul(elem_bytes).is_none_or(|total| total > self.rest.len()) {
            return Err(Error::CorruptCheckpoint(format!(
                "{what} {n} larger than the remaining {} payload bytes allow",
                self.rest.len()
            )));
        }
        Ok(n)
    }

    fn ids(&mut self, what: &str) -> Result<Vec<GroupId>> {
        let n = self.len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.usize(what)?);
        }
        Ok(v)
    }

    fn done(&self) -> Result<()> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(Error::CorruptCheckpoint(format!(
                "{} trailing bytes after the snapshot encoding",
                self.rest.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame container
// ---------------------------------------------------------------------------

/// Wraps an encoded payload in the checksummed frame container.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crate::num::wide(payload.len()).to_le_bytes());
    out.extend_from_slice(payload);
    // The CRC covers version + length + payload (everything after magic,
    // before the trailer itself).
    let crc = crc64(out.get(MAGIC.len()..).unwrap_or_default());
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Unwraps a frame, verifying magic, version, length prefix and checksum.
/// Returns the payload slice. Every failure mode is a typed
/// [`Error::CorruptCheckpoint`] — never a panic, never a partial payload.
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8]> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(Error::CorruptCheckpoint("bad frame magic".into()));
    }
    let vbytes = r.take(4, "version")?;
    let varr: [u8; 4] = vbytes.try_into().map_err(|_| ByteReader::corrupt("version"))?;
    let version = u32::from_le_bytes(varr);
    if version != VERSION {
        return Err(Error::CorruptCheckpoint(format!(
            "frame version {version} not supported (reader speaks {VERSION})"
        )));
    }
    let len = r.u64("payload length")?;
    let len = crate::num::narrow(len)
        .ok_or_else(|| Error::CorruptCheckpoint(format!("payload length {len} exceeds usize")))?;
    if r.rest.len() != len + 8 {
        return Err(Error::CorruptCheckpoint(format!(
            "frame holds {} bytes where the length prefix promises {} payload + 8 crc",
            r.rest.len(),
            len
        )));
    }
    let payload = r.take(len, "payload")?;
    let stored = r.u64("crc")?;
    let covered = bytes.get(MAGIC.len()..bytes.len().saturating_sub(8)).unwrap_or_default();
    let actual = crc64(covered);
    if stored != actual {
        return Err(Error::CorruptCheckpoint(format!(
            "frame checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Snapshot payload
// ---------------------------------------------------------------------------

fn encode_fingerprint(w: &mut ByteWriter, fp: &Fingerprint) {
    w.u64(fp.n_groups);
    w.u64(fp.n_records);
    w.u64(fp.dim);
    w.u64(fp.gamma_bits);
    w.u64(fp.block_size);
    w.u8(fp.kernel_tag);
    w.u64(fp.seed);
    w.u64(fp.data_hash);
}

fn decode_fingerprint(r: &mut ByteReader<'_>) -> Result<Fingerprint> {
    Ok(Fingerprint {
        n_groups: r.u64("fingerprint n_groups")?,
        n_records: r.u64("fingerprint n_records")?,
        dim: r.u64("fingerprint dim")?,
        gamma_bits: r.u64("fingerprint gamma bits")?,
        block_size: r.u64("fingerprint block size")?,
        kernel_tag: r.u8("fingerprint kernel tag")?,
        seed: r.u64("fingerprint seed")?,
        data_hash: r.u64("fingerprint data hash")?,
    })
}

fn encode_stats(w: &mut ByteWriter, stats: &Stats) {
    // Exhaustive destructuring, like `Stats::merge`: a new counter field
    // fails to compile here until the frame format accounts for it.
    let Stats {
        group_pairs,
        record_pairs,
        bbox_resolved,
        bbox_skipped_pairs,
        early_stops,
        transitive_skips,
        index_candidates,
        blocks_full,
        blocks_skipped,
        records_compared,
        worker_retries,
        workers_quarantined,
        cache_hits,
        cache_misses,
        cache_resumes,
    } = *stats;
    for v in [
        group_pairs,
        record_pairs,
        bbox_resolved,
        bbox_skipped_pairs,
        early_stops,
        transitive_skips,
        index_candidates,
        blocks_full,
        blocks_skipped,
        records_compared,
        worker_retries,
        workers_quarantined,
        cache_hits,
        cache_misses,
        cache_resumes,
    ] {
        w.u64(v);
    }
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<Stats> {
    Ok(Stats {
        group_pairs: r.u64("stats group_pairs")?,
        record_pairs: r.u64("stats record_pairs")?,
        bbox_resolved: r.u64("stats bbox_resolved")?,
        bbox_skipped_pairs: r.u64("stats bbox_skipped_pairs")?,
        early_stops: r.u64("stats early_stops")?,
        transitive_skips: r.u64("stats transitive_skips")?,
        index_candidates: r.u64("stats index_candidates")?,
        blocks_full: r.u64("stats blocks_full")?,
        blocks_skipped: r.u64("stats blocks_skipped")?,
        records_compared: r.u64("stats records_compared")?,
        worker_retries: r.u64("stats worker_retries")?,
        workers_quarantined: r.u64("stats workers_quarantined")?,
        cache_hits: r.u64("stats cache_hits")?,
        cache_misses: r.u64("stats cache_misses")?,
        cache_resumes: r.u64("stats cache_resumes")?,
    })
}

fn encode_partition(w: &mut ByteWriter, p: &AnytimeResult) {
    w.ids(&p.confirmed_in);
    w.ids(&p.confirmed_out);
    w.ids(&p.undecided);
    encode_stats(w, &p.stats);
    match &p.checkpoint {
        None => w.u8(0),
        Some(cp) => {
            w.u8(1);
            w.usize(cp.remaining.len());
            for (g, cands) in &cp.remaining {
                w.usize(*g);
                w.ids(cands);
            }
        }
    }
}

fn decode_partition(r: &mut ByteReader<'_>) -> Result<AnytimeResult> {
    let confirmed_in = r.ids("confirmed_in")?;
    let confirmed_out = r.ids("confirmed_out")?;
    let undecided = r.ids("undecided")?;
    let stats = decode_stats(r)?;
    let checkpoint = match r.u8("checkpoint flag")? {
        0 => None,
        1 => {
            let n = r.len(16, "checkpoint group count")?;
            let mut remaining = Vec::with_capacity(n);
            for _ in 0..n {
                let g = r.usize("checkpoint group id")?;
                let cands = r.ids("checkpoint candidates")?;
                remaining.push((g, cands));
            }
            Some(AnytimeCheckpoint { remaining })
        }
        other => {
            return Err(Error::CorruptCheckpoint(format!(
                "checkpoint flag must be 0 or 1, found {other}"
            )))
        }
    };
    Ok(AnytimeResult { confirmed_in, confirmed_out, undecided, stats, checkpoint })
}

/// Encodes a [`Snapshot`] into the (unframed) payload byte stream,
/// fingerprint first.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_fingerprint(&mut w, &snap.fingerprint);
    match &snap.partition {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            encode_partition(&mut w, p);
        }
    }
    w.usize(snap.pairs.len());
    for e in &snap.pairs {
        w.usize(e.lo);
        w.usize(e.hi);
        let CachedTally { n12, n21, checked, total, cursor } = e.tally;
        for v in [n12, n21, checked, total, cursor] {
            w.u64(v);
        }
    }
    w.buf
}

/// Decodes a snapshot payload produced by [`encode_snapshot`]. The whole
/// payload must be consumed — trailing bytes are treated as corruption.
pub fn decode_snapshot(payload: &[u8]) -> Result<Snapshot> {
    let mut r = ByteReader::new(payload);
    let fingerprint = decode_fingerprint(&mut r)?;
    let partition = match r.u8("partition flag")? {
        0 => None,
        1 => Some(decode_partition(&mut r)?),
        other => {
            return Err(Error::CorruptCheckpoint(format!(
                "partition flag must be 0 or 1, found {other}"
            )))
        }
    };
    let n = r.len(56, "pair entry count")?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = r.usize("pair lo id")?;
        let hi = r.usize("pair hi id")?;
        let tally = CachedTally {
            n12: r.u64("pair n12")?,
            n21: r.u64("pair n21")?,
            checked: r.u64("pair checked")?,
            total: r.u64("pair total")?,
            cursor: r.u64("pair cursor")?,
        };
        pairs.push(PairEntry { lo, hi, tally });
    }
    r.done()?;
    Ok(Snapshot { fingerprint, partition, pairs })
}

/// Reads only the fingerprint from a snapshot payload (the first 57 bytes),
/// so a loader can reject a foreign frame without decoding the rest.
pub fn peek_fingerprint(payload: &[u8]) -> Result<Fingerprint> {
    let mut r = ByteReader::new(payload);
    decode_fingerprint(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::Snapshot;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            fingerprint: Fingerprint {
                n_groups: 4,
                n_records: 17,
                dim: 3,
                gamma_bits: 0.5f64.to_bits(),
                block_size: 8,
                kernel_tag: 2,
                seed: 99,
                data_hash: 0xDEAD_BEEF_CAFE_F00D,
            },
            partition: Some(AnytimeResult {
                confirmed_in: vec![0, 2],
                confirmed_out: vec![3],
                undecided: vec![1],
                stats: Stats { record_pairs: 42, group_pairs: 5, ..Stats::default() },
                checkpoint: Some(AnytimeCheckpoint { remaining: vec![(1, vec![0, 3])] }),
            }),
            pairs: vec![PairEntry {
                lo: 0,
                hi: 1,
                tally: CachedTally { n12: 3, n21: 1, checked: 10, total: 12, cursor: 2 },
            }],
        }
    }

    #[test]
    fn frame_round_trip_is_identity() {
        let snap = sample_snapshot();
        let frame = encode_frame(&encode_snapshot(&snap));
        let payload = decode_frame(&frame).expect("fresh frame must decode");
        assert_eq!(decode_snapshot(payload).expect("payload must parse"), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot {
            fingerprint: sample_snapshot().fingerprint,
            partition: None,
            pairs: Vec::new(),
        };
        let frame = encode_frame(&encode_snapshot(&snap));
        assert_eq!(decode_snapshot(decode_frame(&frame).unwrap()).unwrap(), snap);
    }

    #[test]
    fn peek_fingerprint_matches_full_decode() {
        let snap = sample_snapshot();
        let payload = encode_snapshot(&snap);
        assert_eq!(peek_fingerprint(&payload).unwrap(), snap.fingerprint);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(&encode_snapshot(&sample_snapshot()));
        if let Some(b) = frame.first_mut() {
            *b ^= 0xFF;
        }
        assert!(matches!(decode_frame(&frame), Err(Error::CorruptCheckpoint(_))));
    }

    #[test]
    fn future_version_is_refused_not_guessed() {
        let payload = encode_snapshot(&sample_snapshot());
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(VERSION + 1).to_le_bytes());
        frame.extend_from_slice(&crate::num::wide(payload.len()).to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crate::persist::crc64::crc64(frame.get(MAGIC.len()..).unwrap_or_default());
        frame.extend_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&frame).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(ref m) if m.contains("version")), "{err}");
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = encode_frame(&encode_snapshot(&sample_snapshot()));
        for keep in 0..frame.len() {
            let cut = frame.get(..keep).unwrap_or_default();
            assert!(
                matches!(decode_frame(cut), Err(Error::CorruptCheckpoint(_))),
                "truncation to {keep} bytes slipped through"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = encode_frame(&encode_snapshot(&sample_snapshot()));
        for i in 0..frame.len() {
            let mut m = frame.clone();
            if let Some(b) = m.get_mut(i) {
                *b ^= 0x41;
            }
            assert!(
                matches!(decode_frame(&m), Err(Error::CorruptCheckpoint(_))),
                "byte flip at {i} slipped through"
            );
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_over_allocate() {
        // A payload whose pair count claims usize::MAX: the reader must
        // reject it against the remaining byte budget, not allocate.
        let mut w = ByteWriter::new();
        encode_fingerprint(&mut w, &sample_snapshot().fingerprint);
        w.u8(0); // no partition
        w.u64(u64::MAX); // absurd pair count
        let err = decode_snapshot(&w.buf).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "{err}");
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut payload = encode_snapshot(&sample_snapshot());
        payload.push(0);
        assert!(matches!(decode_snapshot(&payload), Err(Error::CorruptCheckpoint(_))));
    }
}
