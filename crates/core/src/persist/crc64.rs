//! Dependency-free CRC-64/XZ (reflected polynomial `0xC96C5795D7870F42`),
//! the integrity check of the checkpoint frame format (DESIGN.md §15).
//!
//! CRC-64 is chosen over a cryptographic hash deliberately: the threat
//! model is *accidental* corruption — torn writes, bit rot, truncation —
//! not an adversary forging frames, and a 64-bit CRC detects every burst
//! error up to 64 bits plus random corruption with failure probability
//! `2⁻⁶⁴` at a fraction of the cost. The table is computed at first use
//! (`OnceLock`), so the codec stays allocation- and dependency-free.

use std::sync::OnceLock;

/// The CRC-64/XZ reflected generator polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = crate::num::wide(i);
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Incremental CRC-64/XZ state, for hashing a byte stream in pieces (the
/// dataset fingerprint feeds dimensions, directions, labels and raw
/// coordinate bit patterns through one hasher without concatenating them).
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// A fresh hasher (CRC-64/XZ initializes to all-ones).
    pub fn new() -> Crc64 {
        Crc64 { state: u64::MAX }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            // Masked to one byte, so the narrowing is total and the lookup
            // cannot miss in the 256-entry table.
            let idx = crate::num::narrow((self.state ^ u64::from(b)) & 0xFF).unwrap_or(0);
            let entry = t.get(idx).copied().unwrap_or(0);
            self.state = entry ^ (self.state >> 8);
        }
    }

    /// Convenience for feeding a little-endian `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The final checksum (CRC-64/XZ xors out with all-ones).
    pub fn finish(&self) -> u64 {
        self.state ^ u64::MAX
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut h = Crc64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standard CRC-64/XZ check value: crc("123456789").
    #[test]
    fn reference_check_value() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Crc64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc64(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = [0u8; 64];
        let base = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut m = data;
                m[byte] ^= 1 << bit;
                assert_ne!(crc64(&m), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
