//! Grouped multidimensional datasets: the *group universe* `U_g` of the paper.
//!
//! Records are stored row-major in one flat buffer; each group owns a
//! contiguous range of rows. MIN-preference dimensions are negated at build
//! time so every downstream comparison can assume MAX preference.

use crate::dominance::Direction;
use crate::error::{Error, Result};
use std::collections::HashMap;

/// Identifier of a group inside a [`GroupedDataset`] (its insertion index).
pub type GroupId = usize;

/// Maximum records per group (`2³² − 1`). The cap guarantees that every
/// pair-count denominator `|S|·|R|` fits in `u64` without overflow, which
/// the counting kernels rely on (see [`crate::num::pair_product`]).
pub const MAX_GROUP_LEN: usize = 0xFFFF_FFFF;

/// An immutable collection of groups of `d`-dimensional records.
///
/// This is the input to every aggregate-skyline algorithm in the crate. Use
/// [`GroupedDatasetBuilder`] to construct one:
///
/// ```
/// use aggsky_core::GroupedDatasetBuilder;
///
/// let mut b = GroupedDatasetBuilder::new(2);
/// b.push_group("Tarantino", &[vec![313.0, 8.2], vec![557.0, 9.0]]).unwrap();
/// b.push_group("Wiseau", &[vec![10.0, 3.2]]).unwrap();
/// let ds = b.build().unwrap();
/// assert_eq!(ds.n_groups(), 2);
/// assert_eq!(ds.n_records(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GroupedDataset {
    dim: usize,
    /// Row-major record values, normalized so higher is always better.
    values: Vec<f64>,
    /// `offsets[g]..offsets[g+1]` is the row range of group `g`.
    offsets: Vec<usize>,
    labels: Vec<String>,
    /// Label → id index for O(1) lookup; on duplicate labels (possible via
    /// [`GroupedDatasetBuilder::trusted_labels`]) it keeps the first id.
    label_ids: HashMap<String, GroupId>,
    directions: Vec<Direction>,
}

impl GroupedDataset {
    /// Number of dimensions of every record.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of groups (`|U_g|`).
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of records (`|U_r|`).
    #[inline]
    pub fn n_records(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// Number of records in group `g`.
    #[inline]
    pub fn group_len(&self, g: GroupId) -> usize {
        self.offsets[g + 1] - self.offsets[g]
    }

    /// Label of group `g`.
    #[inline]
    pub fn label(&self, g: GroupId) -> &str {
        &self.labels[g]
    }

    /// Looks a group up by label in O(1) (first id on duplicate labels).
    pub fn group_by_label(&self, label: &str) -> Option<GroupId> {
        self.label_ids.get(label).copied()
    }

    /// Original preference direction of each dimension.
    ///
    /// Stored values are already normalized to MAX; this records how to map
    /// them back for display (`MIN` dimensions were negated).
    #[inline]
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// The flat, normalized value buffer of group `g` (`group_len(g) * dim`
    /// values, row-major).
    #[inline]
    pub fn group_rows(&self, g: GroupId) -> &[f64] {
        &self.values[self.offsets[g] * self.dim..self.offsets[g + 1] * self.dim]
    }

    /// Record `i` (0-based within the group) of group `g`, normalized to MAX.
    #[inline]
    pub fn record(&self, g: GroupId, i: usize) -> &[f64] {
        let row = self.offsets[g] + i;
        debug_assert!(row < self.offsets[g + 1]);
        &self.values[row * self.dim..(row + 1) * self.dim]
    }

    /// Iterator over the records of group `g`.
    #[inline]
    pub fn records(&self, g: GroupId) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        self.group_rows(g).chunks_exact(self.dim)
    }

    /// Record `i` of group `g` in the *original* orientation (MIN dimensions
    /// un-negated). Allocates; intended for display, not hot loops.
    pub fn record_original(&self, g: GroupId, i: usize) -> Vec<f64> {
        self.record(g, i)
            .iter()
            .zip(self.directions.iter())
            .map(|(&v, d)| match d {
                Direction::Max => v,
                Direction::Min => -v,
            })
            .collect()
    }

    /// Iterator over all group ids.
    #[inline]
    pub fn group_ids(&self) -> std::ops::Range<GroupId> {
        0..self.n_groups()
    }

    /// Labels of the given groups, sorted, for stable test assertions.
    pub fn sorted_labels(&self, groups: &[GroupId]) -> Vec<&str> {
        let mut out: Vec<&str> = groups.iter().map(|&g| self.label(g)).collect();
        out.sort_unstable();
        out
    }
}

/// Incremental builder for [`GroupedDataset`].
#[derive(Debug, Clone)]
pub struct GroupedDatasetBuilder {
    dim: usize,
    directions: Vec<Direction>,
    values: Vec<f64>,
    offsets: Vec<usize>,
    labels: Vec<String>,
    label_ids: HashMap<String, GroupId>,
    check_duplicates: bool,
}

impl GroupedDatasetBuilder {
    /// Creates a builder for `dim`-dimensional records, all dimensions MAX.
    pub fn new(dim: usize) -> Self {
        Self::with_directions(vec![Direction::Max; dim])
    }

    /// Creates a builder with an explicit preference direction per dimension.
    pub fn with_directions(directions: Vec<Direction>) -> Self {
        Self {
            dim: directions.len(),
            directions,
            values: Vec::new(),
            offsets: vec![0],
            labels: Vec::new(),
            label_ids: HashMap::new(),
            check_duplicates: true,
        }
    }

    /// Disables the duplicate-label *rejection*; useful when bulk loading
    /// generated data whose labels are unique by construction. Lookups via
    /// [`GroupedDataset::group_by_label`] then resolve a duplicated label to
    /// its first group.
    pub fn trusted_labels(mut self) -> Self {
        self.check_duplicates = false;
        self
    }

    /// Appends a group. Rejects empty groups, groups above
    /// [`MAX_GROUP_LEN`], dimension mismatches and non-finite coordinates
    /// (NaN/±∞) — the validation that lets every downstream comparison
    /// assume a total order and every pair count fit in `u64`.
    pub fn push_group<L, R>(&mut self, label: L, rows: &[R]) -> Result<GroupId>
    where
        L: Into<String>,
        R: AsRef<[f64]>,
    {
        let label = label.into();
        if self.dim == 0 {
            return Err(Error::ZeroDimensions);
        }
        if rows.is_empty() {
            return Err(Error::EmptyGroup(label));
        }
        if rows.len() > MAX_GROUP_LEN {
            return Err(Error::GroupTooLarge { group: label, len: rows.len() });
        }
        if self.check_duplicates && self.label_ids.contains_key(&label) {
            return Err(Error::DuplicateGroup(label));
        }
        let start = self.values.len();
        for row in rows {
            let row = row.as_ref();
            if row.len() != self.dim {
                self.values.truncate(start);
                return Err(Error::DimensionMismatch { expected: self.dim, got: row.len() });
            }
            for (d, (&v, dir)) in row.iter().zip(self.directions.iter()).enumerate() {
                if !v.is_finite() {
                    self.values.truncate(start);
                    return Err(Error::NonFiniteValue { dimension: d });
                }
                self.values.push(match dir {
                    Direction::Max => v,
                    Direction::Min => -v,
                });
            }
        }
        let id = self.labels.len();
        self.label_ids.entry(label.clone()).or_insert(id);
        self.labels.push(label);
        self.offsets.push(self.offsets.last().copied().unwrap_or(0) + rows.len());
        Ok(id)
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Result<GroupedDataset> {
        if self.dim == 0 {
            return Err(Error::ZeroDimensions);
        }
        Ok(GroupedDataset {
            dim: self.dim,
            values: self.values,
            offsets: self.offsets,
            labels: self.labels,
            label_ids: self.label_ids,
            directions: self.directions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_group_dataset() -> GroupedDataset {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("a", &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        b.push_group("b", &[vec![5.0, 6.0]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_tracks_offsets_and_labels() {
        let ds = two_group_dataset();
        assert_eq!(ds.n_groups(), 2);
        assert_eq!(ds.n_records(), 3);
        assert_eq!(ds.group_len(0), 2);
        assert_eq!(ds.group_len(1), 1);
        assert_eq!(ds.label(0), "a");
        assert_eq!(ds.record(0, 1), &[3.0, 4.0]);
        assert_eq!(ds.record(1, 0), &[5.0, 6.0]);
        assert_eq!(ds.group_by_label("b"), Some(1));
        assert_eq!(ds.group_by_label("zzz"), None);
    }

    #[test]
    fn min_dimensions_are_negated_internally() {
        let mut b = GroupedDatasetBuilder::with_directions(vec![Direction::Max, Direction::Min]);
        b.push_group("g", &[vec![10.0, 3.0]]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.record(0, 0), &[10.0, -3.0]);
        assert_eq!(ds.record_original(0, 0), vec![10.0, 3.0]);
    }

    #[test]
    fn rejects_empty_group() {
        let mut b = GroupedDatasetBuilder::new(2);
        let rows: &[Vec<f64>] = &[];
        assert_eq!(b.push_group("e", rows), Err(Error::EmptyGroup("e".into())));
    }

    #[test]
    fn rejects_dimension_mismatch_and_rolls_back() {
        let mut b = GroupedDatasetBuilder::new(2);
        let err = b.push_group("g", &[vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert_eq!(err, Error::DimensionMismatch { expected: 2, got: 1 });
        // The partial rows of the failed group must not leak into the next one.
        b.push_group("h", &[vec![7.0, 8.0]]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.n_groups(), 1);
        assert_eq!(ds.record(0, 0), &[7.0, 8.0]);
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut b = GroupedDatasetBuilder::new(2);
            let err = b.push_group("g", &[vec![1.0, bad]]).unwrap_err();
            assert_eq!(err, Error::NonFiniteValue { dimension: 1 }, "value {bad}");
            // The rejected rows must not leak into a later group.
            b.push_group("h", &[vec![7.0, 8.0]]).unwrap();
            let ds = b.build().unwrap();
            assert_eq!(ds.n_records(), 1);
        }
    }

    /// Regression: a NaN coordinate does not crash dominance counting — it
    /// silently *flips* verdicts. Under IEEE operators the NaN dimension
    /// becomes invisible (`NaN > y` and `y > NaN` are both false); under the
    /// total order of [`crate::ord`] it sorts above `+∞`. Either way, had
    /// the builder admitted `(NaN, 10)` it would have γ-dominated `(1, 1)`
    /// with p = 1, while any finite reading of the missing coordinate below
    /// 1.0 makes the pair incomparable. Ingestion-time rejection is
    /// therefore load-bearing for correctness, not hygiene.
    #[test]
    fn nan_record_would_flip_gamma_dominance_verdict() {
        use crate::dominance::{compare, dominates, DomRelation};
        // With NaN, the record *appears* to dominate: the NaN dimension
        // drops out of the comparison entirely.
        assert!(dominates(&[f64::NAN, 10.0], &[1.0, 1.0]));
        // With the NaN read as any value below 1.0, the truth is
        // incomparability — the opposite verdict.
        assert_eq!(compare(&[0.0, 10.0], &[1.0, 1.0]), DomRelation::Incomparable);
        // The builder refuses the record, so no dataset reachable through
        // the public API can exhibit the flip.
        let mut b = GroupedDatasetBuilder::new(2);
        let err = b.push_group("S", &[vec![f64::NAN, 10.0]]).unwrap_err();
        assert_eq!(err, Error::NonFiniteValue { dimension: 0 });
    }

    #[test]
    fn rejects_oversized_group() {
        // The cap's contract: the largest admissible |S|*|R| fits in u64.
        let cap = MAX_GROUP_LEN as u128;
        assert!(cap * cap <= u64::MAX as u128);
        // A zero-sized row type makes a MAX_GROUP_LEN+1 slice free to
        // build, so the length check itself can be exercised.
        #[derive(Clone)]
        struct Row;
        impl AsRef<[f64]> for Row {
            fn as_ref(&self) -> &[f64] {
                &[1.0]
            }
        }
        let rows = vec![Row; MAX_GROUP_LEN + 1];
        let mut b = GroupedDatasetBuilder::new(1);
        let err = b.push_group("huge", &rows).unwrap_err();
        assert_eq!(err, Error::GroupTooLarge { group: "huge".into(), len: MAX_GROUP_LEN + 1 });
    }

    #[test]
    fn rejects_duplicate_labels() {
        let mut b = GroupedDatasetBuilder::new(1);
        b.push_group("g", &[vec![1.0]]).unwrap();
        let err = b.push_group("g", &[vec![2.0]]).unwrap_err();
        assert_eq!(err, Error::DuplicateGroup("g".into()));
    }

    #[test]
    fn trusted_labels_skips_duplicate_check() {
        let mut b = GroupedDatasetBuilder::new(1).trusted_labels();
        b.push_group("g", &[vec![1.0]]).unwrap();
        b.push_group("g", &[vec![2.0]]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.n_groups(), 2);
        // A duplicated label resolves to its first group, matching the old
        // linear-scan semantics.
        assert_eq!(ds.group_by_label("g"), Some(0));
    }

    #[test]
    fn lookup_after_failed_push_is_unaffected() {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("bad", &[vec![1.0]]).unwrap_err();
        b.push_group("good", &[vec![1.0, 2.0]]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.group_by_label("bad"), None);
        assert_eq!(ds.group_by_label("good"), Some(0));
    }

    #[test]
    fn rejects_zero_dimensions() {
        let b = GroupedDatasetBuilder::new(0);
        assert_eq!(b.build().unwrap_err(), Error::ZeroDimensions);
    }

    #[test]
    fn records_iterator_matches_indexing() {
        let ds = two_group_dataset();
        let collected: Vec<&[f64]> = ds.records(0).collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }
}
