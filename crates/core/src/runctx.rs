//! Execution control: cooperative cancellation, virtual-clock budgets, and
//! (behind the `chaos` feature) deterministic fault injection.
//!
//! A [`RunContext`] travels with every interruptible computation. Its clock
//! is *virtual*: time is measured in record-pair comparison *ticks* (the
//! `record_pairs` counter of [`Stats`]), never in wall-clock time, so two
//! runs over the same dataset observe identical deadlines and the counting
//! paths stay deterministic (lint rule L5 clock-free). Algorithms poll the
//! context at group-pair boundaries; when the budget is exhausted or the
//! [`CancelToken`] has fired, they stop and surrender a typed
//! [`Outcome::Interrupted`] carrying a three-way partial result that is
//! never wrong — graceful degradation instead of an error.
//!
//! With the `chaos` feature the context can additionally carry a seeded
//! [`FaultPlan`] that deterministically injects a worker panic, a virtual
//! delay, or a corrupted comparison at a chosen tick. Faults fire exactly
//! once (atomically disarmed), so a retried chunk succeeds — which is what
//! the parallel scheduler's quarantine-and-retry tests rely on.

use crate::algorithms::SkylineResult;
use crate::anytime::AnytimeResult;
use crate::paircount::PairVerdict;
use crate::stats::Stats;
use aggsky_obs::Recorder;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a computation stopped before reaching the exact result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The [`CancelToken`] associated with the run was cancelled.
    Cancelled,
    /// The virtual-clock budget (record-pair ticks) ran out.
    BudgetExhausted,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::BudgetExhausted => write!(f, "budget exhausted"),
        }
    }
}

/// Handle for cooperatively cancelling a running computation from another
/// thread. Cloning shares the underlying flag.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Requests cancellation; the computation stops at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Execution-control state threaded through every interruptible algorithm:
/// a cancellation flag, a virtual-clock budget, and (under the `chaos`
/// feature) an optional fault-injection plan.
///
/// Clones share the cancellation flag and fault plan, so one context can be
/// handed to several workers of the same logical run.
#[derive(Debug, Clone)]
pub struct RunContext {
    cancelled: Arc<AtomicBool>,
    /// Budget in record-pair ticks; `u64::MAX` means unlimited. A budget of
    /// `0` stops at the first poll (callers wanting "0 means unlimited"
    /// semantics, like the SQL engine, translate before constructing).
    budget: u64,
    /// The observability sink (DESIGN.md §11). Defaults to disabled, which
    /// costs one discriminant load per query — the overhead contract.
    obs: ObsHandle,
    #[cfg(feature = "chaos")]
    fault: Option<Arc<FaultPlan>>,
}

/// Either no recorder (the common case) or a shared enabled one. A
/// two-variant enum rather than `Option<Arc<…>>` so the disabled fast path
/// is a single discriminant load with no pointer chase.
#[derive(Clone, Default)]
enum ObsHandle {
    #[default]
    Noop,
    Shared(Arc<dyn Recorder>),
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsHandle::Noop => f.write_str("Noop"),
            ObsHandle::Shared(_) => f.write_str("Shared(..)"),
        }
    }
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::unlimited()
    }
}

impl RunContext {
    /// A context that never interrupts on its own (it can still be
    /// cancelled through [`RunContext::cancel_token`]).
    pub fn unlimited() -> Self {
        RunContext::with_budget(u64::MAX)
    }

    /// A context that interrupts once `ticks` record-pair comparisons have
    /// been spent. `with_budget(0)` interrupts at the first poll.
    pub fn with_budget(ticks: u64) -> Self {
        RunContext {
            cancelled: Arc::new(AtomicBool::new(false)),
            budget: ticks,
            obs: ObsHandle::Noop,
            #[cfg(feature = "chaos")]
            fault: None,
        }
    }

    /// Attaches a shared observability recorder; every algorithm layer the
    /// context passes through will record spans, events and metrics into
    /// it. Without this call the context carries the no-op sink.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.obs = ObsHandle::Shared(recorder);
        self
    }

    /// The attached recorder, or `None` when tracing is disabled. The
    /// disabled check is one enum-discriminant load (overhead contract,
    /// DESIGN.md §11); instrumentation sites use `if let Some(rec)` so the
    /// disabled path computes nothing.
    #[inline]
    pub fn obs(&self) -> Option<&dyn Recorder> {
        match &self.obs {
            ObsHandle::Noop => None,
            ObsHandle::Shared(r) => Some(r.as_ref()),
        }
    }

    /// The attached recorder, never `None`: the shared
    /// [`aggsky_obs::NOOP`] static when tracing is disabled.
    #[inline]
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.obs {
            ObsHandle::Noop => &aggsky_obs::NOOP,
            ObsHandle::Shared(r) => r.as_ref(),
        }
    }

    /// The budget in record-pair ticks (`u64::MAX` = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether this context carries no tick budget.
    pub fn is_unlimited(&self) -> bool {
        self.budget == u64::MAX
    }

    /// A token that cancels this run when fired from any thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken(Arc::clone(&self.cancelled))
    }

    /// Attaches a fault-injection plan (replacing any previous one).
    #[cfg(feature = "chaos")]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }

    /// The attached fault plan, if any.
    #[cfg(feature = "chaos")]
    pub fn fault(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Polls the context with the run's current virtual clock (`ticks` =
    /// record-pair comparisons spent so far). Returns `Some(reason)` when
    /// the computation must stop and surrender its partial result.
    ///
    /// Under the `chaos` feature this is also where a due `PanicAtPair`
    /// fault panics and where a `DelayTicks` fault charges its virtual
    /// delay against the budget.
    pub fn poll(&self, ticks: u64) -> Option<InterruptReason> {
        let ticks = self.chaos_ticks(ticks);
        if self.cancelled.load(Ordering::Acquire) {
            // Flight-recorder black box: the first poll that observes the
            // interrupt captures the ring (deduped per reason, so the
            // repeated polls after an interrupt stay free of side effects).
            self.recorder().dump("cancelled");
            return Some(InterruptReason::Cancelled);
        }
        if ticks >= self.budget {
            self.recorder().dump("budget_exhausted");
            return Some(InterruptReason::BudgetExhausted);
        }
        None
    }

    /// Applies a due `CorruptCoordinate` fault to a freshly computed pair
    /// verdict (swapping its two directions, as if a corrupted coordinate
    /// read inverted the comparison). No-op without the `chaos` feature or
    /// without a due fault.
    #[cfg(feature = "chaos")]
    pub fn corrupt_verdict(&self, verdict: &mut PairVerdict, ticks: u64) {
        if let Some(f) = &self.fault {
            if matches!(f.kind(), FaultKind::CorruptCoordinate)
                && f.try_fire(ticks.saturating_add(f.penalty()))
            {
                self.recorder().dump("chaos_corrupt");
                std::mem::swap(&mut verdict.forward, &mut verdict.backward);
            }
        }
    }

    /// Applies a due `CorruptCoordinate` fault to a freshly computed pair
    /// verdict. No-op without the `chaos` feature.
    #[cfg(not(feature = "chaos"))]
    #[inline]
    pub fn corrupt_verdict(&self, _verdict: &mut PairVerdict, _ticks: u64) {}

    /// Effective virtual clock after chaos adjustments; fires due
    /// panic/delay faults.
    #[cfg(feature = "chaos")]
    fn chaos_ticks(&self, ticks: u64) -> u64 {
        let Some(f) = &self.fault else { return ticks };
        let t = ticks.saturating_add(f.penalty());
        match f.kind() {
            FaultKind::PanicAtPair if f.try_fire(t) => {
                // Capture the black box before the injected crash unwinds;
                // the dump must not itself panic (FlightRecorder::dump is
                // infallible by design).
                self.recorder().dump("chaos_panic");
                // The one sanctioned panic of the crate: a deliberately
                // injected worker fault, compiled in only under `chaos`.
                panic!("chaos: injected worker panic at virtual tick {t}")
            }
            FaultKind::DelayTicks if f.try_fire(t) => t.saturating_add(f.charge_delay()),
            _ => t,
        }
    }

    #[cfg(not(feature = "chaos"))]
    #[inline]
    fn chaos_ticks(&self, ticks: u64) -> u64 {
        ticks
    }
}

#[cfg(feature = "chaos")]
pub use self::chaos::{FaultKind, FaultPlan};

#[cfg(feature = "chaos")]
mod chaos {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// The fault a [`FaultPlan`] injects when its tick arrives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// Panic on the thread that polls at or after the trigger tick
        /// (models a crashing worker; the parallel scheduler must retry and
        /// quarantine).
        PanicAtPair,
        /// Charge extra virtual ticks against the budget (models a stalled
        /// worker without touching the wall clock).
        DelayTicks,
        /// Swap the two directions of the next pair verdict (models a
        /// corrupted coordinate read; used as a negative control — the
        /// chaos suite asserts this *does* change results, proving the
        /// injection sites are live).
        CorruptCoordinate,
    }

    /// A deterministic, fire-once fault. All state is atomic so a plan can
    /// be shared by the parallel workers; `try_fire` disarms on the first
    /// due poll, which is why a retried chunk succeeds.
    #[derive(Debug)]
    pub struct FaultPlan {
        kind: FaultKind,
        /// Virtual tick at (or after) which the fault fires.
        at: u64,
        /// Extra ticks charged by `DelayTicks`.
        delay: u64,
        armed: AtomicBool,
        fired: AtomicU64,
        penalty: AtomicU64,
    }

    impl FaultPlan {
        fn new(kind: FaultKind, at: u64, delay: u64) -> Self {
            FaultPlan {
                kind,
                at,
                delay,
                armed: AtomicBool::new(true),
                fired: AtomicU64::new(0),
                penalty: AtomicU64::new(0),
            }
        }

        /// Panic once the virtual clock reaches `at`.
        pub fn panic_at_pair(at: u64) -> Self {
            FaultPlan::new(FaultKind::PanicAtPair, at, 0)
        }

        /// Charge `delay` extra ticks once the virtual clock reaches `at`.
        pub fn delay_ticks(at: u64, delay: u64) -> Self {
            FaultPlan::new(FaultKind::DelayTicks, at, delay)
        }

        /// Swap the directions of the first pair verdict computed at or
        /// after tick `at`.
        pub fn corrupt_coordinate(at: u64) -> Self {
            FaultPlan::new(FaultKind::CorruptCoordinate, at, 0)
        }

        /// Derives a plan from a seed (splitmix64), choosing the fault kind
        /// and a trigger tick below `horizon`. Equal seeds yield equal
        /// plans, so chaos tests replay exactly.
        pub fn from_seed(seed: u64, horizon: u64) -> Self {
            let mut state = seed;
            let r0 = splitmix64(&mut state);
            let r1 = splitmix64(&mut state);
            let r2 = splitmix64(&mut state);
            let at = r1 % horizon.max(1);
            match r0 % 3 {
                0 => FaultPlan::panic_at_pair(at),
                1 => FaultPlan::delay_ticks(at, 1 + r2 % horizon.max(1)),
                _ => FaultPlan::corrupt_coordinate(at),
            }
        }

        /// The fault's kind.
        pub fn kind(&self) -> FaultKind {
            self.kind
        }

        /// The trigger tick.
        pub fn trigger_at(&self) -> u64 {
            self.at
        }

        /// How many times the fault has fired (0 or 1).
        pub fn fired(&self) -> u64 {
            self.fired.load(Ordering::Acquire)
        }

        /// Accumulated virtual delay charged so far.
        pub(super) fn penalty(&self) -> u64 {
            self.penalty.load(Ordering::Acquire)
        }

        /// Atomically fires the fault if it is due and still armed.
        pub(super) fn try_fire(&self, ticks: u64) -> bool {
            if ticks < self.at {
                return false;
            }
            if self.armed.swap(false, Ordering::AcqRel) {
                self.fired.fetch_add(1, Ordering::AcqRel);
                true
            } else {
                false
            }
        }

        /// Records the delay charge and returns it.
        pub(super) fn charge_delay(&self) -> u64 {
            self.penalty.fetch_add(self.delay, Ordering::AcqRel);
            self.delay
        }
    }

    /// The same splitmix64 step the datagen crate uses (re-implemented here
    /// because the layering rule L4 forbids core → datagen).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Result of an interruptible aggregate-skyline run: either the exact
/// answer or a typed, never-wrong partial one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The run finished; the skyline is exact (up to the chosen pruning
    /// discipline's guarantees).
    Complete(SkylineResult),
    /// The run was cancelled or ran out of budget. The partial partition's
    /// confirmed sets are sound: every `confirmed_out` group has a real
    /// γ-dominator, and `confirmed_in` is only populated when the pruning
    /// discipline is result-preserving (see DESIGN.md §10).
    Interrupted {
        /// Why the run stopped.
        reason: InterruptReason,
        /// The three-way partial partition at the moment of interruption.
        partial: AnytimeResult,
    },
}

impl Outcome {
    /// True iff the run finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete(_))
    }

    /// Work counters of the run, complete or not.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Complete(r) => &r.stats,
            Outcome::Interrupted { partial, .. } => &partial.stats,
        }
    }

    /// The completed result, or — when interrupted — a `SkylineResult`
    /// holding only the confirmed-in groups. Used by the legacy infallible
    /// entry points, whose unlimited fault-free contexts never actually
    /// interrupt; total by construction so the crate stays panic-free.
    pub fn unwrap_or_partial(self) -> SkylineResult {
        match self {
            Outcome::Complete(r) => r,
            Outcome::Interrupted { partial, .. } => {
                SkylineResult { skyline: partial.confirmed_in, stats: partial.stats }
            }
        }
    }

    /// Unifies both cases into the three-way partition: a complete run maps
    /// to `confirmed_in` = skyline, `confirmed_out` = everything else
    /// (`n_groups` tells the complement), no undecided groups.
    pub fn into_partition(self, n_groups: usize) -> AnytimeResult {
        match self {
            Outcome::Complete(r) => {
                let mut in_iter = r.skyline.iter().copied().peekable();
                let mut confirmed_out =
                    Vec::with_capacity(n_groups.saturating_sub(r.skyline.len()));
                for g in 0..n_groups {
                    if in_iter.peek() == Some(&g) {
                        in_iter.next();
                    } else {
                        confirmed_out.push(g);
                    }
                }
                AnytimeResult {
                    confirmed_in: r.skyline,
                    confirmed_out,
                    undecided: Vec::new(),
                    stats: r.stats,
                    checkpoint: None,
                }
            }
            Outcome::Interrupted { partial, .. } => partial,
        }
    }

    /// The interruption reason, if any.
    pub fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Interrupted { reason, .. } => Some(*reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_never_interrupts() {
        let ctx = RunContext::unlimited();
        assert!(ctx.is_unlimited());
        assert_eq!(ctx.poll(0), None);
        assert_eq!(ctx.poll(u64::MAX - 1), None);
    }

    #[test]
    fn budget_exhaustion_fires_at_the_boundary() {
        let ctx = RunContext::with_budget(10);
        assert_eq!(ctx.poll(9), None);
        assert_eq!(ctx.poll(10), Some(InterruptReason::BudgetExhausted));
        assert_eq!(ctx.poll(11), Some(InterruptReason::BudgetExhausted));
    }

    #[test]
    fn zero_budget_interrupts_immediately() {
        let ctx = RunContext::with_budget(0);
        assert_eq!(ctx.poll(0), Some(InterruptReason::BudgetExhausted));
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let ctx = RunContext::with_budget(5);
        let token = ctx.cancel_token();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(ctx.poll(100), Some(InterruptReason::Cancelled));
        assert_eq!(ctx.poll(0), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn clones_share_the_cancellation_flag() {
        let ctx = RunContext::unlimited();
        let clone = ctx.clone();
        ctx.cancel_token().cancel();
        assert_eq!(clone.poll(0), Some(InterruptReason::Cancelled));
    }

    #[cfg(feature = "chaos")]
    mod chaos_tests {
        use super::*;

        #[test]
        fn panic_fault_fires_exactly_once() {
            let ctx = RunContext::unlimited().with_fault(FaultPlan::panic_at_pair(5));
            assert_eq!(ctx.poll(4), None);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.poll(5)));
            assert!(caught.is_err(), "fault did not panic at its tick");
            // Disarmed: a second due poll passes.
            assert_eq!(ctx.poll(6), None);
            let plan = ctx.fault().map(|f| f.fired());
            assert_eq!(plan, Some(1));
        }

        #[test]
        fn delay_fault_charges_the_budget() {
            let ctx = RunContext::with_budget(100).with_fault(FaultPlan::delay_ticks(10, 1000));
            assert_eq!(ctx.poll(9), None);
            // The delay charge pushes the effective clock past the budget.
            assert_eq!(ctx.poll(10), Some(InterruptReason::BudgetExhausted));
            assert_eq!(ctx.poll(11), Some(InterruptReason::BudgetExhausted));
        }

        #[test]
        fn corrupt_fault_swaps_verdict_once() {
            use crate::paircount::DomLevel;
            let ctx = RunContext::unlimited().with_fault(FaultPlan::corrupt_coordinate(0));
            let mut v = PairVerdict { forward: DomLevel::Gamma, backward: DomLevel::None };
            ctx.corrupt_verdict(&mut v, 0);
            assert_eq!(v.forward, DomLevel::None);
            assert_eq!(v.backward, DomLevel::Gamma);
            ctx.corrupt_verdict(&mut v, 1);
            assert_eq!(v.backward, DomLevel::Gamma, "fault fired twice");
        }

        #[test]
        fn seeded_plans_are_reproducible() {
            for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
                let a = FaultPlan::from_seed(seed, 500);
                let b = FaultPlan::from_seed(seed, 500);
                assert_eq!(a.kind(), b.kind(), "seed {seed}");
                assert_eq!(a.trigger_at(), b.trigger_at(), "seed {seed}");
                assert!(a.trigger_at() < 500);
            }
        }
    }
}
