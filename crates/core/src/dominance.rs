//! Record-level dominance (Definition 1 of the paper).
//!
//! All comparisons in this module assume values are *normalized to MAX
//! preference*: higher is better on every dimension. [`crate::GroupedDataset`]
//! performs that normalization at construction time, so the hot loops here
//! stay branch-free with respect to per-dimension preference directions.

/// Preference direction for one dimension of the original data.
///
/// Internally the dataset stores every dimension normalized to [`Direction::Max`]
/// (MIN dimensions are negated), which keeps the dominance kernel free of
/// per-dimension branches. The original directions are retained for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Higher values are preferred (e.g. movie quality).
    Max,
    /// Lower values are preferred (e.g. price).
    Min,
}

/// Outcome of comparing two records under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// The first record dominates the second.
    Dominates,
    /// The second record dominates the first.
    DominatedBy,
    /// Neither record dominates the other (and they are not equal).
    Incomparable,
    /// The records are equal on every dimension.
    Equal,
}

/// Returns `true` iff `a` dominates `b` (Definition 1):
/// `∀i a[i] ≥ b[i] ∧ ∃i a[i] > b[i]`.
///
/// Both slices must have the same length; in debug builds this is asserted.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if crate::ord::lt(x, y) {
            return false;
        }
        strict |= crate::ord::gt(x, y);
    }
    strict
}

/// A totally ordered `i64` key for one coordinate, used by the columnar
/// kernel's structure-of-arrays lanes ([`crate::prepared::PreparedDataset`]).
///
/// The key is the [`f64::total_cmp`] bit transposition applied to the
/// [`crate::ord::canon`]-icalized value, so for every pair of coordinates
/// `a`, `b` (including `-0.0` vs `+0.0`, which the canonicalization
/// collapses): `sort_key(a) < sort_key(b)` iff [`crate::ord::lt`]`(a, b)`,
/// and likewise for `<=`/`==`. Working in key space lets the lane kernel
/// use plain integer comparisons — branch-free, auto-vectorizable, and with
/// `!(a > b) ⇔ a <= b` valid (which IEEE comparisons only give on
/// NaN-free data; the builder guarantees finiteness, the keys make it a
/// non-issue).
#[inline(always)]
pub fn sort_key(x: f64) -> i64 {
    crate::num::f64_total_bits(crate::ord::canon(x))
}

/// Key-space mirror of [`dominates`]: `a` dominates `b` given both records'
/// [`sort_key`] lanes. Used by the `invariants` feature to cross-check the
/// columnar layout against the row-wise definition, and as the scalar
/// reference for the bitmask kernel.
#[inline]
pub fn dominates_keys(a: &[i64], b: &[i64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x < y {
            return false;
        }
        strict |= x > y;
    }
    strict
}

/// Compares two records in a single pass, classifying the pair into one of
/// the four [`DomRelation`] outcomes.
#[inline]
pub fn compare(a: &[f64], b: &[f64]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if crate::ord::gt(x, y) {
            a_better = true;
            if b_better {
                return DomRelation::Incomparable;
            }
        } else if crate::ord::gt(y, x) {
            b_better = true;
            if a_better {
                return DomRelation::Incomparable;
            }
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_requires_strict_improvement() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(dominates(&[2.0, 3.0], &[1.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0]), "equal records do not dominate");
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "incomparable records");
    }

    #[test]
    fn dominance_is_asymmetric() {
        let a = [5.0, 4.0, 3.0];
        let b = [4.0, 4.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn compare_classifies_all_cases() {
        assert_eq!(compare(&[2.0, 2.0], &[1.0, 1.0]), DomRelation::Dominates);
        assert_eq!(compare(&[1.0, 1.0], &[2.0, 2.0]), DomRelation::DominatedBy);
        assert_eq!(compare(&[1.0, 2.0], &[2.0, 1.0]), DomRelation::Incomparable);
        assert_eq!(compare(&[1.0, 2.0], &[1.0, 2.0]), DomRelation::Equal);
    }

    #[test]
    fn paper_example_the_godfather_dominates_the_room() {
        // Figure 1: The Godfather (531, 9.2) dominates The Room (10, 3.2).
        assert!(dominates(&[531.0, 9.2], &[10.0, 3.2]));
    }

    #[test]
    fn paper_example_pulp_fiction_godfather_incomparable() {
        // Pulp Fiction (557, 9.0) vs The Godfather (531, 9.2): incomparable.
        assert_eq!(compare(&[557.0, 9.0], &[531.0, 9.2]), DomRelation::Incomparable);
    }

    #[test]
    fn single_dimension_dominance_is_total_order_minus_ties() {
        assert!(dominates(&[3.0], &[2.0]));
        assert!(!dominates(&[2.0], &[2.0]));
        assert_eq!(compare(&[2.0], &[2.0]), DomRelation::Equal);
    }
}
