//! γ-dominance between groups (Definition 3, Propositions 1 and 5).

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;
use crate::error::{Error, Result};

/// A validated γ threshold in `[0.5, 1]`.
///
/// Proposition 1: γ-dominance is asymmetric iff `γ ≥ 0.5`, so the paper (and
/// this crate) restricts γ to that range. `γ = 0.5` is the parameter-free
/// default with the natural semantics "a random element of S is more likely
/// to dominate a random element of R than vice versa".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma(f64);

impl Gamma {
    /// The parameter-free default, `γ = 0.5`.
    pub const DEFAULT: Gamma = Gamma(0.5);

    /// Validates `γ ∈ [0.5, 1]`.
    pub fn new(gamma: f64) -> Result<Self> {
        if !(0.5..=1.0).contains(&gamma) {
            return Err(Error::InvalidGamma(gamma));
        }
        Ok(Gamma(gamma))
    }

    /// The raw threshold value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The paper's weak-transitivity threshold `γ̄ = 1 − √(1−γ)/2`
    /// (Proposition 5 as printed).
    ///
    /// The intended property is: if `R ≻_γ̄ S` and `S ≻_γ̄ T` then
    /// `R ≻_γ T`, which is what lets the transitive algorithms prune
    /// "strongly dominated" groups.
    ///
    /// **Reproduction notes.** Two issues with the printed formula, kept
    /// here for faithfulness and documented in the repository's DESIGN.md:
    ///
    /// 1. `γ̄ ≥ γ` only holds for `γ ≤ 0.75`; algorithms use
    ///    [`Gamma::strong_threshold`], which clamps to `max(γ, γ̄)`, so that
    ///    "strongly dominated" always implies "dominated".
    /// 2. The bound itself is not sufficient for weak transitivity: the
    ///    proof's worst-case matrix configuration (Figure 7) is not the
    ///    true worst case. Concentrating the zero entries of the domination
    ///    matrices on whole rows/columns (records that dominate nothing /
    ///    are dominated by nothing) drives `p(R ≻ T)` down to
    ///    `p(R ≻ S) · p(S ≻ T)`, which can undershoot γ even when both
    ///    factors exceed the printed γ̄ — see
    ///    [`Gamma::bar_corrected`] for the tight threshold and the unit
    ///    tests for an explicit counterexample.
    #[inline]
    pub fn bar(self) -> f64 {
        1.0 - (1.0 - self.0).sqrt() / 2.0
    }

    /// A provably sound weak-transitivity threshold, `γ̄ = (1 + γ) / 2`.
    ///
    /// Proof sketch: for a record `r ∈ R` let `u_r` be the fraction of `S`
    /// that `r` dominates, and for `t ∈ T` let `v_t` be the fraction of `S`
    /// dominating `t`. If `u_r + v_t > 1` the witness sets overlap, so some
    /// `s` has `r ≻ s ≻ t` and record dominance is transitive. Because
    /// `1{u+v>1} ≥ u + v − 1` pointwise on `[0,1]²`,
    /// `p(R ≻ T) ≥ p(R ≻ S) + p(S ≻ T) − 1`; with both premises above
    /// `(1+γ)/2` the right side exceeds `γ`.
    ///
    /// This is not tight: the 1-D construction `R = {4,1,1}`,
    /// `S = {3,3,0,0,3}`, `T = {1}` (see the unit tests) achieves
    /// `p(R ≻ T) = (p(R≻S) + p(S≻T) − 1) / max(p(R≻S), p(S≻T))`, which
    /// shows any sound threshold must be at least `1/(2−γ)`; the exact
    /// tight value is left open. The paper's printed
    /// `γ̄ = 1 − √(1−γ)/2` sits *below* `1/(2−γ)` and is therefore
    /// unsound (see [`Gamma::bar`]).
    #[inline]
    pub fn bar_corrected(self) -> f64 {
        (1.0 + self.0) / 2.0
    }

    /// Strong-domination test at the corrected threshold:
    /// `p = 1 ∨ p > (1+γ)/2`.
    #[inline]
    pub fn strongly_dominated_corrected(self, p: f64) -> bool {
        crate::ord::ge(p, 1.0) || crate::ord::gt(p, self.bar_corrected())
    }

    /// The threshold actually used for strong-domination marking:
    /// `max(γ, γ̄)`. Strong domination must imply γ-domination (pruned
    /// groups are excluded from the result), which the raw `γ̄` does not
    /// guarantee for `γ > 0.75`.
    #[inline]
    pub fn strong_threshold(self) -> f64 {
        self.bar().max(self.0)
    }

    /// Definition 3 membership test given a domination probability `p`:
    /// `S ≻_γ R ⟺ p = 1 ∨ p > γ`.
    #[inline]
    pub fn dominated(self, p: f64) -> bool {
        crate::ord::ge(p, 1.0) || crate::ord::gt(p, self.0)
    }

    /// Strong domination test: `p = 1 ∨ p > max(γ, γ̄)`.
    #[inline]
    pub fn strongly_dominated(self, p: f64) -> bool {
        crate::ord::ge(p, 1.0) || crate::ord::gt(p, self.strong_threshold())
    }
}

impl Default for Gamma {
    fn default() -> Self {
        Gamma::DEFAULT
    }
}

impl std::fmt::Display for Gamma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Counts the number of pairs `(s, r) ∈ S × R` with `s ≻ r`, i.e. `|S ≻ R|`.
///
/// This is the exhaustive (no early exit) counter used by the naive
/// algorithm, the ranking module and the test oracles.
pub fn domination_count(ds: &GroupedDataset, s: GroupId, r: GroupId) -> u64 {
    let mut count = 0u64;
    for sv in ds.records(s) {
        for rv in ds.records(r) {
            if dominates(sv, rv) {
                count += 1;
            }
        }
    }
    count
}

/// The domination probability `p(S ≻ R) = |S ≻ R| / (|S|·|R|)` (Section 2.1).
pub fn domination_probability(ds: &GroupedDataset, s: GroupId, r: GroupId) -> f64 {
    let total = crate::num::pair_product(ds.group_len(s), ds.group_len(r));
    domination_count(ds, s, r) as f64 / total as f64
}

/// Exhaustive γ-dominance test: `S ≻_γ R`?
pub fn gamma_dominates(ds: &GroupedDataset, s: GroupId, r: GroupId, gamma: Gamma) -> bool {
    gamma.dominated(domination_probability(ds, s, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;

    #[test]
    fn gamma_is_validated() {
        assert!(Gamma::new(0.49).is_err());
        assert!(Gamma::new(1.01).is_err());
        assert!(Gamma::new(0.5).is_ok());
        assert!(Gamma::new(1.0).is_ok());
        assert_eq!(Gamma::default().value(), 0.5);
    }

    #[test]
    fn gamma_bar_formula() {
        // γ = .5 → γ̄ = 1 − √.5/2 ≈ 0.6464466
        let g = Gamma::new(0.5).unwrap();
        assert!((g.bar() - 0.646_446_609_406_726_2).abs() < 1e-12);
        // γ = 1 → γ̄ = 1 (strict dominance is its own transitive closure).
        assert_eq!(Gamma::new(1.0).unwrap().bar(), 1.0);
        // γ̄ ≥ γ only up to the crossover at γ = 0.75 ...
        for i in 0..=50 {
            let v = 0.5 + 0.005 * i as f64;
            let g = Gamma::new(v).unwrap();
            assert!(g.bar() >= g.value() - 1e-12, "gamma_bar({v}) < {v}");
        }
        // ... beyond it the raw formula dips below γ (e.g. γ = 0.9:
        // γ̄ = 1 − √0.1/2 ≈ 0.842) and the clamped threshold takes over.
        let g = Gamma::new(0.9).unwrap();
        assert!(g.bar() < 0.9);
        assert_eq!(g.strong_threshold(), 0.9);
        // At the crossover the two coincide.
        let g = Gamma::new(0.75).unwrap();
        assert!((g.bar() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dominance_thresholds_are_strict_except_at_one() {
        let g = Gamma::new(0.5).unwrap();
        assert!(!g.dominated(0.5), "p must strictly exceed gamma");
        assert!(g.dominated(0.500_001));
        assert!(g.dominated(1.0), "p = 1 dominates at any gamma");
        let g1 = Gamma::new(1.0).unwrap();
        assert!(!g1.dominated(0.999_999));
        assert!(g1.dominated(1.0));
    }

    #[test]
    fn proposition_3_counterexample_probability() {
        // G1 = {(5,5),(1,1),(1,2)}, G2 = {(2,3)}: p(G2 ≻ G1) = 2/3.
        let mut b = GroupedDatasetBuilder::new(2);
        let g1 = b.push_group("G1", &[vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let g2 = b.push_group("G2", &[vec![2.0, 3.0]]).unwrap();
        let ds = b.build().unwrap();
        assert!((domination_probability(&ds, g2, g1) - 2.0 / 3.0).abs() < 1e-12);
        // Only (5,5) ≻ (2,3): p(G1 ≻ G2) = 1/3.
        assert!((domination_probability(&ds, g1, g2) - 1.0 / 3.0).abs() < 1e-12);
        // G1 is excluded from the skyline for γ < 2/3 even though it holds
        // the record-skyline point (5,5): skyline containment fails.
        assert!(gamma_dominates(&ds, g2, g1, Gamma::new(0.5).unwrap()));
        assert!(!gamma_dominates(&ds, g2, g1, Gamma::new(0.7).unwrap()));
    }

    /// The explicit counterexample to Proposition 5 as printed: both edges
    /// exceed the paper's γ̄(0.5) ≈ .6464, yet `p(R ≻ T) = 4/9 < 0.5`.
    /// The corrected threshold (1+.5)/2 = .75 correctly refuses to prune.
    #[test]
    fn paper_weak_transitivity_bound_has_a_counterexample() {
        let mut b = GroupedDatasetBuilder::new(2);
        let r = b.push_group("R", &[vec![20.0, 20.0], vec![21.0, 19.0], vec![0.0, 100.0]]).unwrap();
        let s = b.push_group("S", &[vec![10.0, 10.0]]).unwrap();
        let t = b.push_group("T", &[vec![1.0, 1.0], vec![2.0, 0.5], vec![100.0, 0.0]]).unwrap();
        let ds = b.build().unwrap();
        let gamma = Gamma::DEFAULT;
        let p_rs = domination_probability(&ds, r, s);
        let p_st = domination_probability(&ds, s, t);
        let p_rt = domination_probability(&ds, r, t);
        assert!((p_rs - 2.0 / 3.0).abs() < 1e-12);
        assert!((p_st - 2.0 / 3.0).abs() < 1e-12);
        assert!((p_rt - 4.0 / 9.0).abs() < 1e-12);
        // Premises hold at the printed γ̄ ...
        assert!(gamma.strongly_dominated(p_rs));
        assert!(gamma.strongly_dominated(p_st));
        // ... but the conclusion fails: R does not γ-dominate T.
        assert!(!gamma.dominated(p_rt));
        // The corrected threshold (1+γ)/2 rejects the premises, as it must.
        assert!(!gamma.strongly_dominated_corrected(p_rs));
        assert!(!gamma.strongly_dominated_corrected(p_st));
        // The additive lower bound holds with slack here.
        assert!(p_rt >= p_rs + p_st - 1.0 - 1e-12);
    }

    /// The 1-D construction showing how low `p(R ≻ T)` can really go:
    /// `(p_rs + p_st − 1) / max(p_rs, p_st)` is achieved, which is below
    /// the product `p_rs·p_st` — so no product-based threshold is sound,
    /// and any sound γ̄ must be at least `1/(2−γ)`.
    #[test]
    fn transitive_domination_reaches_the_ratio_bound() {
        let mut b = GroupedDatasetBuilder::new(1);
        let r = b.push_group("R", &[vec![4.0], vec![1.0], vec![1.0]]).unwrap();
        let s =
            b.push_group("S", &[vec![3.0], vec![3.0], vec![0.0], vec![0.0], vec![3.0]]).unwrap();
        let t = b.push_group("T", &[vec![1.0]]).unwrap();
        let ds = b.build().unwrap();
        let p_rs = domination_probability(&ds, r, s);
        let p_st = domination_probability(&ds, s, t);
        let p_rt = domination_probability(&ds, r, t);
        assert!((p_rs - 0.6).abs() < 1e-12);
        assert!((p_st - 0.6).abs() < 1e-12);
        assert!((p_rt - 1.0 / 3.0).abs() < 1e-12);
        // Below the product bound...
        assert!(p_rt < p_rs * p_st);
        // ...exactly at the ratio bound...
        assert!((p_rt - (p_rs + p_st - 1.0) / p_rs.max(p_st)).abs() < 1e-12);
        // ...and above the provable additive bound.
        assert!(p_rt >= p_rs + p_st - 1.0 - 1e-12);
    }

    #[test]
    fn corrected_bar_is_midpoint_to_one() {
        let g = Gamma::DEFAULT;
        assert!((g.bar_corrected() - 0.75).abs() < 1e-15);
        for i in 0..=50 {
            let v = 0.5 + 0.01 * i as f64;
            let g = Gamma::new(v).unwrap();
            assert!(g.bar_corrected() >= g.value() - 1e-12, "(1+{v})/2 < {v}");
            // Sound: both premises above γ̄ force the additive bound past γ.
            assert!(2.0 * g.bar_corrected() - 1.0 >= g.value() - 1e-12);
        }
    }

    #[test]
    fn domination_probabilities_need_not_sum_to_one() {
        // Incomparable record pairs count for neither direction (Table 2's
        // Tarantino/Jackson row: .68 + .26 < 1).
        let mut b = GroupedDatasetBuilder::new(2);
        let a = b.push_group("A", &[vec![1.0, 2.0]]).unwrap();
        let c = b.push_group("C", &[vec![2.0, 1.0]]).unwrap();
        let ds = b.build().unwrap();
        assert_eq!(domination_probability(&ds, a, c), 0.0);
        assert_eq!(domination_probability(&ds, c, a), 0.0);
    }
}
