//! Epoch-based live serving of aggregate skylines.
//!
//! [`SkylineService`] wraps a [`DynamicAggregateSkyline`] writer behind an
//! epoch-snapshot reader protocol:
//!
//! * **Readers** grab the current [`Epoch`] — an immutable, atomically
//!   published bundle of the live dataset, its [`PreparedDataset`], the
//!   service-γ skyline, and a [`PairCache`] pre-seeded with the writer's
//!   exact tallies — and answer γ-queries or γ-sweeps against it with no
//!   locks held and no coordination with the writer.
//! * **A single writer** absorbs a [`WriteBatch`], maintains the tallies
//!   incrementally (Property-2 deferral included, see [`crate::dynamic`]),
//!   rebuilds only the *dirty* groups' lane blocks through
//!   [`PreparedDataset::rebuild_dirty`], and publishes the next epoch with
//!   one pointer swap.
//!
//! Publication is the **last** step of [`SkylineService::apply_ctx`], so a
//! writer that panics mid-batch (chaos-tested with
//! [`FaultPlan::panic_at_pair`](crate::runctx::FaultPlan)) leaves the old
//! epoch fully intact — readers never observe a half-built snapshot, and
//! the poisoned writer lock is recovered on the next apply because the
//! underlying fold protocol is all-or-nothing per group.
//!
//! Epochs persist through the §15 checkpoint frame codec:
//! [`SkylineService::persist`] writes the live dataset fingerprint (epoch
//! id in the seed slot) plus every exact tally, and
//! [`SkylineService::restore`] warm-starts from such a frame without any
//! kernel recounting — falling back to a cold rebuild when the frame is
//! missing, torn, or belongs to different data.

use crate::algorithms::{AlgoOptions, Algorithm};
use crate::dataset::{GroupId, GroupedDataset};
use crate::dynamic::DynamicAggregateSkyline;
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::paircache::{CachedTally, PairCache};
use crate::persist::{CheckpointStore, Fingerprint, PairEntry, SaveReceipt, Snapshot};
use crate::prepared::PreparedDataset;
use crate::runctx::{InterruptReason, RunContext};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// One write operation of a [`WriteBatch`]. Groups are addressed by label:
/// inserting into an unknown label creates the group, deleting from one is
/// an error.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Insert `record` into the group labelled `group` (created if new).
    Insert {
        /// Target group label.
        group: String,
        /// Record coordinates (must match the service dimensionality).
        record: Vec<f64>,
    },
    /// Delete the first record of `group` whose coordinates are
    /// bit-identical to `record`.
    Delete {
        /// Target group label.
        group: String,
        /// Coordinates of the record to remove.
        record: Vec<f64>,
    },
}

/// An ordered batch of write operations, absorbed into one new epoch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WriteBatch {
    /// The operations, applied in order.
    pub ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Appends an insert (builder style).
    pub fn insert(mut self, group: impl Into<String>, record: &[f64]) -> WriteBatch {
        self.ops.push(WriteOp::Insert { group: group.into(), record: record.to_vec() });
        self
    }

    /// Appends a delete-by-value (builder style).
    pub fn delete(mut self, group: impl Into<String>, record: &[f64]) -> WriteBatch {
        self.ops.push(WriteOp::Delete { group: group.into(), record: record.to_vec() });
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What applying a batch produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochReceipt {
    /// Id of the epoch now serving reads: the newly published one, or the
    /// unchanged previous epoch when `interrupted` is `Some`.
    pub epoch: u64,
    /// Write operations absorbed from the batch.
    pub batch_rows: u64,
    /// Pairs served from the Property-2 drift interval without recounting
    /// while certifying the new epoch's skyline.
    pub deferred_pairs: u64,
    /// Pair tallies recomputed through the kernel because their drift
    /// interval crossed γ.
    pub flushed_pairs: u64,
    /// `Some` when the context's budget or cancellation stopped the fold:
    /// the batch's edits stay pending in the writer and **no epoch was
    /// published** — apply a further (possibly empty) batch with more
    /// budget to publish the pending edits. Do **not** re-submit the same
    /// batch: its operations were already absorbed and would apply twice.
    pub interrupted: Option<InterruptReason>,
}

/// How [`SkylineService::restore`] started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeRecovery {
    /// A checkpoint frame matched the dataset: tallies were installed
    /// without recounting and serving resumed at the persisted epoch id.
    Warm {
        /// Epoch id recovered from the frame's fingerprint seed.
        epoch: u64,
        /// Number of pair tallies installed from the frame.
        pairs: usize,
    },
    /// No usable frame (missing, torn, or fingerprint mismatch): the
    /// service rebuilt its state from the dataset alone.
    Cold,
}

/// An immutable, atomically published snapshot of the service state.
///
/// Readers hold an `Arc<Epoch>` and answer any number of γ-queries and
/// γ-sweeps against it concurrently; a later publish never invalidates an
/// epoch already handed out.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    snapshot: GroupedDataset,
    /// `mapping[snapshot_id] = service_id`, strictly ascending (the
    /// snapshot skips empty groups).
    mapping: Vec<GroupId>,
    prep: Arc<PreparedDataset>,
    /// The service-γ skyline, in service group ids, ascending.
    skyline: Vec<GroupId>,
    /// Tallies exact at publish time, keyed by snapshot ids; queries clone
    /// this, so fully folded pairs are never recounted by readers.
    cache: PairCache,
}

impl Epoch {
    /// Monotone epoch id (0 for a fresh service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The live records at publish time (empty groups omitted), addressed
    /// by *snapshot* ids; translate with [`Epoch::service_id`].
    pub fn dataset(&self) -> &GroupedDataset {
        &self.snapshot
    }

    /// The epoch's shared preparation (sorted blocks + key lanes).
    pub fn prepared(&self) -> &Arc<PreparedDataset> {
        &self.prep
    }

    /// Service group id of snapshot group `si`.
    pub fn service_id(&self, si: GroupId) -> GroupId {
        self.mapping[si]
    }

    /// The skyline at the service γ, in service group ids, ascending.
    pub fn skyline(&self) -> &[GroupId] {
        &self.skyline
    }

    /// Labels of the service-γ skyline, sorted.
    pub fn skyline_labels(&self) -> Vec<&str> {
        let snapshot_ids: Vec<GroupId> =
            self.skyline.iter().filter_map(|g| self.mapping.binary_search(g).ok()).collect();
        self.snapshot.sorted_labels(&snapshot_ids)
    }

    /// The aggregate skyline of this epoch at an arbitrary `gamma`, in
    /// service group ids, ascending. Pairs already folded by the writer are
    /// served from the seeded tally cache; only pairs that were still
    /// deferred at publish time cost kernel work.
    pub fn query(&self, gamma: Gamma) -> Vec<GroupId> {
        let mut cache = self.cache.clone();
        self.query_with(gamma, &mut cache)
    }

    /// Runs [`Algorithm::Indexed`] at every threshold in `gammas`, sharing
    /// this epoch's preparation and one tally cache across the whole sweep.
    pub fn sweep(&self, gammas: &[Gamma]) -> Vec<(Gamma, Vec<GroupId>)> {
        let mut cache = self.cache.clone();
        gammas.iter().map(|&gamma| (gamma, self.query_with(gamma, &mut cache))).collect()
    }

    fn query_with(&self, gamma: Gamma, cache: &mut PairCache) -> Vec<GroupId> {
        let opts = AlgoOptions::paper(gamma);
        let result = Algorithm::Indexed
            .run_cached_ctx(&self.snapshot, &self.prep, opts, cache, &RunContext::unlimited())
            .unwrap_or_partial();
        result.skyline.iter().map(|&si| self.mapping[si]).collect()
    }
}

/// Writer-side state, serialized behind the service's writer lock.
#[derive(Debug)]
struct WriterState {
    engine: DynamicAggregateSkyline,
    /// Label → service group id (labels are never forgotten; a group whose
    /// records are all deleted keeps its id and simply drops out of the
    /// snapshots).
    index: HashMap<String, GroupId>,
    next_epoch: u64,
    /// Groups whose records changed since the last **published** epoch.
    /// Accumulated across applies and cleared only after a successful
    /// publish: a failed or interrupted apply leaves its edits pending in
    /// the writer (possibly already folded into a group's base), and the
    /// next successful publish must still rebuild those groups' prepared
    /// segments — their net length may be unchanged, which would otherwise
    /// slip past [`PreparedDataset::rebuild_dirty`]'s length guard and
    /// publish stale sorted rows. Indices past the end are treated as
    /// dirty by [`build_epoch`].
    dirty: Vec<bool>,
}

impl WriterState {
    fn group_for(&mut self, label: &str) -> GroupId {
        if let Some(&g) = self.index.get(label) {
            return g;
        }
        let g = self.engine.add_group(label);
        self.index.insert(label.to_string(), g);
        g
    }
}

/// Concurrent aggregate-skyline serving: lock-free epoch reads, a single
/// incremental writer, atomic publication, durable checkpoints.
///
/// ```
/// use aggsky_core::service::{SkylineService, WriteBatch};
/// use aggsky_core::Gamma;
///
/// let svc = SkylineService::new(2, Gamma::DEFAULT).unwrap();
/// let batch = WriteBatch::new()
///     .insert("Tarantino", &[557.0, 9.0])
///     .insert("Wiseau", &[10.0, 3.2]);
/// let receipt = svc.apply(&batch).unwrap();
/// assert_eq!(receipt.epoch, 1);
/// let epoch = svc.current();
/// assert_eq!(epoch.skyline_labels(), vec!["Tarantino"]);
/// ```
#[derive(Debug)]
pub struct SkylineService {
    gamma: Gamma,
    writer: Mutex<WriterState>,
    current: RwLock<Arc<Epoch>>,
}

impl SkylineService {
    /// An empty service of `dim`-dimensional records at threshold `gamma`,
    /// serving epoch 0 (no groups).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ZeroDimensions`] when `dim` is zero.
    pub fn new(dim: usize, gamma: Gamma) -> Result<SkylineService> {
        if dim == 0 {
            return Err(Error::ZeroDimensions);
        }
        SkylineService::bootstrap(DynamicAggregateSkyline::new(dim), gamma, 0)
    }

    /// A service pre-loaded with `ds`, serving it as epoch 0. The initial
    /// materialization counts every group pair once through the kernel.
    pub fn from_dataset(ds: &GroupedDataset, gamma: Gamma) -> Result<SkylineService> {
        SkylineService::bootstrap(DynamicAggregateSkyline::from_dataset(ds)?, gamma, 0)
    }

    /// Restores a service for `ds` from the newest usable checkpoint frame
    /// in `store`: when the frame's fingerprint matches the dataset (epoch
    /// id aside), the persisted exact tallies are installed **without any
    /// kernel recounting** and serving resumes at the persisted epoch id;
    /// otherwise — no frame, torn frames, foreign data, or invalid
    /// tallies — the service starts cold from `ds` alone. The outcome is
    /// reported in the returned [`ServeRecovery`].
    pub fn restore(
        ds: &GroupedDataset,
        gamma: Gamma,
        store: &CheckpointStore,
    ) -> Result<(SkylineService, ServeRecovery)> {
        let expected = Fingerprint::of(ds, gamma);
        let recovery = store.load()?;
        if let Some((_seq, frame)) = recovery.snapshot {
            let mut found = frame.fingerprint;
            let epoch_id = found.seed;
            found.seed = expected.seed;
            if found == expected {
                let entries: Vec<((GroupId, GroupId), CachedTally)> =
                    frame.pairs.iter().map(|p| ((p.lo, p.hi), p.tally)).collect();
                if let Ok(engine) = DynamicAggregateSkyline::from_dataset_with_tallies(ds, &entries)
                {
                    let svc = SkylineService::bootstrap(engine, gamma, epoch_id)?;
                    return Ok((
                        svc,
                        ServeRecovery::Warm { epoch: epoch_id, pairs: entries.len() },
                    ));
                }
            }
        }
        Ok((SkylineService::from_dataset(ds, gamma)?, ServeRecovery::Cold))
    }

    fn bootstrap(
        engine: DynamicAggregateSkyline,
        gamma: Gamma,
        first_epoch: u64,
    ) -> Result<SkylineService> {
        let index = (0..engine.n_groups()).map(|g| (engine.label(g).to_string(), g)).collect();
        let dirty = vec![false; engine.n_groups()];
        let mut w = WriterState { engine, index, next_epoch: first_epoch, dirty };
        let (epoch, _outcome) = build_epoch(&mut w, gamma, None, &[], &RunContext::unlimited())?;
        w.next_epoch += 1;
        Ok(SkylineService { gamma, writer: Mutex::new(w), current: RwLock::new(Arc::new(epoch)) })
    }

    /// The service's γ threshold (epoch skylines are certified at it).
    pub fn gamma(&self) -> Gamma {
        self.gamma
    }

    /// The epoch currently serving reads. The returned handle stays valid
    /// (and immutable) however many epochs are published after it.
    pub fn current(&self) -> Arc<Epoch> {
        self.current.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// [`SkylineService::apply_ctx`] with an unlimited context.
    pub fn apply(&self, batch: &WriteBatch) -> Result<EpochReceipt> {
        self.apply_ctx(batch, &RunContext::unlimited())
    }

    /// Absorbs `batch` and publishes the next epoch.
    ///
    /// The writer applies every operation to the incremental engine (O(1)
    /// each), certifies the new skyline at the service γ — folding only the
    /// groups whose Property-2 drift interval crossed γ — rebuilds only the
    /// touched groups' segments of the preparation, and publishes the new
    /// epoch as the very last step. Concurrent readers keep answering from
    /// the previous epoch throughout; an interrupt (or a chaos panic inside
    /// the fold) publishes nothing.
    ///
    /// # Errors
    ///
    /// Returns the engine's validation errors (dimension mismatch,
    /// non-finite values) and [`Error::InvalidArgument`] for a delete
    /// addressing an unknown group or record. A failed batch publishes no
    /// epoch; operations applied before the failure stay pending in the
    /// writer (their groups stay flagged dirty) and ride along with the
    /// next successful batch.
    pub fn apply_ctx(&self, batch: &WriteBatch, ctx: &RunContext) -> Result<EpochReceipt> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let mut batch_rows = 0u64;
        for op in &batch.ops {
            let g = match op {
                WriteOp::Insert { group, record } => {
                    let g = w.group_for(group);
                    w.engine.insert_ctx(g, record, ctx)?;
                    g
                }
                WriteOp::Delete { group, record } => {
                    let g = w.index.get(group.as_str()).copied().ok_or_else(|| {
                        Error::InvalidArgument(format!("delete from unknown group {group:?}"))
                    })?;
                    let idx = w.engine.find_record(g, record).ok_or_else(|| {
                        Error::InvalidArgument(format!("no record {record:?} in group {group:?}"))
                    })?;
                    w.engine.remove(g, idx)?;
                    g
                }
            };
            if g >= w.dirty.len() {
                w.dirty.resize(g + 1, false);
            }
            w.dirty[g] = true;
            batch_rows += 1;
        }
        let prev = self.current();
        let dirty = w.dirty.clone();
        let (epoch, outcome) = build_epoch(&mut w, self.gamma, Some(&prev), &dirty, ctx)?;
        if let Some(reason) = outcome.interrupted {
            return Ok(EpochReceipt {
                epoch: prev.id,
                batch_rows,
                deferred_pairs: outcome.deferred_pairs,
                flushed_pairs: outcome.flushed_pairs,
                interrupted: Some(reason),
            });
        }
        let id = epoch.id;
        // The single point of publication: everything above worked on
        // writer-private state, so a panic or error anywhere before this
        // line leaves `prev` serving unchanged.
        *self.current.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(epoch);
        w.next_epoch += 1;
        w.dirty.iter_mut().for_each(|d| *d = false);
        Ok(EpochReceipt {
            epoch: id,
            batch_rows,
            deferred_pairs: outcome.deferred_pairs,
            flushed_pairs: outcome.flushed_pairs,
            interrupted: None,
        })
    }

    /// Checkpoints the current state through `store`'s atomic frame
    /// protocol: folds any deferred deltas to make every tally exact, then
    /// persists the live dataset's fingerprint (current epoch id in the
    /// seed slot) and all pair tallies. Readers are unaffected; the live
    /// records do not change.
    pub fn persist(&self, store: &CheckpointStore) -> Result<SaveReceipt> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        w.engine.flush_ctx(&RunContext::unlimited())?;
        let (snap, mapping) = w.engine.snapshot()?;
        let pairs = snapshot_pairs(&w.engine, &mapping)
            .into_iter()
            .map(|((lo, hi), tally)| PairEntry { lo, hi, tally })
            .collect();
        let epoch_id = self.current().id;
        let fingerprint = Fingerprint::of(&snap, self.gamma).with_seed(epoch_id);
        store.save(&Snapshot { fingerprint, partition: None, pairs })
    }
}

/// Translates the engine's exact tallies (service ids) into snapshot-id
/// space, keeping only pairs whose both groups are fully folded and live.
/// `mapping` is ascending, so the canonical `lo < hi` orientation survives
/// the translation.
fn snapshot_pairs(
    engine: &DynamicAggregateSkyline,
    mapping: &[GroupId],
) -> Vec<((GroupId, GroupId), CachedTally)> {
    let mut rev: Vec<Option<GroupId>> = vec![None; engine.n_groups()];
    for (si, &g) in mapping.iter().enumerate() {
        rev[g] = Some(si);
    }
    let mut entries = Vec::new();
    for ((lo, hi), t) in engine.export_tallies() {
        if !t.complete() || engine.pending_edits(lo) != (0, 0) || engine.pending_edits(hi) != (0, 0)
        {
            continue;
        }
        if let (Some(sl), Some(sh)) = (rev[lo], rev[hi]) {
            entries.push(((sl, sh), t));
        }
    }
    entries.sort_unstable_by_key(|&(key, _)| key);
    entries
}

/// Builds the next epoch from the writer state: certifies the skyline at
/// `gamma` (Property-2 deferral deciding what folds), snapshots the live
/// records, and prepares them — reusing `prev`'s clean per-group segments
/// via [`PreparedDataset::rebuild_dirty`] whenever the group layout is
/// unchanged. `dirty` flags every group (in service ids) whose records
/// changed since `prev` was published — across however many failed or
/// interrupted applies; indices past its end are conservatively treated
/// as dirty. Pure with respect to the served epoch: nothing is published
/// here.
fn build_epoch(
    w: &mut WriterState,
    gamma: Gamma,
    prev: Option<&Epoch>,
    dirty: &[bool],
    ctx: &RunContext,
) -> Result<(Epoch, crate::dynamic::DynSkyline)> {
    let outcome = w.engine.skyline_ctx(gamma, ctx)?;
    let (snap, mapping) = w.engine.snapshot()?;
    let prep = match prev {
        Some(p) if p.mapping == mapping && p.snapshot.dim() == snap.dim() => {
            let dirty: Vec<bool> =
                mapping.iter().map(|&g| dirty.get(g).copied().unwrap_or(true)).collect();
            p.prep.rebuild_dirty(&snap, &dirty)?
        }
        _ => PreparedDataset::build(&snap, PreparedDataset::DEFAULT_BLOCK_SIZE)?,
    };
    let mut cache = PairCache::new();
    cache.ingest(&prep, &snapshot_pairs(&w.engine, &mapping))?;
    let epoch = Epoch {
        id: w.next_epoch,
        snapshot: snap,
        mapping,
        prep: Arc::new(prep),
        skyline: outcome.groups.clone(),
        cache,
    };
    Ok((epoch, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::{lcg, movie_directors};

    fn oracle(epoch: &Epoch, gamma: Gamma) -> Vec<GroupId> {
        naive_skyline(epoch.dataset(), gamma)
            .skyline
            .into_iter()
            .map(|si| epoch.service_id(si))
            .collect()
    }

    #[test]
    fn epochs_advance_and_match_the_oracle() {
        let svc = SkylineService::new(2, Gamma::DEFAULT).unwrap();
        assert_eq!(svc.current().id(), 0);
        assert!(svc.current().skyline().is_empty());
        let mut next = lcg(9);
        for round in 1..=12u64 {
            let mut batch = WriteBatch::new();
            for _ in 0..4 {
                let g = format!("g{}", (next() * 5.0) as usize % 5);
                batch = batch.insert(g, &[(next() * 9.0).floor(), (next() * 9.0).floor()]);
            }
            let receipt = svc.apply(&batch).unwrap();
            assert_eq!(receipt.epoch, round);
            assert_eq!(receipt.batch_rows, 4);
            assert_eq!(receipt.interrupted, None);
            let epoch = svc.current();
            assert_eq!(epoch.id(), round);
            assert_eq!(epoch.skyline(), oracle(&epoch, Gamma::DEFAULT), "round {round}");
            assert_eq!(epoch.query(Gamma::DEFAULT), epoch.skyline(), "round {round}");
        }
    }

    #[test]
    fn deletes_and_group_disappearance_publish_correctly() {
        let svc = SkylineService::from_dataset(&movie_directors(), Gamma::DEFAULT).unwrap();
        let epoch = svc.current();
        assert_eq!(epoch.id(), 0);
        let labels = epoch.skyline_labels();
        assert!(!labels.is_empty());
        // Delete every Wiseau record: the group must drop out of snapshots.
        let ds = movie_directors();
        let w = ds.group_by_label("Wiseau").unwrap();
        let mut batch = WriteBatch::new();
        for rec in ds.records(w) {
            batch = batch.delete("Wiseau", rec);
        }
        let receipt = svc.apply(&batch).unwrap();
        assert_eq!(receipt.interrupted, None);
        let epoch = svc.current();
        assert!(epoch.dataset().group_by_label("Wiseau").is_none());
        assert_eq!(epoch.skyline(), oracle(&epoch, Gamma::DEFAULT));
        // Deleting from a missing group or a missing record is an error
        // and publishes nothing.
        let before = epoch.id();
        assert!(svc.apply(&WriteBatch::new().delete("Nolan", &[1.0, 1.0])).is_err());
        assert!(svc.apply(&WriteBatch::new().delete("Wiseau", &[1.0, 1.0])).is_err());
        assert_eq!(svc.current().id(), before);
    }

    #[test]
    fn old_epoch_handles_survive_later_publishes() {
        let svc = SkylineService::from_dataset(&movie_directors(), Gamma::DEFAULT).unwrap();
        let old = svc.current();
        let old_skyline = old.skyline().to_vec();
        let old_records = old.dataset().n_records();
        svc.apply(&WriteBatch::new().insert("Nolan", &[999.0, 9.9])).unwrap();
        assert_eq!(svc.current().id(), old.id() + 1);
        // The retained handle is untouched by the publish.
        assert_eq!(old.skyline(), old_skyline);
        assert_eq!(old.dataset().n_records(), old_records);
        assert_eq!(old.query(Gamma::DEFAULT), old_skyline);
    }

    #[test]
    fn epoch_sweep_matches_independent_queries() {
        let svc = SkylineService::from_dataset(&movie_directors(), Gamma::DEFAULT).unwrap();
        svc.apply(&WriteBatch::new().insert("Nolan", &[400.0, 8.9])).unwrap();
        let epoch = svc.current();
        let gammas: Vec<Gamma> = [0.5, 0.75, 1.0].iter().map(|&v| Gamma::new(v).unwrap()).collect();
        let swept = epoch.sweep(&gammas);
        for (gamma, skyline) in swept {
            assert_eq!(skyline, epoch.query(gamma), "gamma {gamma:?}");
            assert_eq!(skyline, oracle(&epoch, gamma), "gamma {gamma:?}");
        }
    }

    /// The published preparation must describe exactly the records of the
    /// published snapshot, group by group (order-insensitive: the
    /// preparation sorts within groups).
    fn assert_prep_matches(epoch: &Epoch) {
        let ds = epoch.dataset();
        let prep = epoch.prepared();
        let bits = |r: &Vec<f64>| r.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        for g in 0..ds.n_groups() {
            let mut want: Vec<Vec<f64>> = ds.records(g).map(<[f64]>::to_vec).collect();
            let mut got: Vec<Vec<f64>> =
                (0..prep.group_len(g)).map(|i| prep.record(g, i).to_vec()).collect();
            want.sort_by_key(bits);
            got.sort_by_key(bits);
            assert_eq!(got, want, "prep and snapshot disagree in group {g}");
        }
    }

    #[test]
    fn failed_apply_keeps_its_groups_dirty_for_the_next_publish() {
        let svc = SkylineService::new(2, Gamma::DEFAULT).unwrap();
        svc.apply(&WriteBatch::new().insert("a", &[1.0, 1.0]).insert("b", &[5.0, 5.0])).unwrap();
        assert_eq!(svc.current().id(), 1);
        // A balanced delete+insert on `a` followed by a failing op: the
        // batch errors, the first two edits stay pending in the writer,
        // and `a`'s net length is unchanged — exactly the shape that
        // would slip past rebuild_dirty's length guard if dirtiness were
        // tracked per batch instead of per publish.
        let bad = WriteBatch::new()
            .delete("a", &[1.0, 1.0])
            .insert("a", &[10.0, 10.0])
            .delete("missing", &[0.0, 0.0]);
        assert!(svc.apply(&bad).is_err());
        assert_eq!(svc.current().id(), 1, "failed batch publishes nothing");
        // The next apply touches only `b`, yet must rebuild `a`'s segment.
        let receipt = svc.apply(&WriteBatch::new().insert("b", &[6.0, 4.0])).unwrap();
        assert_eq!(receipt.interrupted, None);
        let epoch = svc.current();
        assert_prep_matches(&epoch);
        assert_eq!(epoch.skyline(), oracle(&epoch, Gamma::DEFAULT));
        assert_eq!(epoch.query(Gamma::DEFAULT), epoch.skyline());
    }

    #[test]
    fn interrupted_apply_keeps_its_groups_dirty_for_the_next_publish() {
        let svc = SkylineService::new(2, Gamma::DEFAULT).unwrap();
        let seed = WriteBatch::new()
            .insert("a", &[1.0, 9.0])
            .insert("a", &[9.0, 1.0])
            .insert("b", &[5.0, 5.0]);
        svc.apply(&seed).unwrap();
        assert_eq!(svc.current().id(), 1);
        // Replace both of `a`'s records: the drift interval for p(a ≻ b)
        // widens to [0, 1], which straddles γ and forces a fold — and the
        // 1-tick budget interrupts it. All four ops were absorbed, nothing
        // was published, and `a`'s net length is unchanged.
        let balanced = WriteBatch::new()
            .delete("a", &[1.0, 9.0])
            .delete("a", &[9.0, 1.0])
            .insert("a", &[10.0, 10.0])
            .insert("a", &[0.0, 0.0]);
        let receipt = svc.apply_ctx(&balanced, &RunContext::with_budget(1)).unwrap();
        assert_eq!(receipt.interrupted, Some(InterruptReason::BudgetExhausted));
        assert_eq!(svc.current().id(), 1, "interrupted apply publishes nothing");
        // An empty unbudgeted batch publishes the backlog; `a`'s prepared
        // segment must be rebuilt even though this batch touched nothing.
        let receipt = svc.apply(&WriteBatch::new()).unwrap();
        assert_eq!(receipt.interrupted, None);
        let epoch = svc.current();
        assert_prep_matches(&epoch);
        assert_eq!(epoch.dataset().n_records(), 3);
        assert_eq!(epoch.skyline(), oracle(&epoch, Gamma::DEFAULT));
        assert_eq!(epoch.query(Gamma::DEFAULT), epoch.skyline());
    }

    #[test]
    fn interrupted_apply_publishes_nothing_and_is_retryable() {
        let svc = SkylineService::new(2, Gamma::DEFAULT).unwrap();
        let mut batch = WriteBatch::new();
        for i in 0..20 {
            batch = batch
                .insert("a", &[i as f64, 20.0 - i as f64])
                .insert("b", &[i as f64 + 0.5, 20.5 - i as f64]);
        }
        let tiny = RunContext::with_budget(1);
        let receipt = svc.apply_ctx(&batch, &tiny).unwrap();
        assert_eq!(receipt.interrupted, Some(InterruptReason::BudgetExhausted));
        assert_eq!(receipt.epoch, 0);
        assert_eq!(svc.current().id(), 0);
        assert_eq!(svc.current().dataset().n_groups(), 0);
        // The edits stayed pending: an unbudgeted empty batch publishes
        // them.
        let receipt = svc.apply(&WriteBatch::new()).unwrap();
        assert_eq!(receipt.interrupted, None);
        let epoch = svc.current();
        assert_eq!(epoch.dataset().n_records(), 40);
        assert_eq!(epoch.skyline(), oracle(&epoch, Gamma::DEFAULT));
    }

    #[test]
    fn persist_and_warm_restore_skip_recounting() {
        let dir = tempdir("svc_persist_warm");
        let store = CheckpointStore::open(&dir).unwrap();
        let svc = SkylineService::from_dataset(&movie_directors(), Gamma::DEFAULT).unwrap();
        svc.apply(&WriteBatch::new().insert("Nolan", &[400.0, 8.9])).unwrap();
        let live = svc.current();
        svc.persist(&store).unwrap();
        // Restore against the same live records.
        let snap = live.dataset().clone();
        let (restored, how) = SkylineService::restore(&snap, Gamma::DEFAULT, &store).unwrap();
        match how {
            ServeRecovery::Warm { epoch, pairs } => {
                assert_eq!(epoch, live.id());
                assert!(pairs > 0);
            }
            ServeRecovery::Cold => panic!("expected warm restore"),
        }
        assert_eq!(restored.current().id(), live.id());
        assert_eq!(restored.current().skyline_labels(), live.skyline_labels());
        // Warm restore must not recount: bootstrap serves the skyline from
        // the installed tallies.
        let next = restored.apply(&WriteBatch::new().insert("Nolan", &[1.0, 1.0])).unwrap();
        assert_eq!(next.epoch, live.id() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_persisted_frames_degrades_to_cold_on_foreign_data() {
        let dir = tempdir("svc_persist_cold");
        let store = CheckpointStore::open(&dir).unwrap();
        // No frames at all: cold.
        let ds = movie_directors();
        let (svc, how) = SkylineService::restore(&ds, Gamma::DEFAULT, &store).unwrap();
        assert_eq!(how, ServeRecovery::Cold);
        svc.persist(&store).unwrap();
        // Same store, different data: cold again (never an error).
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        b.push_group("only", &[vec![1.0, 2.0]]).unwrap();
        let other = b.build().unwrap();
        let (_svc, how) = SkylineService::restore(&other, Gamma::DEFAULT, &store).unwrap();
        assert_eq!(how, ServeRecovery::Cold);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("aggsky_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
