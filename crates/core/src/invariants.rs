//! Runtime structural contracts, compiled in behind the `invariants`
//! feature.
//!
//! The static analyzer (`aggsky-lint`) grandfathers the workspace's
//! remaining slice-index sites on the argument that the surrounding code
//! proves the bounds. This module turns that argument into executable
//! checks: with `--features invariants`, debug builds validate the
//! structures those proofs rest on — [`PreparedDataset`] block layout,
//! [`Mbb`] containment, and pair-count conservation — every time they are
//! built or consumed. Without the feature (or in release builds) every
//! function here compiles to nothing, so the hot paths pay no cost.
//!
//! ```text
//! cargo test --features invariants   # contracts active
//! cargo test                         # contracts compiled out
//! ```

#![allow(unused_variables)] // bodies vanish without the feature

use crate::dataset::GroupedDataset;
use crate::mbb::Mbb;
use crate::prepared::PreparedDataset;

/// Validates the full block structure of a freshly built
/// [`PreparedDataset`] against its source dataset:
///
/// * per group, coordinate sums are descending and equal the row sums;
/// * per block, the corner vectors bound every record of the block;
/// * blocks partition each group (`Σ block lengths = group length`) and
///   the block count is `⌈len / block_size⌉`;
/// * each group's [`Mbb`] covers all of its records;
/// * record totals are conserved (`Σ group lengths = |dataset|`).
#[inline]
pub fn check_prepared(ds: &GroupedDataset, prep: &PreparedDataset) {
    #[cfg(feature = "invariants")]
    {
        let dim = prep.dim();
        debug_assert_eq!(dim, ds.dim(), "prepared dim must match source");
        debug_assert_eq!(prep.n_groups(), ds.n_groups());
        let mut total = 0usize;
        for g in 0..prep.n_groups() {
            let len = prep.group_len(g);
            debug_assert_eq!(len, ds.group_len(g), "group {g} length changed");
            total += len;
            let sums = prep.group_sums(g);
            debug_assert!(
                sums.windows(2).all(|w| crate::ord::ge(w[0], w[1])),
                "group {g}: sums not descending"
            );
            for (i, &s) in sums.iter().enumerate() {
                let expect: f64 = prep.record(g, i).iter().sum();
                debug_assert!(
                    crate::ord::eq(s, expect),
                    "group {g} record {i}: cached sum {s} != recomputed {expect}"
                );
            }
            debug_assert_eq!(
                prep.n_blocks(g),
                len.div_ceil(prep.block_size()),
                "group {g}: block count inconsistent with block size"
            );
            let mbb = prep.mbb(g);
            let mut covered = 0usize;
            for b in 0..prep.n_blocks(g) {
                let view = prep.block(g, b);
                debug_assert!(!view.is_empty(), "group {g} block {b} empty");
                debug_assert!(view.len() <= prep.block_size());
                covered += view.len();
                for row in view.rows.chunks_exact(dim) {
                    for (d, &v) in row.iter().enumerate() {
                        debug_assert!(
                            crate::ord::le(view.min[d], v) && crate::ord::le(v, view.max[d]),
                            "group {g} block {b}: corner does not bound dim {d}"
                        );
                    }
                    check_mbb_contains(mbb, row);
                }
                if prep.lanes_enabled() {
                    // Lane keys are the sort keys of the block's records in
                    // column-major order, sentinel-padded to the block size.
                    let lanes = prep.lane_block(g, b);
                    debug_assert_eq!(lanes.len, view.len(), "group {g} block {b}: lane length");
                    for (j, row) in view.rows.chunks_exact(dim).enumerate() {
                        for (d, &v) in row.iter().enumerate() {
                            debug_assert_eq!(
                                lanes.lane(d)[j],
                                crate::dominance::sort_key(v),
                                "group {g} block {b} record {j}: lane {d} key mismatch"
                            );
                        }
                        debug_assert_eq!(
                            lanes.lane(dim)[j],
                            crate::dominance::sort_key(view.sums[j]),
                            "group {g} block {b} record {j}: sum-lane key mismatch"
                        );
                    }
                    debug_assert_eq!(
                        lanes.width % crate::prepared::LANE_VECTOR,
                        0,
                        "lane stride not padded to the vector width"
                    );
                    for j in view.len()..lanes.width {
                        debug_assert_eq!(lanes.lane(0)[j], i64::MAX, "pad lane 0 sentinel");
                        for d in 1..=dim {
                            debug_assert_eq!(lanes.lane(d)[j], i64::MIN, "pad lane {d} sentinel");
                        }
                    }
                }
            }
            debug_assert_eq!(covered, len, "group {g}: blocks do not partition");
        }
        debug_assert_eq!(total, prep.n_records());
        debug_assert_eq!(total, ds.n_records());
    }
}

/// Asserts that `record` lies inside `mbb` in every dimension.
#[inline]
pub fn check_mbb_contains(mbb: &Mbb, record: &[f64]) {
    #[cfg(feature = "invariants")]
    {
        debug_assert_eq!(mbb.min.len(), record.len());
        for (d, &v) in record.iter().enumerate() {
            debug_assert!(
                crate::ord::le(mbb.min[d], v) && crate::ord::le(v, mbb.max[d]),
                "record outside its group MBB in dimension {d}"
            );
        }
    }
}

/// Asserts pair-count conservation: the pairs a counting kernel classified
/// (dominating or not, scanned or pruned in bulk) must sum to exactly
/// `|S|·|R|`. A mismatch means a block was double-counted or skipped, which
/// silently shifts the domination probability.
#[inline]
pub fn check_pair_conservation(classified: u64, len_s: usize, len_r: usize) {
    #[cfg(feature = "invariants")]
    {
        let total = crate::num::pair_product(len_s, len_r);
        debug_assert_eq!(
            classified, total,
            "kernel classified {classified} pairs of {total} (|S|={len_s}, |R|={len_r})"
        );
    }
}

/// Frame-codec round-trip contract, checked on every checkpoint save: a
/// [`crate::persist::Snapshot`] encoded into a frame and decoded back must
/// compare equal, field for field. A violation means the codec would
/// persist state it cannot faithfully restore — the one bug the CRC can
/// never catch, because the checksum covers the (wrong) bytes perfectly.
#[inline]
pub fn check_snapshot_roundtrip(snap: &crate::persist::Snapshot) {
    #[cfg(feature = "invariants")]
    {
        use crate::persist::frame;
        let bytes = frame::encode_frame(&frame::encode_snapshot(snap));
        let payload = frame::decode_frame(&bytes);
        debug_assert!(payload.is_ok(), "fresh frame failed to decode: {:?}", payload.err());
        if let Ok(payload) = payload {
            let decoded = frame::decode_snapshot(payload);
            debug_assert!(
                decoded.as_ref() == Ok(snap),
                "snapshot round-trip not identity: {decoded:?}"
            );
        }
    }
}

#[cfg(all(test, feature = "invariants"))]
mod tests {
    use super::*;
    use crate::testdata::random_dataset;

    #[test]
    fn clean_structures_pass() {
        let ds = random_dataset(6, 9, 3, 11);
        for block_size in [1, 3, 8] {
            let prep = PreparedDataset::build(&ds, block_size).unwrap();
            check_prepared(&ds, &prep);
        }
        check_pair_conservation(12, 3, 4);
    }

    #[test]
    #[should_panic(expected = "outside its group MBB")]
    fn containment_violation_fires() {
        let mbb = Mbb { min: vec![0.0, 0.0], max: vec![1.0, 1.0] };
        check_mbb_contains(&mbb, &[0.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "kernel classified")]
    fn conservation_violation_fires() {
        check_pair_conservation(11, 3, 4);
    }

    #[test]
    fn snapshot_roundtrip_contract_passes_on_real_state() {
        use crate::persist::{Fingerprint, Snapshot};
        let ds = random_dataset(8, 5, 3, 12);
        let partial = crate::anytime::anytime_skyline(&ds, crate::Gamma::DEFAULT, 5);
        let snap = Snapshot {
            fingerprint: Fingerprint::of(&ds, crate::Gamma::DEFAULT),
            partition: Some(partial),
            pairs: Vec::new(),
        };
        check_snapshot_roundtrip(&snap);
    }
}
