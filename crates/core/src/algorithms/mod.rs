//! Aggregate-skyline algorithms (Section 3 of the paper).
//!
//! Five algorithms are implemented, matching the evaluation's lineup:
//!
//! | Name | Paper | Function |
//! |------|-------|----------|
//! | NL   | Alg. 2 + stop rule       | [`nested_loop`] |
//! | TR   | Alg. 3 (weak transitivity)| [`transitive`] |
//! | SI   | Alg. 4 (sorted access)   | [`sorted`] |
//! | IN   | Alg. 5 (spatial index)   | [`indexed`] |
//! | LO   | Alg. 5 + Fig. 9 boxes    | [`indexed`] with `bbox_prune` |
//!
//! plus the unoptimized [`naive_skyline`], which is the differential-testing
//! oracle.
//!
//! ## Paper vs. exact pruning
//!
//! Algorithm 3 as printed skips *strongly dominated* groups both as
//! comparison targets and as potential dominators. Weak transitivity
//! (Proposition 5) guarantees that a pruned group's γ̄-level dominations are
//! covered by its own dominator, but its plain γ-level dominations are not;
//! on adversarial inputs the printed algorithm can therefore emit a group
//! that the naive algorithm excludes. [`Pruning::Paper`] reproduces the
//! printed behaviour; [`Pruning::Exact`] only skips comparisons whose two
//! sides are both already excluded, which is provably result-preserving.
//! The difference is measured in `tests/` and the ablation benchmarks.

mod indexed;
mod naive;
mod nested_loop;
mod parallel;
mod transitive;

pub use indexed::indexed;
pub use naive::naive_skyline;
pub use nested_loop::nested_loop;
pub use parallel::{
    parallel_skyline, parallel_skyline_ctx, parallel_skyline_strided, parallel_skyline_with,
    resolve_threads,
};
pub use transitive::{sorted, transitive};

use crate::anytime::AnytimeResult;
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::Result;
use crate::gamma::Gamma;
use crate::kernel::{Kernel, KernelConfig};
use crate::mbb::Mbb;
use crate::paircache::PairCache;
use crate::paircount::{DomLevel, PairVerdict};
use crate::runctx::{InterruptReason, Outcome, RunContext};
use crate::stats::Stats;
use aggsky_obs::Stamp;

/// Output of an aggregate-skyline computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylineResult {
    /// Group ids in the skyline, ascending.
    pub skyline: Vec<GroupId>,
    /// Work counters for the run.
    pub stats: Stats,
}

/// Lifecycle of a group while an algorithm runs.
///
/// The ordering matters: a status is only ever *raised*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Status {
    /// Not (yet) known to be dominated.
    Live,
    /// γ-dominated by some group: excluded from the result.
    Dominated,
    /// γ̄-dominated: excluded and, under [`Pruning::Paper`], also skipped as
    /// a dominator candidate.
    StronglyDominated,
}

impl Status {
    #[inline]
    pub(crate) fn raise(&mut self, to: Status) {
        if to > *self {
            *self = to;
        }
    }
}

/// Pruning discipline for the transitive family of algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pruning {
    /// Algorithm 3 exactly as printed: strongly dominated groups (at the
    /// paper's γ̄ threshold, clamped to ≥ γ) are skipped both as targets
    /// and as dominator candidates.
    Paper,
    /// Algorithm 3 with the *corrected* weak-transitivity threshold
    /// `γ̄ = (1+γ)/2` (see [`crate::Gamma::bar_corrected`]). Still heuristic —
    /// a pruned group's plain γ-level dominations are not covered by
    /// weak transitivity at any threshold — but the threshold itself is
    /// sound, unlike the printed formula.
    PaperCorrected,
    /// Conservative variant: a comparison is skipped only when both sides
    /// are already excluded from the result. Always matches the naive
    /// oracle.
    Exact,
}

impl Pruning {
    /// Whether strong (γ̄-level) marks drive skipping.
    #[inline]
    pub(crate) fn uses_strong_marks(self) -> bool {
        !matches!(self, Pruning::Exact)
    }

    /// Pair-counting options implied by this discipline.
    pub(crate) fn pair_options(self, stop_rule: bool) -> crate::paircount::PairOptions {
        crate::paircount::PairOptions {
            stop_rule,
            need_bar: self.uses_strong_marks(),
            corrected_bar: matches!(self, Pruning::PaperCorrected),
        }
    }
}

/// Order in which the outer loop visits groups (Algorithm 4 / Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortStrategy {
    /// Dataset insertion order (what plain NL/TR use).
    InsertionOrder,
    /// Descending sum of the distances between the origin and the MBB's
    /// minimum and maximum corners (Algorithm 4): likely dominators first.
    CornerDistance,
    /// Ascending group cardinality, ties broken by descending minimum-corner
    /// distance: the Section 3.4 global optimization (cheap comparisons
    /// first), which is the configuration the evaluation calls "SI".
    SizeThenDistance,
}

/// Tuning knobs shared by the optimized algorithms. [`AlgoOptions::paper`]
/// reproduces the configurations used in the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct AlgoOptions {
    /// γ threshold (`0.5 ≤ γ ≤ 1`).
    pub gamma: Gamma,
    /// Section 3.3 early-stopping rule inside pair counting.
    pub stop_rule: bool,
    /// Figure 9 bounding-box pruning inside pair counting (the "LO" extra).
    pub bbox_prune: bool,
    /// Weak-transitivity pruning discipline.
    pub pruning: Pruning,
    /// Outer-loop visiting order for [`sorted`] and [`indexed`].
    pub sort: SortStrategy,
    /// Record-counting kernel used inside every pair comparison (see
    /// [`KernelConfig`]); `Blocked` preprocesses each group once and counts
    /// block-at-a-time.
    pub kernel: KernelConfig,
}

impl AlgoOptions {
    /// The paper's canonical configuration at the given γ.
    pub fn paper(gamma: Gamma) -> Self {
        AlgoOptions {
            gamma,
            stop_rule: true,
            bbox_prune: false,
            pruning: Pruning::Paper,
            sort: SortStrategy::SizeThenDistance,
            kernel: KernelConfig::Exhaustive,
        }
    }

    /// Exact-pruning configuration (always oracle-equivalent).
    pub fn exact(gamma: Gamma) -> Self {
        AlgoOptions { pruning: Pruning::Exact, ..AlgoOptions::paper(gamma) }
    }

    /// The paper configuration with the blocked counting kernel at the
    /// default block size.
    pub fn blocked(gamma: Gamma) -> Self {
        AlgoOptions { kernel: KernelConfig::blocked(), ..AlgoOptions::paper(gamma) }
    }
}

/// The algorithm lineup of the paper's evaluation (plus the naive oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exhaustive nested loop without even the stopping rule.
    Naive,
    /// NL: nested loop with the stop condition (Algorithm 2).
    NestedLoop,
    /// TR: transitive with stop condition (Algorithm 3).
    Transitive,
    /// SI: sorted access (Algorithm 4).
    Sorted,
    /// IN: index-based (Algorithm 5).
    Indexed,
    /// LO: index-based with bounding-box approximation (Algorithm 5 + §3.3).
    IndexedBbox,
}

impl Algorithm {
    /// Short name used in the paper's plots.
    pub fn short_name(self) -> &'static str {
        match self {
            Algorithm::Naive => "NL0",
            Algorithm::NestedLoop => "NL",
            Algorithm::Transitive => "TR",
            Algorithm::Sorted => "SI",
            Algorithm::Indexed => "IN",
            Algorithm::IndexedBbox => "LO",
        }
    }

    /// All five evaluated algorithms, in the paper's order.
    pub const EVALUATED: [Algorithm; 5] = [
        Algorithm::NestedLoop,
        Algorithm::Transitive,
        Algorithm::Sorted,
        Algorithm::Indexed,
        Algorithm::IndexedBbox,
    ];

    /// Runs this algorithm in its canonical paper configuration. The paper
    /// configuration uses the exhaustive kernel, whose construction cannot
    /// fail, so this stays infallible.
    pub fn run(self, ds: &GroupedDataset, gamma: Gamma) -> SkylineResult {
        let kernel = Kernel::exhaustive(ds);
        // An unlimited fault-free context never interrupts, so unwrapping
        // to the complete result is lossless here.
        self.run_on(&kernel, AlgoOptions::paper(gamma), &RunContext::unlimited(), None)
            .unwrap_or_partial()
    }

    /// Runs this algorithm with explicit options (`bbox_prune` and `sort`
    /// are overridden where the algorithm's identity requires it).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidArgument`] when `opts.kernel` is
    /// misconfigured (zero or over-large block size).
    pub fn run_with(self, ds: &GroupedDataset, opts: AlgoOptions) -> Result<SkylineResult> {
        // An unlimited fault-free context never interrupts, so unwrapping
        // to the complete result is lossless here.
        Ok(self.run_ctx(ds, opts, &RunContext::unlimited())?.unwrap_or_partial())
    }

    /// Runs this algorithm under an execution-control context: the run
    /// polls `ctx` at group-pair boundaries and, when cancelled or out of
    /// budget, returns [`Outcome::Interrupted`] with a sound partial
    /// partition instead of the exact skyline.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidArgument`] when `opts.kernel` is
    /// misconfigured (zero or over-large block size).
    pub fn run_ctx(
        self,
        ds: &GroupedDataset,
        opts: AlgoOptions,
        ctx: &RunContext,
    ) -> Result<Outcome> {
        let kernel = Kernel::new(ds, opts.kernel)?;
        let prep_span = ctx.obs().map_or(0, |rec| rec.span_start("prepare", 0, Stamp::ZERO));
        end_prepare_span(prep_span, &kernel, ctx);
        Ok(self.run_on(&kernel, opts, ctx, None))
    }

    /// Runs this algorithm over an existing preparation, skipping the
    /// per-run [`crate::PreparedDataset::build`] cost (`opts.kernel` is
    /// ignored; the blocked kernel is always active). The preparation must
    /// have been built from `ds`.
    pub fn run_prepared(
        self,
        ds: &GroupedDataset,
        prep: &crate::prepared::PreparedDataset,
        opts: AlgoOptions,
    ) -> SkylineResult {
        self.run_prepared_ctx(ds, prep, opts, &RunContext::unlimited()).unwrap_or_partial()
    }

    /// [`Algorithm::run_prepared`] under an execution-control context.
    pub fn run_prepared_ctx(
        self,
        ds: &GroupedDataset,
        prep: &crate::prepared::PreparedDataset,
        opts: AlgoOptions,
        ctx: &RunContext,
    ) -> Outcome {
        let kernel = Kernel::with_prepared(ds, prep);
        self.run_on(&kernel, opts, ctx, None)
    }

    /// Runs this algorithm over a shared preparation *and* a shared
    /// [`PairCache`]: every group comparison first consults the cache and
    /// memoizes its (possibly partial) tally. This is the entry point the
    /// γ-sweep driver ([`crate::gamma_sweep`]) uses, and it is equally valid
    /// across *algorithms* within one run — the tallies are algorithm-,
    /// γ- and option-independent.
    ///
    /// The skyline is identical to an uncached run; the `Stats` work
    /// counters reflect only freshly performed counting, with reuse
    /// reported in `cache_hits` / `cache_misses` / `cache_resumes`.
    /// Straddling block pairs use the columnar kernel when the preparation
    /// carries key lanes. [`Algorithm::Naive`] never consults the kernel
    /// and therefore ignores the cache.
    pub fn run_cached(
        self,
        ds: &GroupedDataset,
        prep: &crate::prepared::PreparedDataset,
        opts: AlgoOptions,
        cache: &mut PairCache,
    ) -> SkylineResult {
        self.run_cached_ctx(ds, prep, opts, cache, &RunContext::unlimited()).unwrap_or_partial()
    }

    /// [`Algorithm::run_cached`] under an execution-control context. Budget
    /// ticks are charged per fresh record pair only, so work resumed from
    /// the cache is never double-charged across a sweep.
    pub fn run_cached_ctx(
        self,
        ds: &GroupedDataset,
        prep: &crate::prepared::PreparedDataset,
        opts: AlgoOptions,
        cache: &mut PairCache,
        ctx: &RunContext,
    ) -> Outcome {
        let kernel = match Kernel::with_prepared_columnar(ds, prep) {
            Ok(k) => k,
            // No key lanes (over-large blocks): row-wise counting, same
            // tallies, same cache protocol.
            Err(_) => Kernel::with_prepared(ds, prep),
        };
        self.run_on(&kernel, opts, ctx, Some(cache))
    }

    fn run_on(
        self,
        kernel: &Kernel<'_>,
        opts: AlgoOptions,
        ctx: &RunContext,
        cache: Option<&mut PairCache>,
    ) -> Outcome {
        let span = ctx.obs().map_or(0, |rec| rec.span_start(self.short_name(), 0, Stamp::ZERO));
        let outcome = match self {
            Algorithm::Naive => naive::naive_skyline_ctx(kernel.dataset(), opts.gamma, ctx),
            Algorithm::NestedLoop => nested_loop::nested_loop_on(kernel, &opts, ctx, cache),
            Algorithm::Transitive => transitive::transitive_on(kernel, &opts, ctx, cache),
            Algorithm::Sorted => transitive::sorted_on(kernel, &opts, ctx, cache),
            Algorithm::Indexed => {
                indexed::indexed_on(kernel, &AlgoOptions { bbox_prune: false, ..opts }, ctx, cache)
            }
            Algorithm::IndexedBbox => {
                indexed::indexed_on(kernel, &AlgoOptions { bbox_prune: true, ..opts }, ctx, cache)
            }
        };
        if let Some(rec) = ctx.obs() {
            // One dump of the run's final counters into the metric registry:
            // this is what makes `EXPLAIN ANALYZE` totals equal the `Stats`
            // of an uninstrumented run of the same query.
            let stats = outcome.stats();
            stats.record_to(rec);
            rec.span_end(
                span,
                Stamp::tick(stats.record_pairs),
                &[
                    ("group_pairs", stats.group_pairs),
                    ("record_pairs", stats.record_pairs),
                    ("early_stops", stats.early_stops),
                ],
            );
        }
        outcome
    }
}

/// Closes the `"prepare"` span with the dataset/blocking shape as
/// arguments. Preparation happens before any record pair is charged, so
/// both endpoints sit at tick 0 — the span exists for its arguments and for
/// the tree shape, not for duration.
fn end_prepare_span(span: aggsky_obs::SpanId, kernel: &Kernel<'_>, ctx: &RunContext) {
    let Some(rec) = ctx.obs() else { return };
    let ds = kernel.dataset();
    let mut args = vec![
        ("groups", crate::num::wide(ds.n_groups())),
        ("records", crate::num::wide(ds.n_records())),
    ];
    if let Some(prep) = kernel.prepared() {
        let blocks: usize = ds.group_ids().map(|g| prep.n_blocks(g)).sum();
        args.push(("blocks", crate::num::wide(blocks)));
        args.push(("block_size", crate::num::wide(prep.block_size())));
    }
    rec.span_end(span, Stamp::ZERO, &args);
}

/// Snapshot of the per-pair counters taken before one `kernel.compare`
/// call, used to feed the work-distribution histograms from counter deltas
/// without threading the recorder into the kernel itself.
pub(crate) struct PairDeltas {
    record_pairs: u64,
    records_compared: u64,
}

impl PairDeltas {
    #[inline]
    pub(crate) fn before(stats: &Stats) -> PairDeltas {
        PairDeltas { record_pairs: stats.record_pairs, records_compared: stats.records_compared }
    }

    /// Records the pair's work into the histograms. Straddle fanout is only
    /// observed when the blocked kernel actually compared records inside
    /// straddling blocks (the delta is zero under the exhaustive kernel and
    /// for block pairs fully classified by corner tests).
    #[inline]
    pub(crate) fn observe(&self, ctx: &RunContext, stats: &Stats) {
        if let Some(rec) = ctx.obs() {
            self.observe_to(rec, stats);
        }
    }

    /// [`PairDeltas::observe`] against an already-resolved recorder (the
    /// parallel workers hold one for their whole chunk loop).
    #[inline]
    pub(crate) fn observe_to(&self, rec: &dyn aggsky_obs::Recorder, stats: &Stats) {
        rec.observe(
            aggsky_obs::Hist::RecordPairsPerGroupPair,
            stats.record_pairs.saturating_sub(self.record_pairs),
        );
        let straddle = stats.records_compared.saturating_sub(self.records_compared);
        if straddle > 0 {
            rec.observe(aggsky_obs::Hist::StraddleFanout, straddle);
        }
    }
}

/// Applies a pair verdict to the two groups' statuses.
///
/// Under [`Pruning::Exact`] a γ̄ verdict is recorded as plain `Dominated`
/// because strong marks are never acted upon (and the cheaper `need_bar =
/// false` counting mode folds both levels together anyway).
pub(crate) fn apply_verdict(
    verdict: PairVerdict,
    s1: &mut Status,
    s2: &mut Status,
    pruning: Pruning,
) {
    let level = |l: DomLevel| match (l, pruning.uses_strong_marks()) {
        (DomLevel::None, _) => None,
        (DomLevel::Gamma, _) | (DomLevel::GammaBar, false) => Some(Status::Dominated),
        (DomLevel::GammaBar, true) => Some(Status::StronglyDominated),
    };
    if let Some(st) = level(verdict.forward) {
        s2.raise(st);
    }
    if let Some(st) = level(verdict.backward) {
        s1.raise(st);
    }
}

/// Builds the typed partial partition for an interrupted run.
///
/// Every non-`Live` status maps to `confirmed_out`: a recorded verdict
/// always reflects a real γ-dominator (γ̄-level domination implies γ-level),
/// so this is sound even under the heuristic [`Pruning::Paper`]. A `Live`
/// group is `confirmed_in` only when `proven_in` vouches for it — callers
/// must return `true` only for groups whose full dominator scan completed
/// under a result-preserving pruning discipline; everything else is
/// `undecided`.
pub(crate) fn interrupted(
    statuses: &[Status],
    proven_in: impl Fn(GroupId) -> bool,
    stats: Stats,
    reason: InterruptReason,
) -> Outcome {
    let mut confirmed_in = Vec::new();
    let mut confirmed_out = Vec::new();
    let mut undecided = Vec::new();
    for (g, status) in statuses.iter().enumerate() {
        match status {
            Status::Live if proven_in(g) => confirmed_in.push(g),
            Status::Live => undecided.push(g),
            _ => confirmed_out.push(g),
        }
    }
    Outcome::Interrupted {
        reason,
        partial: AnytimeResult { confirmed_in, confirmed_out, undecided, stats, checkpoint: None },
    }
}

/// Collects the surviving groups in ascending id order.
pub(crate) fn collect_result(statuses: &[Status], stats: Stats) -> SkylineResult {
    let skyline =
        statuses.iter().enumerate().filter(|(_, s)| **s == Status::Live).map(|(g, _)| g).collect();
    SkylineResult { skyline, stats }
}

/// Group bounding boxes for an algorithm run: reuses the ones the kernel's
/// preparation already computed, falling back to a fresh
/// [`Mbb::of_all_groups`] pass in exhaustive mode (stored in `owned`).
pub(crate) fn kernel_boxes<'a>(
    kernel: &'a Kernel<'_>,
    owned: &'a mut Option<Vec<Mbb>>,
) -> &'a [Mbb] {
    match kernel.group_mbbs() {
        Some(b) => b,
        None => owned.insert(Mbb::of_all_groups(kernel.dataset())),
    }
}

/// Computes the outer-loop visiting order for a sort strategy.
pub(crate) fn build_order(
    ds: &GroupedDataset,
    boxes: &[Mbb],
    strategy: SortStrategy,
) -> Vec<GroupId> {
    let mut order: Vec<GroupId> = ds.group_ids().collect();
    match strategy {
        SortStrategy::InsertionOrder => {}
        SortStrategy::CornerDistance => {
            let key: Vec<f64> = boxes.iter().map(Mbb::corner_distance_sum).collect();
            order.sort_by(|&a, &b| key[b].total_cmp(&key[a]));
        }
        SortStrategy::SizeThenDistance => {
            let key: Vec<f64> = boxes.iter().map(Mbb::min_corner_norm).collect();
            order.sort_by(|&a, &b| {
                ds.group_len(a).cmp(&ds.group_len(b)).then_with(|| key[b].total_cmp(&key[a]))
            });
        }
    }
    order
}
