//! IN and LO: the index-based algorithm (Algorithm 5), optionally with the
//! Figure 9 bounding-box approximation.

use super::nested_loop::split_two;
use super::{
    apply_verdict, build_order, collect_result, interrupted, kernel_boxes, AlgoOptions, PairDeltas,
    Pruning, SkylineResult, Status,
};
use crate::dataset::GroupedDataset;
use crate::error::Result;
use crate::kernel::Kernel;
use crate::paircache::PairCache;
use crate::paircount::PairOptions;
use crate::runctx::{Outcome, RunContext};
use crate::stats::Stats;
use aggsky_obs::{Hist, Stamp};
use aggsky_spatial::{Aabb, RTree};

/// IN / LO: for each group, candidate dominators are found with a window
/// query over a spatial index of MBB maximum corners (Algorithm 5); a group
/// `g2` can dominate `g1` only if `g2.max` lies in the half-open window
/// `[g1.min, ∞)`. With `opts.bbox_prune` the pairwise comparison also uses
/// the Figure 9 region decomposition (the paper's "LO" configuration).
pub fn indexed(ds: &GroupedDataset, opts: &AlgoOptions) -> Result<SkylineResult> {
    let kernel = Kernel::new(ds, opts.kernel)?;
    Ok(indexed_on(&kernel, opts, &RunContext::unlimited(), None).unwrap_or_partial())
}

/// [`indexed`] over a pre-built kernel, polling `ctx` before every
/// candidate comparison.
pub(super) fn indexed_on(
    kernel: &Kernel<'_>,
    opts: &AlgoOptions,
    ctx: &RunContext,
    mut cache: Option<&mut PairCache>,
) -> Outcome {
    let ds = kernel.dataset();
    let n = ds.n_groups();
    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    let mut owned_boxes = None;
    let boxes = kernel_boxes(kernel, &mut owned_boxes);
    let order = build_order(ds, boxes, opts.sort);
    let index_span = ctx.obs().map_or(0, |rec| rec.span_start("index_build", 0, Stamp::ZERO));
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    if let Some(rec) = ctx.obs() {
        rec.span_end(index_span, Stamp::ZERO, &[("entries", crate::num::wide(n))]);
    }
    let pair_opts: PairOptions = opts.pruning.pair_options(opts.stop_rule);
    let strong_marks = opts.pruning.uses_strong_marks();
    // Unlike the pairwise loops, a group's window query surfaces *all* of
    // its potential dominators at once, so completing its own outer
    // iteration proves membership — but only under the result-preserving
    // Exact discipline (heuristic pruning skips candidates).
    let sound = opts.pruning == Pruning::Exact;
    let bail = |statuses: &[Status], done_upto: usize, stats: Stats, reason| {
        let mut done = vec![false; n];
        for &g in order.iter().take(done_upto) {
            done[g] = true;
        }
        interrupted(statuses, |g| sound && done[g], stats, reason)
    };
    let mut candidates: Vec<usize> = Vec::new();
    for (i, &g1) in order.iter().enumerate() {
        if let Some(reason) = ctx.poll(stats.record_pairs) {
            return bail(&statuses, i, stats, reason);
        }
        if strong_marks {
            // Algorithm 5 line 8.
            if statuses[g1] == Status::StronglyDominated {
                continue;
            }
        } else if statuses[g1] != Status::Live {
            // Sound skip: g1's membership is settled and, because window
            // candidates are never skipped under exact pruning, every other
            // group still sees all of its own potential dominators.
            continue;
        }
        // Algorithm 5 line 11: only groups whose best corner dominates g1's
        // worst corner can possibly dominate g1.
        tree.window_query_into(&Aabb::at_least(&boxes[g1].min), &mut candidates);
        stats.index_candidates += crate::num::wide(candidates.len().saturating_sub(1));
        if let Some(rec) = ctx.obs() {
            rec.observe(Hist::WindowCandidates, crate::num::wide(candidates.len()));
        }
        for &g2 in &candidates {
            if g2 == g1 {
                continue; // Algorithm 5 line 13.
            }
            if strong_marks && statuses[g2] == Status::StronglyDominated {
                stats.transitive_skips += 1; // Algorithm 5 line 16.
                continue;
            }
            if let Some(reason) = ctx.poll(stats.record_pairs) {
                return bail(&statuses, i, stats, reason);
            }
            let pair_boxes = opts.bbox_prune.then(|| (&boxes[g1], &boxes[g2]));
            let before = PairDeltas::before(&stats);
            let mut verdict = kernel.compare_cached(
                g1,
                g2,
                opts.gamma,
                pair_boxes,
                pair_opts,
                cache.as_deref_mut(),
                &mut stats,
            );
            ctx.corrupt_verdict(&mut verdict, stats.record_pairs);
            before.observe(ctx, &stats);
            let (s1, s2) = split_two(&mut statuses, g1, g2);
            apply_verdict(verdict, s1, s2, opts.pruning);
            if strong_marks && statuses[g1] == Status::StronglyDominated {
                break; // "end processing of g1".
            }
            if !strong_marks && statuses[g1] != Status::Live {
                break; // membership settled; candidates cannot unsettle it.
            }
        }
    }
    Outcome::Complete(collect_result(&statuses, stats))
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::*;
    use crate::gamma::Gamma;
    use crate::testdata::{movie_directors, random_dataset};

    fn paper(gamma: f64) -> AlgoOptions {
        AlgoOptions::paper(Gamma::new(gamma).unwrap())
    }

    #[test]
    fn indexed_matches_oracle_on_movies() {
        let ds = movie_directors();
        for gamma in [0.5, 0.7, 1.0] {
            for bbox in [false, true] {
                let result =
                    indexed(&ds, &AlgoOptions { bbox_prune: bbox, ..paper(gamma) }).unwrap();
                let oracle = naive_skyline(&ds, Gamma::new(gamma).unwrap());
                assert_eq!(result.skyline, oracle.skyline, "gamma={gamma} bbox={bbox}");
            }
        }
    }

    #[test]
    fn exact_indexed_matches_oracle_on_random_data() {
        for seed in 0..20 {
            let ds = random_dataset(20, 6, 3, 3000 + seed);
            for bbox in [false, true] {
                let opts = AlgoOptions { bbox_prune: bbox, ..AlgoOptions::exact(Gamma::DEFAULT) };
                let result = indexed(&ds, &opts).unwrap();
                let oracle = naive_skyline(&ds, Gamma::DEFAULT);
                assert_eq!(result.skyline, oracle.skyline, "seed={seed} bbox={bbox}");
            }
        }
    }

    #[test]
    fn window_query_prunes_group_pairs_on_clustered_data() {
        // Two far-apart clusters: cross-cluster pairs where the lower
        // cluster cannot dominate should never be compared.
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        for i in 0..10 {
            let x = i as f64;
            b.push_group(format!("low{i}"), &[vec![x, 9.0 - x]]).unwrap();
        }
        for i in 0..10 {
            let x = 100.0 + i as f64;
            b.push_group(format!("high{i}"), &[vec![x, 109.0 - x]]).unwrap();
        }
        let ds = b.build().unwrap();
        let result = indexed(&ds, &paper(0.5)).unwrap();
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
        // An exhaustive pass would start 190+ pair comparisons; the index
        // must avoid the bulk of them (low groups cannot dominate high ones).
        assert!(
            result.stats.group_pairs < 150,
            "index pruned nothing: {} group pairs",
            result.stats.group_pairs
        );
    }
}
