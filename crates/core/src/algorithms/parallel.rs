//! Parallel aggregate skyline (an extension beyond the paper).
//!
//! Membership of each group is independent of the others' membership:
//! `R ∈ Sky_γ ⟺ ∄S: S ≻_γ R`. That makes a per-group "find my dominator"
//! scan embarrassingly parallel, at the cost of giving up cross-pair
//! sharing (each ordered pair may be examined once instead of each
//! unordered pair). Candidate dominators are still pruned with the same
//! spatial window as Algorithm 5, and each candidate comparison uses the
//! stopping rule in one-directional mode.
//!
//! Work is distributed at *pair granularity*: the stealable unit is one
//! bounded batch of block pairs of one candidate→group comparison
//! ([`Kernel::compare_bounded`], at most [`BLOCK_PAIRS_PER_JOB`] block
//! pairs), not a whole group or chunk of groups. The orchestrator flattens
//! every group's window candidates into one pair array; workers claim
//! fresh pairs from an atomic cursor and drain a shared continuation queue
//! of batches that hit their block-pair limit. Because the counting tally
//! plus the deterministic block cursor fully describe the remaining work,
//! *any* worker can resume a continuation — one giant group pair can no
//! longer strand a worker the way group-granular chunks could. Groups
//! whose dominator is already known are finished without counting (the
//! per-group dominated flag), preserving the sequential early-exit. The
//! previous static strided partition is kept as
//! [`parallel_skyline_strided`] for ablation benchmarks.
//!
//! ## Fault containment
//!
//! A panicking worker no longer aborts the query. Each batch runs inside
//! `catch_unwind`; on a panic its partial `Stats` die with it (charges are
//! committed only after a successful batch, so retries never double-charge
//! the budget), the pair goes back on the shared queue (recorded in
//! `Stats::worker_retries`) and, when other workers survive, the panicked
//! worker is *quarantined* — it stops taking work
//! (`Stats::workers_quarantined`) while the survivors drain the queue. The
//! worker's shard-local [`PairCache`] may have been abandoned mid-update
//! and is dropped rather than trusted; the requeued job's resume tally is
//! a value captured before the batch and stays sound. Backoff is
//! deterministic queue reordering plus `yield_now`, never wall-clock sleep
//! (rule L5). Only when the same pair panics [`MAX_PAIR_ATTEMPTS`] times
//! does the query fail, with the typed [`Error::WorkerPanicked`] instead
//! of a propagated panic.

use super::{PairDeltas, SkylineResult, Status};
use crate::anytime::AnytimeResult;
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::kernel::{BoundedCompare, Kernel, KernelConfig};
use crate::mbb::Mbb;
use crate::paircache::{CachedTally, PairCache};
use crate::paircount::PairOptions;
use crate::runctx::{InterruptReason, Outcome, RunContext};
use crate::stats::Stats;
use aggsky_obs::{Hist, Stamp};
use aggsky_spatial::{Aabb, RTree};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How many times one pair may panic before the query gives up with
/// [`Error::WorkerPanicked`]. Transient faults (like an injected chaos
/// panic, which fires once) succeed on the first retry; a deterministic
/// panic in the counting kernel would loop forever without this cap.
const MAX_PAIR_ATTEMPTS: u32 = 3;

/// Block pairs one stolen batch may execute before it must yield a
/// resumable continuation. Bounds the time any single steal can hold a
/// worker (load balance under skew) while keeping scheduler traffic — one
/// queue operation per batch — negligible next to the counting the batch
/// performs. Pairs smaller than this finish in their first batch, so the
/// common case costs exactly one steal, like the old chunk scheduler.
const BLOCK_PAIRS_PER_JOB: u64 = 1024;

/// Resolves a requested thread count: `0` means "use all available
/// hardware parallelism" (falling back to 1 when it cannot be queried).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Computes the aggregate skyline with `threads` worker threads
/// (`threads = 0` uses [`resolve_threads`]) and dynamic chunk scheduling.
///
/// Always returns the exact skyline (it is a parallelization of the naive
/// definition with index-based candidate pruning, not of the heuristic
/// Algorithm 3). `threads = 1` degenerates to a sequential scan and is
/// useful for ablation. Fails only when a chunk exhausts its panic retries
/// (see the module docs).
pub fn parallel_skyline(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
) -> Result<SkylineResult> {
    parallel_skyline_with(ds, gamma, threads, KernelConfig::Exhaustive)
}

/// [`parallel_skyline`] with an explicit counting kernel; the preparation
/// (when blocked) is built once and shared by all workers.
pub fn parallel_skyline_with(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
    config: KernelConfig,
) -> Result<SkylineResult> {
    // An unlimited fault-free context never interrupts, so unwrapping to
    // the complete result is lossless here.
    Ok(parallel_skyline_ctx(ds, gamma, threads, config, &RunContext::unlimited())?
        .unwrap_or_partial())
}

/// [`parallel_skyline`] under an execution-control context. The budget is
/// a *global* virtual clock shared by all workers (each worker charges its
/// finished group's record pairs to it), polled at group boundaries; on
/// exhaustion or cancellation the groups already resolved become the
/// confirmed sets and in-flight ones stay undecided.
pub fn parallel_skyline_ctx(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
    config: KernelConfig,
    ctx: &RunContext,
) -> Result<Outcome> {
    let kernel = Kernel::new(ds, config)?;
    run_stealing(&kernel, gamma, resolve_threads(threads), ctx)
}

/// The pre-work-stealing scheduler: a static strided partition (worker `t`
/// of `T` processes groups `t, t+T, t+2T, …`). Retained solely so the
/// benchmarks can measure what dynamic chunk scheduling buys; new callers
/// should use [`parallel_skyline`]. No retry/quarantine: a worker panic
/// surfaces immediately as [`Error::WorkerPanicked`].
pub fn parallel_skyline_strided(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
) -> Result<SkylineResult> {
    let kernel = Kernel::exhaustive(ds);
    run_strided(&kernel, gamma, resolve_threads(threads))
}

/// Locks a mutex, recovering from poisoning (a worker panicking while
/// holding the lock leaves the data intact for our usage: every critical
/// section is a single push/pop/assignment).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Trace track for worker `wid` (track 0 is the orchestrating thread).
fn track_of(wid: usize) -> u32 {
    u32::try_from(wid.saturating_add(1)).unwrap_or(u32::MAX)
}

/// One-directional dominator scan for `g1` (the strided baseline's unit of
/// parallel work): window-query the spatial index for candidate dominators
/// and compare until one γ-dominates `g1` or the candidates run out.
#[allow(clippy::too_many_arguments)]
fn scan_group(
    kernel: &Kernel<'_>,
    tree: &RTree<GroupId>,
    boxes: &[Mbb],
    gamma: Gamma,
    pair_opts: PairOptions,
    ctx: &RunContext,
    g1: GroupId,
    candidates: &mut Vec<GroupId>,
    cache: &mut Option<PairCache>,
    stats: &mut Stats,
) -> Status {
    tree.window_query_into(&Aabb::at_least(&boxes[g1].min), candidates);
    stats.index_candidates += crate::num::wide(candidates.len().saturating_sub(1));
    for &g2 in candidates.iter() {
        if g2 == g1 {
            continue;
        }
        let before = PairDeltas::before(stats);
        let mut verdict = kernel.compare_cached(
            g2,
            g1,
            gamma,
            Some((&boxes[g2], &boxes[g1])),
            pair_opts,
            cache.as_mut(),
            stats,
        );
        ctx.corrupt_verdict(&mut verdict, stats.record_pairs);
        before.observe(ctx, stats);
        if verdict.forward.dominates() {
            return Status::Dominated;
        }
    }
    Status::Live
}

/// One stealable unit of parallel work: one bounded batch of block pairs
/// of one ordered candidate→group comparison, plus its panic-retry count.
struct PairJob {
    /// Index into the scheduler's flattened `(group, candidate)` array.
    idx: usize,
    /// Canonical counting state carried over from this pair's previous
    /// batch (`None` for the pair's first batch).
    resume: Option<CachedTally>,
    /// How many times a worker has panicked inside this pair.
    attempts: u32,
}

/// State shared by the pair-granular scheduler's workers.
struct SharedState {
    /// Next fresh pair index to hand out.
    next: AtomicUsize,
    /// Continuations and panic retries, drained before fresh work.
    queue: Mutex<VecDeque<PairJob>>,
    /// Per-group "a dominator was found" flag: set once, never cleared, and
    /// read by every worker to skip the group's remaining pairs.
    dominated: Vec<AtomicBool>,
    /// Per-group count of unfinished candidate pairs. The worker whose
    /// batch brings a group to zero records the group's status.
    remaining: Vec<AtomicUsize>,
    /// Groups fully resolved so far (drives termination).
    done: AtomicUsize,
    /// Global virtual clock: record pairs committed by successful batches.
    spent: AtomicU64,
    /// Workers still taking work; quarantine decrements, keeping ≥ 1.
    active: AtomicUsize,
    /// First interruption reason (0 = none, 1 = cancelled, 2 = budget).
    interrupt: AtomicU8,
    /// Fatal error once a pair exhausts its retries.
    fatal: Mutex<Option<Error>>,
    /// Incident counters folded into the final `Stats`.
    retries: AtomicU64,
    quarantined: AtomicU64,
}

impl SharedState {
    fn new(workers: usize, remaining: Vec<AtomicUsize>, resolved_upfront: usize) -> Self {
        let n = remaining.len();
        SharedState {
            next: AtomicUsize::new(0),
            queue: Mutex::new(VecDeque::new()),
            dominated: (0..n).map(|_| AtomicBool::new(false)).collect(),
            remaining,
            done: AtomicUsize::new(resolved_upfront),
            spent: AtomicU64::new(0),
            active: AtomicUsize::new(workers.max(1)),
            interrupt: AtomicU8::new(0),
            fatal: Mutex::new(None),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Records the first interruption reason (later ones are ignored).
    fn flag_interrupt(&self, reason: InterruptReason) {
        let code = match reason {
            InterruptReason::Cancelled => 1,
            InterruptReason::BudgetExhausted => 2,
        };
        let _ = self.interrupt.compare_exchange(0, code, Ordering::AcqRel, Ordering::Relaxed);
    }

    fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self.interrupt.load(Ordering::Acquire) {
            1 => Some(InterruptReason::Cancelled),
            2 => Some(InterruptReason::BudgetExhausted),
            _ => None,
        }
    }

    fn should_stop(&self) -> bool {
        self.interrupt.load(Ordering::Acquire) != 0 || lock(&self.fatal).is_some()
    }

    /// Pops a job: queued continuations and retries first (they hold
    /// partially counted pairs whose completion unblocks groups), then a
    /// fresh pair from the atomic cursor.
    fn pop_job(&self, n_pairs: usize) -> Option<PairJob> {
        if let Some(job) = lock(&self.queue).pop_front() {
            return Some(job);
        }
        if self.next.load(Ordering::Relaxed) < n_pairs {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx < n_pairs {
                return Some(PairJob { idx, resume: None, attempts: 0 });
            }
        }
        None
    }

    /// Marks one candidate pair of `g` finished. The caller that brings the
    /// group's remaining count to zero records its status (the dominated
    /// flag was published before the final `fetch_sub`'s release, so the
    /// acquiring reader here cannot miss it) and advances `done`.
    fn finish_pair(&self, g: GroupId, part: &mut Vec<(GroupId, Status)>) {
        if self.remaining[g].fetch_sub(1, Ordering::AcqRel) == 1 {
            let status = if self.dominated[g].load(Ordering::Acquire) {
                Status::Dominated
            } else {
                Status::Live
            };
            part.push((g, status));
            self.done.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The scheduler's virtual clock as a tick stamp (record pairs charged
    /// by committed batches so far). Monotone but coarse: in-flight batches
    /// have not charged yet.
    fn tick_now(&self) -> Stamp {
        Stamp::tick(self.spent.load(Ordering::Relaxed))
    }

    /// Tries to take this worker out of rotation after a panic; refuses
    /// when it is the last active one (somebody must drain the queue).
    fn try_quarantine(&self) -> bool {
        let mut current = self.active.load(Ordering::Acquire);
        loop {
            if current <= 1 {
                return false;
            }
            match self.active.compare_exchange(
                current,
                current - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

fn run_stealing(
    kernel: &Kernel<'_>,
    gamma: Gamma,
    threads: usize,
    ctx: &RunContext,
) -> Result<Outcome> {
    let ds = kernel.dataset();
    let threads = threads.max(1);
    let n = ds.n_groups();
    let parallel_span = ctx.obs().map_or(0, |rec| rec.span_start("parallel", 0, Stamp::ZERO));
    let mut owned_boxes = None;
    let boxes = super::kernel_boxes(kernel, &mut owned_boxes);
    let index_span = ctx.obs().map_or(0, |rec| rec.span_start("index_build", 0, Stamp::ZERO));
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    if let Some(rec) = ctx.obs() {
        rec.span_end(index_span, Stamp::ZERO, &[("entries", crate::num::wide(n))]);
    }
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };

    // Flatten every group's candidate dominators into one group-major pair
    // array up front. The window queries are cheap relative to the counting
    // they feed, and a materialized array is what lets the atomic cursor
    // hand out single pairs. Groups with no candidate are members by
    // definition and resolve here.
    let mut setup_stats = Stats::default();
    let mut pairs: Vec<(GroupId, GroupId)> = Vec::new();
    let mut remaining: Vec<AtomicUsize> = Vec::with_capacity(n);
    let mut upfront: Vec<(GroupId, Status)> = Vec::new();
    {
        let mut candidates: Vec<GroupId> = Vec::new();
        for (g, gbox) in boxes.iter().enumerate() {
            tree.window_query_into(&Aabb::at_least(&gbox.min), &mut candidates);
            setup_stats.index_candidates += crate::num::wide(candidates.len().saturating_sub(1));
            let before = pairs.len();
            pairs.extend(candidates.iter().copied().filter(|&c| c != g).map(|c| (g, c)));
            remaining.push(AtomicUsize::new(pairs.len() - before));
            if pairs.len() == before {
                upfront.push((g, Status::Live));
            }
        }
    }
    let pairs = pairs.as_slice();

    let workers = threads.min(n).max(1);
    let shared = SharedState::new(workers, remaining, upfront.len());

    let worker = |wid: usize| -> (Vec<(GroupId, Status)>, Stats) {
        let track = track_of(wid);
        let worker_span =
            ctx.obs().map_or(0, |rec| rec.span_start("worker", track, shared.tick_now()));
        let mut stats = Stats::default();
        // Shard-local pair-count memo: workers never share cache state, so
        // they never serialize on it (duplicate counting across workers is
        // the accepted cost). Only useful when a preparation exists — the
        // cache resumes at the blocked kernel's cursor.
        let mut pair_cache = kernel.prepared().map(|_| PairCache::new());
        let mut part: Vec<(GroupId, Status)> = Vec::new();
        let mut batches = 0u64;
        'outer: loop {
            if shared.should_stop() {
                break;
            }
            let Some(mut job) = shared.pop_job(pairs.len()) else {
                if shared.done.load(Ordering::Acquire) >= n {
                    break;
                }
                // Another worker still holds unfinished pairs (and may yet
                // requeue them after a panic): spin cooperatively. No
                // wall-clock sleep — backoff must stay deterministic (L5).
                std::thread::yield_now();
                continue;
            };
            let (g, cand) = pairs[job.idx];
            // A dominator of `g` is already known: this pair's verdict
            // cannot change membership, so finish it without counting (the
            // sequential scan's early exit, cooperatively).
            if shared.dominated[g].load(Ordering::Acquire) {
                shared.finish_pair(g, &mut part);
                continue;
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // The poll is inside the unwind guard: an injected
                // chaos panic fires from here.
                if let Some(reason) = ctx.poll(shared.spent.load(Ordering::Relaxed)) {
                    return Err(reason);
                }
                let mut local = Stats::default();
                let out = kernel.compare_bounded(
                    cand,
                    g,
                    gamma,
                    Some((&boxes[cand], &boxes[g])),
                    pair_opts,
                    job.resume,
                    BLOCK_PAIRS_PER_JOB,
                    pair_cache.as_mut(),
                    &mut local,
                );
                Ok((out, local))
            }));
            match attempt {
                Ok(Ok((out, local))) => {
                    // Commit-after-success: a panicked batch's charges die
                    // with its discarded `local`, so retries never
                    // double-charge the budget.
                    shared.spent.fetch_add(local.record_pairs, Ordering::Relaxed);
                    batches += 1;
                    if let Some(rec) = ctx.obs() {
                        let before_cursor = job.resume.map_or(0, |t| t.cursor);
                        let after_cursor = match &out {
                            BoundedCompare::Pending(t) => Some(t.cursor),
                            // A cache hit served the verdict without
                            // running blocks; its cursor is not this
                            // batch's work.
                            BoundedCompare::Decided { tally: Some(t), .. }
                                if local.cache_hits == 0 =>
                            {
                                Some(t.cursor)
                            }
                            BoundedCompare::Decided { .. } => None,
                        };
                        if let Some(after) = after_cursor {
                            rec.observe(Hist::BatchBlockPairs, after.saturating_sub(before_cursor));
                        }
                        PairDeltas::before(&Stats::default()).observe_to(rec, &local);
                    }
                    stats.merge(&local);
                    match out {
                        BoundedCompare::Decided { mut verdict, .. } => {
                            ctx.corrupt_verdict(&mut verdict, local.record_pairs);
                            if verdict.forward.dominates() {
                                shared.dominated[g].store(true, Ordering::Release);
                            }
                            shared.finish_pair(g, &mut part);
                        }
                        BoundedCompare::Pending(tally) => {
                            lock(&shared.queue).push_back(PairJob {
                                idx: job.idx,
                                resume: Some(tally),
                                attempts: job.attempts,
                            });
                        }
                    }
                }
                Ok(Err(reason)) => {
                    shared.flag_interrupt(reason);
                    break 'outer;
                }
                Err(_panic) => {
                    // The worker's cache may have been abandoned mid-update;
                    // drop it rather than trust it. The job's resume tally
                    // is a value captured before the batch and stays sound.
                    pair_cache = kernel.prepared().map(|_| PairCache::new());
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(rec) = ctx.obs() {
                        rec.event(
                            "retry",
                            track,
                            shared.tick_now(),
                            &[
                                ("group", crate::num::wide(g)),
                                ("pair", crate::num::wide(job.idx)),
                                ("attempt", u64::from(job.attempts)),
                            ],
                        );
                        rec.dump("worker_retry");
                    }
                    job.attempts += 1;
                    if job.attempts >= MAX_PAIR_ATTEMPTS {
                        let mut fatal = lock(&shared.fatal);
                        if fatal.is_none() {
                            *fatal = Some(Error::WorkerPanicked { worker: wid, chunk: job.idx });
                        }
                        break 'outer;
                    }
                    lock(&shared.queue).push_back(job);
                    if shared.try_quarantine() {
                        shared.quarantined.fetch_add(1, Ordering::Relaxed);
                        if let Some(rec) = ctx.obs() {
                            rec.event("quarantine", track, shared.tick_now(), &[]);
                            rec.dump("worker_quarantine");
                        }
                        break 'outer;
                    }
                    // Last active worker: keep going and self-retry.
                    continue 'outer;
                }
            }
        }
        if let Some(rec) = ctx.obs() {
            rec.span_end(
                worker_span,
                shared.tick_now(),
                &[("batches", batches), ("record_pairs", stats.record_pairs)],
            );
        }
        (part, stats)
    };

    let mut parts: Vec<(Vec<(GroupId, Status)>, Stats)> = Vec::with_capacity(workers);
    if workers == 1 {
        parts.push(worker(0));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for wid in 0..workers {
                let worker = &worker;
                handles.push(scope.spawn(move || worker(wid)));
            }
            for (wid, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(part) => parts.push(part),
                    Err(_panic) => {
                        // A panic outside the per-group unwind guard (all
                        // interesting panics are inside it); treat as fatal
                        // rather than re-raising.
                        let mut fatal = lock(&shared.fatal);
                        if fatal.is_none() {
                            *fatal = Some(Error::WorkerPanicked { worker: wid, chunk: n });
                        }
                    }
                }
            }
        });
    }

    if let Some(err) = lock(&shared.fatal).take() {
        return Err(err);
    }

    let mut stats = setup_stats;
    let mut statuses: Vec<Option<Status>> = vec![None; n];
    for (g, status) in upfront {
        statuses[g] = Some(status);
    }
    for (part, part_stats) in parts {
        stats.merge(&part_stats);
        for (g, status) in part {
            statuses[g] = Some(status);
        }
    }
    stats.worker_retries += shared.retries.load(Ordering::Acquire);
    stats.workers_quarantined += shared.quarantined.load(Ordering::Acquire);

    // Parallel runs bypass `run_on`, so this is their (single) stats dump;
    // together with the one in `run_on` it keeps trace counters equal to
    // the `Stats` of the corresponding plain run.
    if let Some(rec) = ctx.obs() {
        stats.record_to(rec);
        rec.span_end(
            parallel_span,
            Stamp::tick(stats.record_pairs),
            &[
                ("workers", crate::num::wide(workers)),
                ("group_pairs", stats.group_pairs),
                ("record_pairs", stats.record_pairs),
            ],
        );
    }

    let reason = shared.interrupt_reason();
    let missing = statuses.iter().any(Option::is_none);
    if reason.is_none() && !missing {
        let skyline = statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(Status::Live))
            .map(|(g, _)| g)
            .collect();
        return Ok(Outcome::Complete(SkylineResult { skyline, stats }));
    }
    // Interrupted (or, defensively, groups went missing without a recorded
    // reason — impossible by the loop's termination conditions, but mapped
    // to a cancellation rather than a wrong Complete). A Live status means
    // *all* of the group's candidate pairs finished without a dominator, so
    // it is a proven member; a set dominated flag is a real dominator even
    // when the group's other pairs never ran; everything else stays
    // undecided.
    let reason = reason.unwrap_or(InterruptReason::Cancelled);
    let mut confirmed_in = Vec::new();
    let mut confirmed_out = Vec::new();
    let mut undecided = Vec::new();
    for (g, status) in statuses.iter().enumerate() {
        match status {
            Some(Status::Live) => confirmed_in.push(g),
            Some(_) => confirmed_out.push(g),
            None if shared.dominated[g].load(Ordering::Acquire) => confirmed_out.push(g),
            None => undecided.push(g),
        }
    }
    Ok(Outcome::Interrupted {
        reason,
        partial: AnytimeResult { confirmed_in, confirmed_out, undecided, stats, checkpoint: None },
    })
}

/// The static strided scheduler (ablation baseline): no retry, no
/// quarantine, no context.
fn run_strided(kernel: &Kernel<'_>, gamma: Gamma, threads: usize) -> Result<SkylineResult> {
    let ds = kernel.dataset();
    let threads = threads.max(1);
    let n = ds.n_groups();
    let mut owned_boxes = None;
    let boxes = super::kernel_boxes(kernel, &mut owned_boxes);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };
    let ctx = RunContext::unlimited();

    if threads == 1 {
        let mut stats = Stats::default();
        let mut candidates = Vec::new();
        let mut no_cache = None;
        let statuses: Vec<Status> = (0..n)
            .map(|g| {
                scan_group(
                    kernel,
                    &tree,
                    boxes,
                    gamma,
                    pair_opts,
                    &ctx,
                    g,
                    &mut candidates,
                    &mut no_cache,
                    &mut stats,
                )
            })
            .collect();
        return Ok(super::collect_result(&statuses, stats));
    }

    let mut all: Vec<(Vec<(GroupId, Status)>, Stats)> = Vec::with_capacity(threads);
    let mut first_panic: Option<usize> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads.min(n) {
            let ctx = &ctx;
            let tree = &tree;
            handles.push(scope.spawn(move || {
                let mut stats = Stats::default();
                let mut candidates = Vec::new();
                let mut no_cache = None;
                let mut part: Vec<(GroupId, Status)> = Vec::new();
                for g in (t..n).step_by(threads) {
                    let status = scan_group(
                        kernel,
                        tree,
                        boxes,
                        gamma,
                        pair_opts,
                        ctx,
                        g,
                        &mut candidates,
                        &mut no_cache,
                        &mut stats,
                    );
                    part.push((g, status));
                }
                (part, stats)
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(part) => all.push(part),
                Err(_panic) => first_panic = first_panic.or(Some(t)),
            }
        }
    });
    if let Some(worker) = first_panic {
        return Err(Error::WorkerPanicked { worker, chunk: worker });
    }

    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    for (part, part_stats) in all {
        stats.merge(&part_stats);
        for (g, st) in part {
            statuses[g] = st;
        }
    }
    Ok(super::collect_result(&statuses, stats))
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn parallel_matches_oracle_on_movies() {
        let ds = movie_directors();
        for threads in [1, 2, 4] {
            let result = parallel_skyline(&ds, Gamma::DEFAULT, threads).unwrap();
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(result.skyline, oracle.skyline, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_oracle_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(25, 6, 4, 4000 + seed);
            for gamma in [0.5, 0.9] {
                let gamma = Gamma::new(gamma).unwrap();
                let result = parallel_skyline(&ds, gamma, 4).unwrap();
                let oracle = naive_skyline(&ds, gamma);
                assert_eq!(result.skyline, oracle.skyline, "seed={seed}");
            }
        }
    }

    #[test]
    fn strided_and_chunked_schedulers_agree() {
        for seed in 0..5 {
            let ds = random_dataset(30, 5, 3, 8000 + seed);
            let chunked = parallel_skyline(&ds, Gamma::DEFAULT, 3).unwrap();
            let strided = parallel_skyline_strided(&ds, Gamma::DEFAULT, 3).unwrap();
            assert_eq!(chunked.skyline, strided.skyline, "seed={seed}");
        }
    }

    #[test]
    fn blocked_kernel_matches_oracle_in_parallel() {
        for seed in 0..5 {
            let ds = random_dataset(20, 10, 3, 8100 + seed);
            let result =
                parallel_skyline_with(&ds, Gamma::DEFAULT, 4, KernelConfig::blocked()).unwrap();
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(result.skyline, oracle.skyline, "seed={seed}");
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let ds = movie_directors();
        let result = parallel_skyline(&ds, Gamma::DEFAULT, 0).unwrap();
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
    }

    #[test]
    fn more_threads_than_groups_is_fine() {
        let ds = random_dataset(3, 4, 2, 7);
        let result = parallel_skyline(&ds, Gamma::DEFAULT, 16).unwrap();
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
    }

    #[test]
    fn budget_exhaustion_returns_sound_partial() {
        for threads in [1, 3] {
            let ds = random_dataset(25, 8, 3, 4100);
            let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
            let ctx = RunContext::with_budget(40);
            let outcome =
                parallel_skyline_ctx(&ds, Gamma::DEFAULT, threads, KernelConfig::Exhaustive, &ctx)
                    .unwrap();
            let Outcome::Interrupted { reason, partial } = outcome else {
                panic!("tiny budget completed");
            };
            assert_eq!(reason, InterruptReason::BudgetExhausted);
            for g in &partial.confirmed_in {
                assert!(oracle.contains(g), "threads={threads}: {g} wrongly confirmed in");
            }
            for g in &partial.confirmed_out {
                assert!(!oracle.contains(g), "threads={threads}: {g} wrongly confirmed out");
            }
            let total =
                partial.confirmed_in.len() + partial.confirmed_out.len() + partial.undecided.len();
            assert_eq!(total, ds.n_groups());
        }
    }

    #[test]
    fn cancellation_interrupts_the_run() {
        let ds = random_dataset(20, 6, 3, 4200);
        let ctx = RunContext::unlimited();
        ctx.cancel_token().cancel();
        let outcome =
            parallel_skyline_ctx(&ds, Gamma::DEFAULT, 2, KernelConfig::Exhaustive, &ctx).unwrap();
        assert_eq!(outcome.interrupt_reason(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn unlimited_ctx_outcome_is_complete_and_exact() {
        let ds = random_dataset(15, 5, 3, 4300);
        let outcome = parallel_skyline_ctx(
            &ds,
            Gamma::DEFAULT,
            4,
            KernelConfig::blocked(),
            &RunContext::unlimited(),
        )
        .unwrap();
        assert!(outcome.is_complete());
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(outcome.unwrap_or_partial().skyline, oracle.skyline);
    }
}
