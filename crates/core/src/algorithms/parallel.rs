//! Parallel aggregate skyline (an extension beyond the paper).
//!
//! Membership of each group is independent of the others' membership:
//! `R ∈ Sky_γ ⟺ ∄S: S ≻_γ R`. That makes a per-group "find my dominator"
//! scan embarrassingly parallel, at the cost of giving up cross-pair
//! sharing (each ordered pair may be examined once instead of each
//! unordered pair). Candidate dominators are still pruned with the same
//! spatial window as Algorithm 5, and each candidate comparison uses the
//! stopping rule in one-directional mode.

use super::{SkylineResult, Status};
use crate::dataset::{GroupId, GroupedDataset};
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::paircount::{compare_groups, PairOptions};
use crate::stats::Stats;
use aggsky_spatial::{Aabb, RTree};

/// Computes the aggregate skyline with `threads` worker threads.
///
/// Always returns the exact skyline (it is a parallelization of the naive
/// definition with index-based candidate pruning, not of the heuristic
/// Algorithm 3). `threads = 1` degenerates to a sequential scan and is
/// useful for ablation.
pub fn parallel_skyline(ds: &GroupedDataset, gamma: Gamma, threads: usize) -> SkylineResult {
    let threads = threads.max(1);
    let n = ds.n_groups();
    let boxes = Mbb::of_all_groups(ds);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };

    let process = |g1: GroupId, candidates: &mut Vec<GroupId>, stats: &mut Stats| -> Status {
        tree.window_query_into(&Aabb::at_least(&boxes[g1].min), candidates);
        stats.index_candidates += candidates.len().saturating_sub(1) as u64;
        for &g2 in candidates.iter() {
            if g2 == g1 {
                continue;
            }
            let verdict = compare_groups(
                ds,
                g2,
                g1,
                gamma,
                Some((&boxes[g2], &boxes[g1])),
                pair_opts,
                stats,
            );
            if verdict.forward.dominates() {
                return Status::Dominated;
            }
        }
        Status::Live
    };

    if threads == 1 {
        let mut stats = Stats::default();
        let mut candidates = Vec::new();
        let statuses: Vec<Status> =
            (0..n).map(|g| process(g, &mut candidates, &mut stats)).collect();
        return super::collect_result(&statuses, stats);
    }

    let mut all: Vec<(Vec<(GroupId, Status)>, Stats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads.min(n) {
            let process = &process;
            // Strided assignment balances the work: expensive (large,
            // dominated-late) groups tend to cluster by id, so contiguous
            // chunks would leave some workers idle.
            handles.push(scope.spawn(move || {
                let mut stats = Stats::default();
                let mut candidates = Vec::new();
                let part: Vec<(GroupId, Status)> = (t..n)
                    .step_by(threads)
                    .map(|g| (g, process(g, &mut candidates, &mut stats)))
                    .collect();
                (part, stats)
            }));
        }
        for h in handles {
            all.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    for (part, part_stats) in all {
        stats.merge(&part_stats);
        for (g, st) in part {
            statuses[g] = st;
        }
    }
    super::collect_result(&statuses, stats)
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn parallel_matches_oracle_on_movies() {
        let ds = movie_directors();
        for threads in [1, 2, 4] {
            let result = parallel_skyline(&ds, Gamma::DEFAULT, threads);
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(result.skyline, oracle.skyline, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_oracle_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(25, 6, 4, 4000 + seed);
            for gamma in [0.5, 0.9] {
                let gamma = Gamma::new(gamma).unwrap();
                let result = parallel_skyline(&ds, gamma, 4);
                let oracle = naive_skyline(&ds, gamma);
                assert_eq!(result.skyline, oracle.skyline, "seed={seed}");
            }
        }
    }

    #[test]
    fn more_threads_than_groups_is_fine() {
        let ds = random_dataset(3, 4, 2, 7);
        let result = parallel_skyline(&ds, Gamma::DEFAULT, 16);
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
    }
}
