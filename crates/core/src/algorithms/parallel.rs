//! Parallel aggregate skyline (an extension beyond the paper).
//!
//! Membership of each group is independent of the others' membership:
//! `R ∈ Sky_γ ⟺ ∄S: S ≻_γ R`. That makes a per-group "find my dominator"
//! scan embarrassingly parallel, at the cost of giving up cross-pair
//! sharing (each ordered pair may be examined once instead of each
//! unordered pair). Candidate dominators are still pruned with the same
//! spatial window as Algorithm 5, and each candidate comparison uses the
//! stopping rule in one-directional mode.
//!
//! Work is distributed with an atomic-counter chunk scheduler: workers grab
//! the next chunk of group ids whenever they finish one, so a few expensive
//! groups (large, or dominated late) cannot strand the other workers the
//! way a static partition can. The previous static strided partition is
//! kept as [`parallel_skyline_strided`] for ablation benchmarks.

use super::{SkylineResult, Status};
use crate::dataset::{GroupId, GroupedDataset};
use crate::gamma::Gamma;
use crate::kernel::{Kernel, KernelConfig};
use crate::paircount::PairOptions;
use crate::stats::Stats;
use aggsky_spatial::{Aabb, RTree};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "use all available
/// hardware parallelism" (falling back to 1 when it cannot be queried).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Computes the aggregate skyline with `threads` worker threads
/// (`threads = 0` uses [`resolve_threads`]) and dynamic chunk scheduling.
///
/// Always returns the exact skyline (it is a parallelization of the naive
/// definition with index-based candidate pruning, not of the heuristic
/// Algorithm 3). `threads = 1` degenerates to a sequential scan and is
/// useful for ablation.
pub fn parallel_skyline(ds: &GroupedDataset, gamma: Gamma, threads: usize) -> SkylineResult {
    parallel_skyline_with(ds, gamma, threads, KernelConfig::Exhaustive)
}

/// [`parallel_skyline`] with an explicit counting kernel; the preparation
/// (when blocked) is built once and shared by all workers.
pub fn parallel_skyline_with(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
    config: KernelConfig,
) -> SkylineResult {
    let kernel = Kernel::new(ds, config);
    run(&kernel, gamma, resolve_threads(threads), Scheduler::Chunked)
}

/// The pre-work-stealing scheduler: a static strided partition (worker `t`
/// of `T` processes groups `t, t+T, t+2T, …`). Retained solely so the
/// benchmarks can measure what dynamic chunk scheduling buys; new callers
/// should use [`parallel_skyline`].
pub fn parallel_skyline_strided(
    ds: &GroupedDataset,
    gamma: Gamma,
    threads: usize,
) -> SkylineResult {
    let kernel = Kernel::new(ds, KernelConfig::Exhaustive);
    run(&kernel, gamma, resolve_threads(threads), Scheduler::Strided)
}

#[derive(Clone, Copy)]
enum Scheduler {
    Chunked,
    Strided,
}

fn run(kernel: &Kernel<'_>, gamma: Gamma, threads: usize, scheduler: Scheduler) -> SkylineResult {
    let ds = kernel.dataset();
    let threads = threads.max(1);
    let n = ds.n_groups();
    let mut owned_boxes = None;
    let boxes = super::kernel_boxes(kernel, &mut owned_boxes);
    let tree = RTree::bulk_load(
        ds.dim(),
        boxes.iter().enumerate().map(|(g, b)| (Aabb::point(&b.max), g)).collect(),
    );
    let pair_opts = PairOptions { stop_rule: true, need_bar: false, corrected_bar: false };

    let process = |g1: GroupId, candidates: &mut Vec<GroupId>, stats: &mut Stats| -> Status {
        tree.window_query_into(&Aabb::at_least(&boxes[g1].min), candidates);
        stats.index_candidates += crate::num::wide(candidates.len().saturating_sub(1));
        for &g2 in candidates.iter() {
            if g2 == g1 {
                continue;
            }
            let verdict =
                kernel.compare(g2, g1, gamma, Some((&boxes[g2], &boxes[g1])), pair_opts, stats);
            if verdict.forward.dominates() {
                return Status::Dominated;
            }
        }
        Status::Live
    };

    if threads == 1 {
        let mut stats = Stats::default();
        let mut candidates = Vec::new();
        let statuses: Vec<Status> =
            (0..n).map(|g| process(g, &mut candidates, &mut stats)).collect();
        return super::collect_result(&statuses, stats);
    }

    // Chunk size trades scheduling overhead (one fetch_add per chunk)
    // against load balance (smaller chunks spread stragglers better);
    // aiming for ~8 chunks per worker keeps both negligible.
    let chunk = (n / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);
    let mut all: Vec<(Vec<(GroupId, Status)>, Stats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads.min(n) {
            let process = &process;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut stats = Stats::default();
                let mut candidates = Vec::new();
                let mut part: Vec<(GroupId, Status)> = Vec::new();
                match scheduler {
                    Scheduler::Chunked => loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for g in start..(start + chunk).min(n) {
                            part.push((g, process(g, &mut candidates, &mut stats)));
                        }
                    },
                    Scheduler::Strided => {
                        for g in (t..n).step_by(threads) {
                            part.push((g, process(g, &mut candidates, &mut stats)));
                        }
                    }
                }
                (part, stats)
            }));
        }
        for h in handles {
            // A worker can only fail by panicking; re-raise its payload on
            // the caller's thread instead of aborting with a second panic
            // message that hides the original.
            match h.join() {
                Ok(part) => all.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    for (part, part_stats) in all {
        stats.merge(&part_stats);
        for (g, st) in part {
            statuses[g] = st;
        }
    }
    super::collect_result(&statuses, stats)
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn parallel_matches_oracle_on_movies() {
        let ds = movie_directors();
        for threads in [1, 2, 4] {
            let result = parallel_skyline(&ds, Gamma::DEFAULT, threads);
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(result.skyline, oracle.skyline, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_oracle_on_random_data() {
        for seed in 0..10 {
            let ds = random_dataset(25, 6, 4, 4000 + seed);
            for gamma in [0.5, 0.9] {
                let gamma = Gamma::new(gamma).unwrap();
                let result = parallel_skyline(&ds, gamma, 4);
                let oracle = naive_skyline(&ds, gamma);
                assert_eq!(result.skyline, oracle.skyline, "seed={seed}");
            }
        }
    }

    #[test]
    fn strided_and_chunked_schedulers_agree() {
        for seed in 0..5 {
            let ds = random_dataset(30, 5, 3, 8000 + seed);
            let chunked = parallel_skyline(&ds, Gamma::DEFAULT, 3);
            let strided = parallel_skyline_strided(&ds, Gamma::DEFAULT, 3);
            assert_eq!(chunked.skyline, strided.skyline, "seed={seed}");
        }
    }

    #[test]
    fn blocked_kernel_matches_oracle_in_parallel() {
        for seed in 0..5 {
            let ds = random_dataset(20, 10, 3, 8100 + seed);
            let result = parallel_skyline_with(&ds, Gamma::DEFAULT, 4, KernelConfig::blocked());
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(result.skyline, oracle.skyline, "seed={seed}");
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let ds = movie_directors();
        let result = parallel_skyline(&ds, Gamma::DEFAULT, 0);
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
    }

    #[test]
    fn more_threads_than_groups_is_fine() {
        let ds = random_dataset(3, 4, 2, 7);
        let result = parallel_skyline(&ds, Gamma::DEFAULT, 16);
        let oracle = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, oracle.skyline);
    }
}
