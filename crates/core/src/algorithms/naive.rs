//! The unoptimized oracle: exhaustive pair counting, no stopping rule, no
//! pruning of any kind.

use super::{collect_result, interrupted, SkylineResult, Status};
use crate::dataset::GroupedDataset;
use crate::gamma::{domination_probability, Gamma};
use crate::runctx::{Outcome, RunContext};
use crate::stats::Stats;

/// Computes the aggregate skyline by exhaustively evaluating
/// `p(S ≻ R)` for every ordered pair of groups (Definition 2 applied
/// literally). `O(n² · m²)` record comparisons for `n` groups of `m`
/// records; used as the correctness oracle for every optimized algorithm.
pub fn naive_skyline(ds: &GroupedDataset, gamma: Gamma) -> SkylineResult {
    naive_skyline_ctx(ds, gamma, &RunContext::unlimited()).unwrap_or_partial()
}

/// [`naive_skyline`] under an execution-control context. The oracle visits
/// *dominators* in its outer loop, so no group's dominator scan is complete
/// before the whole run is: an interrupted naive run confirms groups out
/// (found dominators are real) but never in.
pub(super) fn naive_skyline_ctx(ds: &GroupedDataset, gamma: Gamma, ctx: &RunContext) -> Outcome {
    let n = ds.n_groups();
    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    for s in 0..n {
        for r in 0..n {
            if s == r {
                continue;
            }
            if let Some(reason) = ctx.poll(stats.record_pairs) {
                return interrupted(&statuses, |_| false, stats, reason);
            }
            stats.group_pairs += 1;
            stats.record_pairs += crate::num::pair_product(ds.group_len(s), ds.group_len(r));
            let p = domination_probability(ds, s, r);
            if gamma.dominated(p) {
                if let Some(status) = statuses.get_mut(r) {
                    status.raise(Status::Dominated);
                }
            }
        }
    }
    Outcome::Complete(collect_result(&statuses, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;
    use crate::testdata::movie_directors;

    #[test]
    fn paper_running_example_figure_4b() {
        // The Figure 1 movie table grouped by director. The paper's
        // Figure 4(b) gives the aggregate skyline:
        // {Coppola, Jackson, Kershner, Tarantino}.
        let ds = movie_directors();
        let result = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(
            ds.sorted_labels(&result.skyline),
            vec!["Coppola", "Jackson", "Kershner", "Tarantino"]
        );
    }

    #[test]
    fn singleton_universe_is_its_own_skyline() {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("only", &[vec![1.0, 1.0]]).unwrap();
        let ds = b.build().unwrap();
        let result = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, vec![0]);
        assert_eq!(result.stats.group_pairs, 0);
    }

    #[test]
    fn equal_groups_are_mutually_incomparable() {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("a", &[vec![1.0, 1.0]]).unwrap();
        b.push_group("b", &[vec![1.0, 1.0]]).unwrap();
        let ds = b.build().unwrap();
        let result = naive_skyline(&ds, Gamma::DEFAULT);
        assert_eq!(result.skyline, vec![0, 1]);
    }

    #[test]
    fn larger_gamma_never_shrinks_the_skyline() {
        let ds = movie_directors();
        let mut prev = naive_skyline(&ds, Gamma::DEFAULT).skyline.len();
        for g in [0.6, 0.7, 0.8, 0.9, 1.0] {
            let cur = naive_skyline(&ds, Gamma::new(g).unwrap()).skyline.len();
            assert!(cur >= prev, "skyline shrank from {prev} to {cur} at gamma {g}");
            prev = cur;
        }
    }
}
