//! TR and SI: the transitive algorithm (Algorithm 3) and its sorted-access
//! variant (Algorithm 4).

use super::nested_loop::split_two;
use super::{
    apply_verdict, build_order, collect_result, interrupted, kernel_boxes, AlgoOptions, PairDeltas,
    Pruning, SkylineResult, Status,
};
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::Result;
use crate::kernel::Kernel;
use crate::mbb::Mbb;
use crate::paircache::PairCache;
use crate::paircount::PairOptions;
use crate::runctx::{Outcome, RunContext};
use crate::stats::Stats;

/// TR: nested loop with weak-transitivity pruning (Algorithm 3), visiting
/// groups in insertion order.
pub fn transitive(ds: &GroupedDataset, opts: &AlgoOptions) -> Result<SkylineResult> {
    let kernel = Kernel::new(ds, opts.kernel)?;
    Ok(transitive_on(&kernel, opts, &RunContext::unlimited(), None).unwrap_or_partial())
}

/// [`transitive`] over a pre-built kernel.
pub(super) fn transitive_on(
    kernel: &Kernel<'_>,
    opts: &AlgoOptions,
    ctx: &RunContext,
    cache: Option<&mut PairCache>,
) -> Outcome {
    let ds = kernel.dataset();
    let mut owned_boxes = None;
    let boxes = opts.bbox_prune.then(|| kernel_boxes(kernel, &mut owned_boxes));
    let order: Vec<GroupId> = ds.group_ids().collect();
    run_pairwise(kernel, opts, &order, boxes, ctx, cache)
}

/// SI: the sorted variant (Algorithm 4). Groups are visited in the order of
/// `opts.sort` (the paper's evaluation sorts by group size and the distance
/// of the MBB minimum corner from the origin); otherwise identical to TR.
pub fn sorted(ds: &GroupedDataset, opts: &AlgoOptions) -> Result<SkylineResult> {
    let kernel = Kernel::new(ds, opts.kernel)?;
    Ok(sorted_on(&kernel, opts, &RunContext::unlimited(), None).unwrap_or_partial())
}

/// [`sorted`] over a pre-built kernel.
pub(super) fn sorted_on(
    kernel: &Kernel<'_>,
    opts: &AlgoOptions,
    ctx: &RunContext,
    cache: Option<&mut PairCache>,
) -> Outcome {
    let ds = kernel.dataset();
    let mut owned_boxes = None;
    let boxes = kernel_boxes(kernel, &mut owned_boxes);
    let order = build_order(ds, boxes, opts.sort);
    let boxes_opt = opts.bbox_prune.then_some(boxes);
    run_pairwise(kernel, opts, &order, boxes_opt, ctx, cache)
}

/// The Algorithm 3 loop over an arbitrary visiting order, polling `ctx`
/// before every group-pair comparison.
pub(super) fn run_pairwise(
    kernel: &Kernel<'_>,
    opts: &AlgoOptions,
    order: &[GroupId],
    boxes: Option<&[Mbb]>,
    ctx: &RunContext,
    mut cache: Option<&mut PairCache>,
) -> Outcome {
    let ds = kernel.dataset();
    let n = ds.n_groups();
    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    // Exact pruning never acts on strong marks, so it uses the cheaper
    // γ-only counting mode (encapsulated in `pair_options`).
    let pair_opts: PairOptions = opts.pruning.pair_options(opts.stop_rule);
    let strong_marks = opts.pruning.uses_strong_marks();
    // Only the Exact discipline is result-preserving, so only it may claim
    // confirmed-in membership for groups whose triangle of comparisons
    // completed; under heuristic pruning a Live group can still be a false
    // survivor, and interruption leaves it undecided.
    let sound = opts.pruning == Pruning::Exact;
    for (i, &g1) in order.iter().enumerate() {
        // Algorithm 3 line 3: a strongly dominated group is skipped
        // entirely.
        if strong_marks && statuses[g1] == Status::StronglyDominated {
            continue;
        }
        for &g2 in &order[i + 1..] {
            if strong_marks {
                // Algorithm 3 lines 10-12.
                if statuses[g2] == Status::StronglyDominated {
                    stats.transitive_skips += 1;
                    continue;
                }
            } else {
                // Sound skip: both sides are already excluded, so this
                // comparison can affect neither membership.
                if statuses[g1] != Status::Live && statuses[g2] != Status::Live {
                    stats.transitive_skips += 1;
                    continue;
                }
            }
            if let Some(reason) = ctx.poll(stats.record_pairs) {
                // A group at a completed outer position has met every other
                // group: later positions in its own iteration, earlier ones
                // in theirs (the Exact discipline never breaks out early).
                let mut done = vec![false; n];
                for &g in order.iter().take(i) {
                    done[g] = true;
                }
                return interrupted(&statuses, |g| sound && done[g], stats, reason);
            }
            let pair_boxes = boxes.map(|b| (&b[g1], &b[g2]));
            let before = PairDeltas::before(&stats);
            let mut verdict = kernel.compare_cached(
                g1,
                g2,
                opts.gamma,
                pair_boxes,
                pair_opts,
                cache.as_deref_mut(),
                &mut stats,
            );
            ctx.corrupt_verdict(&mut verdict, stats.record_pairs);
            before.observe(ctx, &stats);
            let (s1, s2) = split_two(&mut statuses, g1, g2);
            apply_verdict(verdict, s1, s2, opts.pruning);
            // Algorithm 3 line 19: once g1 is strongly dominated, stop
            // processing it.
            if strong_marks && statuses[g1] == Status::StronglyDominated {
                break;
            }
        }
    }
    Outcome::Complete(collect_result(&statuses, stats))
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::super::SortStrategy;
    use super::*;
    use crate::gamma::Gamma;
    use crate::testdata::{movie_directors, random_dataset};

    fn paper(gamma: f64) -> AlgoOptions {
        AlgoOptions::paper(Gamma::new(gamma).unwrap())
    }

    #[test]
    fn transitive_matches_oracle_on_movies() {
        let ds = movie_directors();
        for gamma in [0.5, 0.7, 1.0] {
            let tr = transitive(&ds, &paper(gamma)).unwrap();
            let oracle = naive_skyline(&ds, Gamma::new(gamma).unwrap());
            assert_eq!(tr.skyline, oracle.skyline, "gamma={gamma}");
        }
    }

    #[test]
    fn sorted_matches_oracle_on_movies() {
        let ds = movie_directors();
        for strategy in [
            SortStrategy::InsertionOrder,
            SortStrategy::CornerDistance,
            SortStrategy::SizeThenDistance,
        ] {
            let si = sorted(&ds, &AlgoOptions { sort: strategy, ..paper(0.5) }).unwrap();
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            assert_eq!(si.skyline, oracle.skyline, "{strategy:?}");
        }
    }

    #[test]
    fn exact_pruning_matches_oracle_on_random_data() {
        for seed in 0..20 {
            let ds = random_dataset(15, 8, 3, 1000 + seed);
            for gamma in [0.5, 0.8] {
                let opts = AlgoOptions::exact(Gamma::new(gamma).unwrap());
                let tr = transitive(&ds, &opts).unwrap();
                let si = sorted(&ds, &opts).unwrap();
                let oracle = naive_skyline(&ds, Gamma::new(gamma).unwrap());
                assert_eq!(tr.skyline, oracle.skyline, "TR seed={seed} gamma={gamma}");
                assert_eq!(si.skyline, oracle.skyline, "SI seed={seed} gamma={gamma}");
            }
        }
    }

    #[test]
    fn paper_pruning_matches_oracle_on_random_data() {
        // The printed Algorithm 3 is not provably exact (see module docs of
        // `algorithms`), but on typical data it agrees with the oracle; this
        // guards the implementation against regressions on a broad sample.
        let mut mismatches = 0;
        for seed in 0..20 {
            let ds = random_dataset(15, 8, 3, 2000 + seed);
            let tr = transitive(&ds, &paper(0.5)).unwrap();
            let oracle = naive_skyline(&ds, Gamma::DEFAULT);
            if tr.skyline != oracle.skyline {
                // Any deviation must be a superset (extra survivors), never
                // a lost skyline member.
                for g in &oracle.skyline {
                    assert!(
                        tr.skyline.contains(g),
                        "paper pruning lost skyline group {g} (seed {seed})"
                    );
                }
                mismatches += 1;
            }
        }
        assert!(mismatches <= 2, "paper pruning deviated on {mismatches}/20 random inputs");
    }

    #[test]
    fn transitive_skips_happen_on_chained_data() {
        // Strictly stacked groups: the top group strongly dominates all
        // others, so TR should skip comparisons NL would perform.
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        for level in 0..12 {
            let base = 10.0 * level as f64;
            b.push_group(format!("g{level}"), &[vec![base, base], vec![base + 1.0, base + 1.0]])
                .unwrap();
        }
        let ds = b.build().unwrap();
        let tr = transitive(&ds, &paper(0.5)).unwrap();
        assert_eq!(tr.skyline, vec![11]);
        assert!(tr.stats.group_pairs < 12 * 11 / 2, "no pruning happened");
    }
}
