//! NL: the nested-loop algorithm (Algorithm 2) with the Section 3.3 stop
//! condition.

use super::{
    apply_verdict, collect_result, interrupted, kernel_boxes, AlgoOptions, PairDeltas, Pruning,
    SkylineResult, Status,
};
use crate::dataset::GroupedDataset;
use crate::error::Result;
use crate::kernel::Kernel;
use crate::paircache::PairCache;
use crate::paircount::PairOptions;
use crate::runctx::{Outcome, RunContext};
use crate::stats::Stats;

/// Compares every unordered pair of groups once, resolving both directions
/// per comparison (Algorithm 2). Honors `opts.stop_rule`, `opts.bbox_prune`
/// and `opts.kernel`; ignores `opts.pruning` and `opts.sort` (plain NL never
/// skips a pair and visits groups in insertion order).
pub fn nested_loop(ds: &GroupedDataset, opts: &AlgoOptions) -> Result<SkylineResult> {
    let kernel = Kernel::new(ds, opts.kernel)?;
    Ok(nested_loop_on(&kernel, opts, &RunContext::unlimited(), None).unwrap_or_partial())
}

/// [`nested_loop`] over a pre-built kernel, polling `ctx` before every
/// group-pair comparison and memoizing tallies through `cache` when given.
pub(super) fn nested_loop_on(
    kernel: &Kernel<'_>,
    opts: &AlgoOptions,
    ctx: &RunContext,
    mut cache: Option<&mut PairCache>,
) -> Outcome {
    let n = kernel.dataset().n_groups();
    let mut statuses = vec![Status::Live; n];
    let mut stats = Stats::default();
    let mut owned_boxes = None;
    let boxes = opts.bbox_prune.then(|| kernel_boxes(kernel, &mut owned_boxes));
    // NL never acts on strong (γ̄) marks, so the cheaper γ-only counting
    // mode is used: the stop rule fires as soon as the γ question settles.
    let pair_opts =
        PairOptions { stop_rule: opts.stop_rule, need_bar: false, corrected_bar: false };
    for g1 in 0..n {
        for g2 in (g1 + 1)..n {
            if let Some(reason) = ctx.poll(stats.record_pairs) {
                // Outer iterations before g1 have seen every counterpart
                // (earlier iterations covered their smaller-id pairs), and
                // NL applies exact semantics, so their Live groups are
                // proven members.
                return interrupted(&statuses, |g| g < g1, stats, reason);
            }
            let pair_boxes = boxes.map(|b| (&b[g1], &b[g2]));
            let before = PairDeltas::before(&stats);
            let mut verdict = kernel.compare_cached(
                g1,
                g2,
                opts.gamma,
                pair_boxes,
                pair_opts,
                cache.as_deref_mut(),
                &mut stats,
            );
            ctx.corrupt_verdict(&mut verdict, stats.record_pairs);
            before.observe(ctx, &stats);
            let (left, right) = split_two(&mut statuses, g1, g2);
            apply_verdict(verdict, left, right, Pruning::Exact);
        }
    }
    Outcome::Complete(collect_result(&statuses, stats))
}

/// Borrows two distinct slots of a slice mutably.
pub(super) fn split_two(s: &mut [Status], i: usize, j: usize) -> (&mut Status, &mut Status) {
    debug_assert!(i != j);
    if i < j {
        let (a, b) = s.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = s.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

#[cfg(test)]
mod tests {
    use super::super::naive::naive_skyline;
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;
    use crate::gamma::Gamma;

    fn opts(gamma: f64) -> AlgoOptions {
        AlgoOptions::paper(Gamma::new(gamma).unwrap())
    }

    #[test]
    fn matches_oracle_on_movie_example() {
        let ds = crate::testdata::movie_directors();
        for gamma in [0.5, 0.6, 0.75, 0.9, 1.0] {
            let nl = nested_loop(&ds, &opts(gamma)).unwrap();
            let oracle = naive_skyline(&ds, Gamma::new(gamma).unwrap());
            assert_eq!(nl.skyline, oracle.skyline, "gamma={gamma}");
        }
    }

    #[test]
    fn stop_rule_reduces_record_comparisons() {
        // Stacked groups: each strictly dominates the next; early stopping
        // should certify domination quickly.
        let mut b = GroupedDatasetBuilder::new(2);
        for level in 0..10 {
            let base = 100.0 * level as f64;
            let rows: Vec<Vec<f64>> =
                (0..20).map(|i| vec![base + i as f64 * 0.1, base + 1.0]).collect();
            b.push_group(format!("g{level}"), &rows).unwrap();
        }
        let ds = b.build().unwrap();
        let with = nested_loop(&ds, &opts(0.5)).unwrap();
        let without = nested_loop(&ds, &AlgoOptions { stop_rule: false, ..opts(0.5) }).unwrap();
        assert_eq!(with.skyline, without.skyline);
        assert!(
            with.stats.record_pairs < without.stats.record_pairs,
            "stop rule saved nothing: {} vs {}",
            with.stats.record_pairs,
            without.stats.record_pairs
        );
        assert_eq!(with.skyline, vec![9]);
    }

    #[test]
    fn bbox_pruning_preserves_result() {
        let ds = crate::testdata::movie_directors();
        let plain = nested_loop(&ds, &opts(0.5)).unwrap();
        let boxed = nested_loop(&ds, &AlgoOptions { bbox_prune: true, ..opts(0.5) }).unwrap();
        assert_eq!(plain.skyline, boxed.skyline);
        assert!(boxed.stats.record_pairs <= plain.stats.record_pairs);
    }

    #[test]
    fn split_two_borrows_correct_slots() {
        let mut s = vec![Status::Live; 3];
        {
            let (a, b) = split_two(&mut s, 2, 0);
            a.raise(Status::Dominated);
            b.raise(Status::StronglyDominated);
        }
        assert_eq!(s, vec![Status::StronglyDominated, Status::Live, Status::Dominated]);
    }
}
