//! Incremental aggregate-skyline maintenance (an extension beyond the
//! paper, motivated by its Property 2: small updates change domination
//! probabilities by bounded amounts, so recomputing everything from scratch
//! on every insert is wasteful).
//!
//! # Structure
//!
//! [`DynamicAggregateSkyline`] separates each group into a **base** record
//! set — whose exact pairwise tallies `|S ≻ R|` are memoized in a revisable
//! [`PairCache`] — and a small **pending** delta buffer of inserts and
//! deletes not yet folded into the base. Edits are O(1): they only grow the
//! buffer. The kernel cost is paid when a group's deltas are *folded*:
//! every touched pair is recounted through [`Kernel::compare_bounded`]
//! against a per-group mini lane-block preparation of the delta records, so
//! folding group `R` costs `O(|R_Δ| · Σ|S|)` kernel ticks — charged to
//! [`Stats`], pollable through [`RunContext`], and mirrored to the
//! observability counters.
//!
//! # The Property-2 defer-recompute rule
//!
//! Tallies are order-independent counts, so a pending buffer bounds how far
//! any `p(S ≻ R)` can have drifted from its memoized base value: with
//! `D`/`I` pending deletes/inserts the true dominating-pair count lies in
//! the closed interval
//!
//! ```text
//! [ n_base − D_S·|R_base| − D_R·|S_base| ,  n_base + I_S·|R_cur| + I_R·|S_cur| ]
//! ```
//!
//! clamped to `[0, |S_cur|·|R_cur|]` — exactly the paper's `γ(1±ε)`
//! stability envelope composed over the buffered edits. While both interval
//! endpoints fall on the same side of γ the pair's verdict is *provably*
//! unchanged and no recounting happens ([`Counter::DynDeferred`]); only a
//! pair whose interval straddles γ forces its groups to fold
//! ([`Counter::DynFlushedPairs`], plus a `dyn_forced_flush` flight-recorder
//! event). Queries stay exact: deferral skips work only when the skyline
//! verdict cannot depend on it.
//!
//! [`Counter::DynDeferred`]: aggsky_obs::Counter::DynDeferred
//! [`Counter::DynFlushedPairs`]: aggsky_obs::Counter::DynFlushedPairs

use crate::dataset::{GroupId, GroupedDataset, GroupedDatasetBuilder, MAX_GROUP_LEN};
use crate::error::{Error, Result};
use crate::gamma::Gamma;
use crate::kernel::{BoundedCompare, Kernel, KernelConfig};
use crate::paircache::PairCache;
use crate::paircount::PairOptions;
use crate::prepared::{PreparedDataset, MAX_LANE_BLOCK};
use crate::runctx::{InterruptReason, RunContext};
use crate::stats::Stats;
use aggsky_obs::{Counter as ObsCounter, Stamp};

/// Full-count options for delta recounts: tallies must be complete, so the
/// stopping rule and the γ̄ refinements are irrelevant.
const COUNT_OPTS: PairOptions =
    PairOptions { stop_rule: false, need_bar: false, corrected_bar: false };

/// Outcome of one [`DynamicAggregateSkyline::skyline_ctx`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynSkyline {
    /// The aggregate skyline among currently non-empty groups, ascending by
    /// group id. Exact when `interrupted` is `None`; on an interrupt the
    /// result is the optimistic partial (undecidable groups stay in, the
    /// anytime convention), and must not be treated as certified.
    pub groups: Vec<GroupId>,
    /// Ordered pairs involving pending edits whose verdict was served from
    /// the Property-2 drift interval without recounting.
    pub deferred_pairs: u64,
    /// Unordered pair tallies recomputed through the kernel because a drift
    /// interval crossed γ.
    pub flushed_pairs: u64,
    /// `Some` when the context's budget or cancellation stopped folding
    /// before every pair could be decided.
    pub interrupted: Option<InterruptReason>,
}

/// Outcome of folding pending deltas (see
/// [`DynamicAggregateSkyline::flush_ctx`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushReport {
    /// Unordered pair tallies revised through the kernel.
    pub flushed_pairs: u64,
    /// `Some` when the fold stopped early; the interrupted group's deltas
    /// stay pending (folds are all-or-nothing per group, so tallies remain
    /// consistent and the fold is exactly resumable).
    pub interrupted: Option<InterruptReason>,
}

/// Result of one delta recount, separating real counts from an interrupt.
enum Counted {
    Done(u64, u64),
    Stopped(InterruptReason),
}

/// A mutable collection of groups with incrementally-maintained pairwise
/// domination tallies and Property-2 deferral of recomputation.
///
/// ```
/// use aggsky_core::dynamic::DynamicAggregateSkyline;
/// use aggsky_core::Gamma;
///
/// let mut dyn_sky = DynamicAggregateSkyline::new(2);
/// let t = dyn_sky.add_group("Tarantino");
/// let w = dyn_sky.add_group("Wiseau");
/// dyn_sky.insert(t, &[557.0, 9.0]).unwrap();
/// dyn_sky.insert(w, &[10.0, 3.2]).unwrap();
/// assert_eq!(dyn_sky.skyline(Gamma::DEFAULT).unwrap(), vec![t]);
/// // A surprise hit makes Wiseau incomparable-in-part...
/// dyn_sky.insert(w, &[600.0, 2.0]).unwrap();
/// assert_eq!(dyn_sky.skyline(Gamma::DEFAULT).unwrap(), vec![t, w]);
/// ```
#[derive(Debug)]
pub struct DynamicAggregateSkyline {
    dim: usize,
    /// Kernel strategy for delta recounts (never `Exhaustive`; a prepared
    /// kernel is what makes `compare_bounded` return complete tallies).
    kernel: KernelConfig,
    labels: Vec<String>,
    /// Folded per-group record storage (row-major); the sets the memoized
    /// tallies are exact over.
    base: Vec<Vec<f64>>,
    /// Pending inserts per group (row-major), not yet folded.
    pending_ins: Vec<Vec<f64>>,
    /// Base row indices pending deletion, ascending, not yet folded.
    pending_del: Vec<Vec<usize>>,
    /// Exact complete tallies over base×base in canonical orientation.
    /// Invariant: an entry exists for `{a, b}` iff both base sets are
    /// non-empty, and it is complete (`checked == total`).
    tallies: PairCache,
    /// Cumulative kernel work across all maintenance counting.
    stats: Stats,
}

impl DynamicAggregateSkyline {
    /// Creates an empty collection of `dim`-dimensional records (all
    /// dimensions MAX preference; negate values for MIN dimensions), using
    /// the default columnar kernel for delta recounts.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        DynamicAggregateSkyline {
            dim,
            kernel: KernelConfig::Columnar { block_size: PreparedDataset::DEFAULT_BLOCK_SIZE },
            labels: Vec::new(),
            base: Vec::new(),
            pending_ins: Vec::new(),
            pending_del: Vec::new(),
            tallies: PairCache::new(),
            stats: Stats::default(),
        }
    }

    /// Like [`DynamicAggregateSkyline::new`] with an explicit kernel
    /// strategy for delta recounts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for [`KernelConfig::Exhaustive`]
    /// (delta recounts need a preparation to produce resumable tallies), a
    /// zero block size, or a columnar block size above [`MAX_LANE_BLOCK`].
    pub fn with_kernel(dim: usize, kernel: KernelConfig) -> Result<Self> {
        match kernel {
            KernelConfig::Exhaustive => {
                return Err(Error::InvalidArgument(
                    "dynamic maintenance requires a prepared kernel (blocked or columnar); \
                     Exhaustive produces no memoizable tally"
                        .into(),
                ));
            }
            KernelConfig::Blocked { block_size } => {
                if block_size == 0 {
                    return Err(Error::InvalidArgument(
                        "kernel block size must be positive".into(),
                    ));
                }
            }
            KernelConfig::Columnar { block_size } | KernelConfig::ColumnarScalar { block_size } => {
                if block_size == 0 || block_size > MAX_LANE_BLOCK {
                    return Err(Error::InvalidArgument(format!(
                        "columnar block size {block_size} outside 1..={MAX_LANE_BLOCK}"
                    )));
                }
            }
        }
        let mut out = DynamicAggregateSkyline::new(dim);
        out.kernel = kernel;
        Ok(out)
    }

    /// Imports an existing dataset. Cheap — records land in the pending
    /// buffers and the first query folds them through the kernel (so the
    /// initial materialization is charged to that query's context).
    pub fn from_dataset(ds: &GroupedDataset) -> Result<Self> {
        let mut out = DynamicAggregateSkyline::new(ds.dim());
        for g in ds.group_ids() {
            let id = out.add_group(ds.label(g));
            for rec in ds.records(g) {
                out.insert(id, rec)?;
            }
        }
        Ok(out)
    }

    /// Imports a dataset **together with previously exported complete
    /// tallies** (e.g. recovered from a checkpoint), installing the records
    /// directly as folded base state — no kernel recounting. The entries
    /// are validated against a fresh preparation of `ds` and must cover
    /// every unordered group pair completely; anything less is rejected so
    /// a stale or truncated checkpoint can never masquerade as warm state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] when an entry fails validation
    /// (see [`PairCache::ingest`]) or when a group pair has no complete
    /// tally.
    pub fn from_dataset_with_tallies(
        ds: &GroupedDataset,
        entries: &[((GroupId, GroupId), crate::paircache::CachedTally)],
    ) -> Result<Self> {
        let mut out = DynamicAggregateSkyline::new(ds.dim());
        for g in ds.group_ids() {
            out.add_group(ds.label(g));
        }
        for g in ds.group_ids() {
            for rec in ds.records(g) {
                out.base[g].extend_from_slice(rec);
            }
        }
        let prep = PreparedDataset::build(ds, PreparedDataset::DEFAULT_BLOCK_SIZE)?;
        out.tallies.ingest(&prep, entries)?;
        for a in 0..ds.n_groups() {
            for b in a + 1..ds.n_groups() {
                match out.tallies.lookup(a, b) {
                    Some(t) if t.complete() => {}
                    _ => {
                        return Err(Error::CorruptCheckpoint(format!(
                            "warm restore requires a complete tally for every group pair; \
                             ({a}, {b}) is missing or partial"
                        )));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of groups (including empty ones).
    pub fn n_groups(&self) -> usize {
        self.labels.len()
    }

    /// Number of live records in group `g` (base minus pending deletes plus
    /// pending inserts).
    pub fn group_len(&self, g: GroupId) -> usize {
        self.base_len(g) - self.pending_del[g].len() + self.pending_ins[g].len() / self.dim
    }

    /// Total number of live records.
    pub fn n_records(&self) -> usize {
        (0..self.n_groups()).map(|g| self.group_len(g)).sum()
    }

    /// Label of group `g`.
    pub fn label(&self, g: GroupId) -> &str {
        &self.labels[g]
    }

    /// Pending (inserts, deletes) of group `g` awaiting a fold.
    pub fn pending_edits(&self, g: GroupId) -> (usize, usize) {
        (self.pending_ins[g].len() / self.dim, self.pending_del[g].len())
    }

    /// Whether any group has unfolded deltas.
    pub fn has_pending(&self) -> bool {
        (0..self.n_groups()).any(|g| self.pending_edits(g) != (0, 0))
    }

    /// Cumulative kernel work charged by maintenance counting so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Adds a new (empty) group and returns its id. Empty groups are
    /// excluded from skylines until they receive a record.
    pub fn add_group(&mut self, label: impl Into<String>) -> GroupId {
        self.labels.push(label.into());
        self.base.push(Vec::new());
        self.pending_ins.push(Vec::new());
        self.pending_del.push(Vec::new());
        self.labels.len() - 1
    }

    /// Inserts one record into group `g`. O(1): the record lands in the
    /// pending buffer; pair tallies are revised when the group next folds.
    pub fn insert(&mut self, g: GroupId, record: &[f64]) -> Result<()> {
        self.insert_ctx(g, record, &RunContext::unlimited())
    }

    /// [`DynamicAggregateSkyline::insert`] with observability: charges
    /// [`Counter::DynInserts`](aggsky_obs::Counter::DynInserts) to the
    /// context's recorder.
    pub fn insert_ctx(&mut self, g: GroupId, record: &[f64], ctx: &RunContext) -> Result<()> {
        if record.len() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, got: record.len() });
        }
        if let Some(d) = record.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { dimension: d });
        }
        if self.group_len(g) >= MAX_GROUP_LEN {
            return Err(Error::GroupTooLarge {
                group: self.labels[g].clone(),
                len: self.group_len(g) + 1,
            });
        }
        self.pending_ins[g].extend_from_slice(record);
        ctx.recorder().add(ObsCounter::DynInserts, 1);
        Ok(())
    }

    /// Removes the record at live index `idx` of group `g` (0-based over
    /// the current order: folded base records first, then pending inserts
    /// in arrival order) and returns it. O(group) — no counting: removing a
    /// pending insert cancels it outright, removing a base record marks it
    /// pending-deleted until the next fold.
    pub fn remove(&mut self, g: GroupId, idx: usize) -> Result<Vec<f64>> {
        let len = self.group_len(g);
        if idx >= len {
            return Err(Error::RecordIndexOutOfRange {
                group: self.labels[g].clone(),
                index: idx,
                len,
            });
        }
        let live_base = self.base_len(g) - self.pending_del[g].len();
        if idx < live_base {
            // The idx-th base row not already pending deletion.
            let mut live_seen = 0usize;
            let mut row = 0usize;
            for r in 0..self.base_len(g) {
                if self.pending_del[g].binary_search(&r).is_ok() {
                    continue;
                }
                if live_seen == idx {
                    row = r;
                    break;
                }
                live_seen += 1;
            }
            let pos = match self.pending_del[g].binary_search(&row) {
                Ok(_) => {
                    return Err(Error::InvalidArgument(format!(
                        "internal: base row {row} of group {g} already pending deletion"
                    )));
                }
                Err(p) => p,
            };
            self.pending_del[g].insert(pos, row);
            Ok(self.base[g][row * self.dim..(row + 1) * self.dim].to_vec())
        } else {
            let j = idx - live_base;
            let rec: Vec<f64> = self.pending_ins[g][j * self.dim..(j + 1) * self.dim].to_vec();
            self.pending_ins[g].drain(j * self.dim..(j + 1) * self.dim);
            Ok(rec)
        }
    }

    /// Live index of the first record of group `g` whose coordinates are
    /// bit-identical to `record` — the deterministic lookup the SQL
    /// delete-by-value path uses with [`DynamicAggregateSkyline::remove`].
    pub fn find_record(&self, g: GroupId, record: &[f64]) -> Option<usize> {
        if record.len() != self.dim || g >= self.n_groups() {
            return None;
        }
        let same =
            |row: &[f64]| row.iter().zip(record.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
        let mut idx = 0usize;
        for (r, row) in self.base[g].chunks_exact(self.dim).enumerate() {
            if self.pending_del[g].binary_search(&r).is_ok() {
                continue;
            }
            if same(row) {
                return Some(idx);
            }
            idx += 1;
        }
        for row in self.pending_ins[g].chunks_exact(self.dim) {
            if same(row) {
                return Some(idx);
            }
            idx += 1;
        }
        None
    }

    /// The exact current `p(S ≻ R)`; zero when either group is empty.
    /// Folds both groups' pending deltas first.
    pub fn domination_probability(&mut self, s: GroupId, r: GroupId) -> Result<f64> {
        let ctx = RunContext::unlimited();
        self.flush_group_ctx(s, &ctx)?;
        self.flush_group_ctx(r, &ctx)?;
        let (len_s, len_r) = (self.group_len(s), self.group_len(r));
        if len_s == 0 || len_r == 0 {
            return Ok(0.0);
        }
        let (n_sr, _) = self.base_counts(s, r);
        Ok(n_sr as f64 / crate::num::pair_product(len_s, len_r) as f64)
    }

    /// The conservative Property-2 drift interval for `p(S ≻ R)` under the
    /// pending edits: the true probability over the live sets is guaranteed
    /// inside `[lo, hi]`, with `lo == hi` exactly when neither group has
    /// pending deltas. Read-only — never counts.
    pub fn probability_bounds(&self, s: GroupId, r: GroupId) -> (f64, f64) {
        let (len_s, len_r) = (self.group_len(s), self.group_len(r));
        if len_s == 0 || len_r == 0 {
            return (0.0, 0.0);
        }
        let (n_lo, n_hi, total) = self.count_bounds(s, r);
        (n_lo as f64 / total as f64, n_hi as f64 / total as f64)
    }

    /// The aggregate skyline of the current state among non-empty groups,
    /// ascending by group id. Exact: folds exactly the groups whose drift
    /// intervals cross γ.
    pub fn skyline(&mut self, gamma: Gamma) -> Result<Vec<GroupId>> {
        self.skyline_ctx(gamma, &RunContext::unlimited()).map(|out| out.groups)
    }

    /// [`DynamicAggregateSkyline::skyline`] under a [`RunContext`]: folding
    /// is budgeted and cancellable, kernel work lands in the recorder, and
    /// the outcome reports deferred vs flushed pair counts.
    pub fn skyline_ctx(&mut self, gamma: Gamma, ctx: &RunContext) -> Result<DynSkyline> {
        let mut flushed_pairs = 0u64;
        let mut interrupted: Option<InterruptReason> = None;
        loop {
            let live: Vec<GroupId> =
                (0..self.n_groups()).filter(|&g| self.group_len(g) > 0).collect();
            let mut out = Vec::new();
            let mut deferred = 0u64;
            // Groups participating in a γ-straddling drift interval; must
            // fold before the skyline can be certified.
            let mut undecided: Vec<GroupId> = Vec::new();
            for &r in &live {
                let mut dominated = false;
                let mut open = false;
                for &s in &live {
                    if s == r {
                        continue;
                    }
                    let (n_lo, n_hi, total) = self.count_bounds(s, r);
                    let dom_lo = gamma.dominated(n_lo as f64 / total as f64);
                    let dom_hi = gamma.dominated(n_hi as f64 / total as f64);
                    if dom_lo == dom_hi {
                        if n_lo != n_hi {
                            deferred += 1;
                        }
                        if dom_lo {
                            dominated = true;
                        }
                    } else {
                        open = true;
                        for g in [s, r] {
                            if let Err(p) = undecided.binary_search(&g) {
                                undecided.insert(p, g);
                            }
                        }
                    }
                }
                // A certain dominator excludes r whatever the open pairs
                // resolve to; otherwise r stays in (optimistically so when
                // interrupted — the anytime convention).
                if !dominated && (!open || interrupted.is_some()) {
                    out.push(r);
                }
            }
            let open_groups = undecided.iter().any(|&g| self.pending_edits(g) != (0, 0));
            if interrupted.is_some() || !open_groups {
                ctx.recorder().add(ObsCounter::DynDeferred, deferred);
                return Ok(DynSkyline {
                    groups: out,
                    deferred_pairs: deferred,
                    flushed_pairs,
                    interrupted,
                });
            }
            for g in undecided {
                let report = self.flush_group_ctx(g, ctx)?;
                flushed_pairs += report.flushed_pairs;
                if report.interrupted.is_some() {
                    interrupted = report.interrupted;
                    break;
                }
            }
        }
    }

    /// Folds every group's pending deltas, leaving all tallies exact.
    pub fn flush_ctx(&mut self, ctx: &RunContext) -> Result<FlushReport> {
        let mut total = FlushReport::default();
        for g in 0..self.n_groups() {
            let report = self.flush_group_ctx(g, ctx)?;
            total.flushed_pairs += report.flushed_pairs;
            if report.interrupted.is_some() {
                total.interrupted = report.interrupted;
                return Ok(total);
            }
        }
        Ok(total)
    }

    /// Snapshots the current live state as an immutable [`GroupedDataset`]
    /// (empty groups are skipped; the mapping from snapshot ids to dynamic
    /// ids is returned alongside). Read-only — pending deltas are included
    /// without folding them.
    pub fn snapshot(&self) -> Result<(GroupedDataset, Vec<GroupId>)> {
        let mut b = GroupedDatasetBuilder::new(self.dim).trusted_labels();
        let mut mapping = Vec::new();
        for g in 0..self.n_groups() {
            if self.group_len(g) == 0 {
                continue;
            }
            let rows: Vec<&[f64]> = self.live_rows(g).collect();
            b.push_group(self.labels[g].clone(), &rows)?;
            mapping.push(g);
        }
        Ok((b.build()?, mapping))
    }

    /// Exported base tallies in canonical orientation (complete entries
    /// only), for checkpointing; see [`PairCache::export`]. Meaningful when
    /// nothing is pending (fold first), which the serving layer guarantees.
    pub fn export_tallies(&self) -> Vec<((GroupId, GroupId), crate::paircache::CachedTally)> {
        self.tallies.export()
    }

    /// Validates and installs checkpointed tallies against a preparation of
    /// the current (fully folded) state; see [`PairCache::ingest`].
    pub fn ingest_tallies(
        &mut self,
        prep: &PreparedDataset,
        entries: &[((GroupId, GroupId), crate::paircache::CachedTally)],
    ) -> Result<usize> {
        self.tallies.ingest(prep, entries)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn base_len(&self, g: GroupId) -> usize {
        self.base[g].len() / self.dim
    }

    /// Live rows of `g` in index order: base rows minus pending deletes,
    /// then pending inserts.
    fn live_rows(&self, g: GroupId) -> impl Iterator<Item = &[f64]> {
        self.base[g]
            .chunks_exact(self.dim)
            .enumerate()
            .filter(move |(r, _)| self.pending_del[g].binary_search(r).is_err())
            .map(|(_, row)| row)
            .chain(self.pending_ins[g].chunks_exact(self.dim))
    }

    /// Exact base tally of the ordered pair: `(|a ≻ b|, |b ≻ a|)` over the
    /// base sets; zeros when either base set is empty (no entry memoized).
    fn base_counts(&self, a: GroupId, b: GroupId) -> (u64, u64) {
        match self.tallies.lookup(a, b) {
            Some(t) if a <= b => (t.n12, t.n21),
            Some(t) => (t.n21, t.n12),
            None => (0, 0),
        }
    }

    /// Conservative bounds on the live dominating-pair count of the ordered
    /// pair `(s, r)`: `(n_lo, n_hi, |s_cur|·|r_cur|)`. Exact (`n_lo ==
    /// n_hi`) when neither side has pending deltas. Callers guarantee both
    /// groups are non-empty.
    fn count_bounds(&self, s: GroupId, r: GroupId) -> (u64, u64, u64) {
        let w = crate::num::wide;
        let (cur_s, cur_r) = (self.group_len(s), self.group_len(r));
        let total = crate::num::pair_product(cur_s, cur_r);
        let (n_base, _) = self.base_counts(s, r);
        let (ins_s, del_s) = self.pending_edits(s);
        let (ins_r, del_r) = self.pending_edits(r);
        let loss = w(del_s)
            .saturating_mul(w(self.base_len(r)))
            .saturating_add(w(del_r).saturating_mul(w(self.base_len(s))));
        let gain =
            w(ins_s).saturating_mul(w(cur_r)).saturating_add(w(ins_r).saturating_mul(w(cur_s)));
        let n_lo = n_base.saturating_sub(loss);
        let n_hi = n_base.saturating_add(gain).min(total);
        (n_lo, n_hi, total)
    }

    /// Folds group `g`'s pending deltas into its base, revising every
    /// touched pair tally through the kernel. All-or-nothing: an interrupt
    /// (or a chaos panic inside the counting) leaves base, buffers and
    /// tallies exactly as they were.
    fn flush_group_ctx(&mut self, g: GroupId, ctx: &RunContext) -> Result<FlushReport> {
        let (ins_cnt, del_cnt) = self.pending_edits(g);
        if ins_cnt == 0 && del_cnt == 0 {
            return Ok(FlushReport::default());
        }
        ctx.recorder().event(
            "dyn_forced_flush",
            0,
            Stamp::tick(self.stats.record_pairs),
            &[
                ("group", crate::num::wide(g)),
                ("ins", crate::num::wide(ins_cnt)),
                ("del", crate::num::wide(del_cnt)),
            ],
        );
        let ins_rows: Vec<f64> = self.pending_ins[g].clone();
        let del_rows: Vec<f64> = self.pending_del[g]
            .iter()
            .flat_map(|&r| self.base[g][r * self.dim..(r + 1) * self.dim].iter().copied())
            .collect();
        let new_b = self.base_len(g) - del_cnt + ins_cnt;
        // Stage every revision before committing anything: a panic or an
        // interrupt mid-count must not leave half-revised tallies.
        let mut staged: Vec<(GroupId, u64, u64, u64)> = Vec::new();
        for s in 0..self.n_groups() {
            if s == g || self.base_len(s) == 0 {
                continue;
            }
            let (mut n_gs, mut n_sg) = self.base_counts(g, s);
            if ins_cnt > 0 {
                match self.count_delta(&ins_rows, s, ctx)? {
                    Counted::Done(w, l) => {
                        n_gs = n_gs.saturating_add(w);
                        n_sg = n_sg.saturating_add(l);
                    }
                    Counted::Stopped(reason) => {
                        return Ok(FlushReport { flushed_pairs: 0, interrupted: Some(reason) });
                    }
                }
            }
            if del_cnt > 0 {
                match self.count_delta(&del_rows, s, ctx)? {
                    Counted::Done(w, l) => {
                        // Deleted pairs were part of the base tally, so the
                        // subtraction cannot underflow.
                        n_gs = n_gs.checked_sub(w).ok_or_else(|| tally_drift(g, s))?;
                        n_sg = n_sg.checked_sub(l).ok_or_else(|| tally_drift(g, s))?;
                    }
                    Counted::Stopped(reason) => {
                        return Ok(FlushReport { flushed_pairs: 0, interrupted: Some(reason) });
                    }
                }
            }
            let total = crate::num::pair_count(new_b, self.base_len(s))?;
            staged.push((s, n_gs, n_sg, total));
        }

        // Validate every staged tally before committing anything, so the
        // install loop below cannot fail halfway through.
        for &(s, n_gs, n_sg, total) in &staged {
            if n_gs.saturating_add(n_sg) > total {
                return Err(tally_drift(g, s));
            }
        }

        // Commit: rebuild the base row store, clear the buffers, install
        // the staged tallies.
        self.pending_ins[g].clear();
        for &r in self.pending_del[g].iter().rev() {
            self.base[g].drain(r * self.dim..(r + 1) * self.dim);
        }
        self.pending_del[g].clear();
        self.base[g].extend_from_slice(&ins_rows);
        debug_assert_eq!(self.base_len(g), new_b);
        if new_b == 0 {
            self.tallies.invalidate_group(g);
        } else {
            for &(s, n_gs, n_sg, total) in &staged {
                self.tallies.revise(g, s, n_gs, n_sg, total)?;
            }
        }
        let flushed = crate::num::wide(staged.len());
        ctx.recorder().add(ObsCounter::DynFlushedPairs, flushed);
        Ok(FlushReport { flushed_pairs: flushed, interrupted: None })
    }

    /// Counts `(|Δ ≻ S_base|, |S_base ≻ Δ|)` for a row-major delta buffer
    /// through [`Kernel::compare_bounded`] over a two-group mini
    /// preparation (the delta records become their own lane blocks). Work
    /// is charged to [`Stats`], mirrored to the context's recorder, and
    /// polled against the context's budget.
    fn count_delta(&mut self, delta: &[f64], s: GroupId, ctx: &RunContext) -> Result<Counted> {
        let delta_rows: Vec<&[f64]> = delta.chunks_exact(self.dim).collect();
        let base_rows: Vec<&[f64]> = self.base[s].chunks_exact(self.dim).collect();
        let mut b = GroupedDatasetBuilder::new(self.dim).trusted_labels();
        b.push_group("delta", &delta_rows)?;
        b.push_group("base", &base_rows)?;
        let mini = b.build()?;
        let kernel = Kernel::new(&mini, self.kernel)?;
        let mut stats = Stats::default();
        let bounded = kernel.compare_bounded(
            0,
            1,
            Gamma::DEFAULT,
            None,
            COUNT_OPTS,
            None,
            u64::MAX,
            None,
            &mut stats,
        );
        let ticks = stats.record_pairs;
        self.stats.merge(&stats);
        if let Some(rec) = ctx.obs() {
            stats.record_to(rec);
        }
        if let Some(reason) = ctx.poll(ticks) {
            return Ok(Counted::Stopped(reason));
        }
        match bounded {
            // Group 0 < group 1, so the canonical orientation is already
            // (Δ, S) and the tally is complete (no stop rule, no limit).
            BoundedCompare::Decided { tally: Some(t), .. } if t.complete() => {
                Ok(Counted::Done(t.n12, t.n21))
            }
            _ => Err(Error::InvalidArgument(
                "internal: unbounded full count did not produce a complete tally".into(),
            )),
        }
    }
}

fn tally_drift(g: GroupId, s: GroupId) -> Error {
    Error::InvalidArgument(format!(
        "internal: delete recount for pair ({g}, {s}) exceeds the memoized base tally"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::lcg;

    /// Differential test: a random sequence of inserts/removes must always
    /// leave the dynamic structure consistent with a from-scratch recompute.
    #[test]
    fn random_update_sequences_match_recompute() {
        for seed in 0..10u64 {
            let mut next = lcg(100 + seed);
            let dim = 1 + (next() * 3.0) as usize;
            let mut dynamic = DynamicAggregateSkyline::new(dim);
            for g in 0..5 {
                dynamic.add_group(format!("g{g}"));
            }
            for step in 0..60 {
                let g = (next() * 5.0) as usize % 5;
                let remove = next() < 0.3 && dynamic.group_len(g) > 0;
                if remove {
                    let idx =
                        (next() * dynamic.group_len(g) as f64) as usize % dynamic.group_len(g);
                    dynamic.remove(g, idx).unwrap();
                } else {
                    let rec: Vec<f64> = (0..dim).map(|_| (next() * 6.0).floor()).collect();
                    dynamic.insert(g, &rec).unwrap();
                }
                // Cross-check against the oracle on the snapshot.
                if dynamic.n_records() == 0 {
                    continue;
                }
                let (snap, mapping) = dynamic.snapshot().unwrap();
                let oracle: Vec<GroupId> = naive_skyline(&snap, Gamma::DEFAULT)
                    .skyline
                    .into_iter()
                    .map(|g| mapping[g])
                    .collect();
                assert_eq!(
                    dynamic.skyline(Gamma::DEFAULT).unwrap(),
                    oracle,
                    "seed={seed} step={step}"
                );
                for s in 0..5 {
                    for r in 0..5 {
                        if s == r || dynamic.group_len(s) == 0 || dynamic.group_len(r) == 0 {
                            continue;
                        }
                        let si = mapping.iter().position(|&m| m == s).unwrap();
                        let ri = mapping.iter().position(|&m| m == r).unwrap();
                        let expect = crate::gamma::domination_probability(&snap, si, ri);
                        let got = dynamic.domination_probability(s, r).unwrap();
                        assert!((expect - got).abs() < 1e-12, "p({s},{r})");
                        // With everything folded the drift interval must
                        // collapse to the exact probability.
                        let (lo, hi) = dynamic.probability_bounds(s, r);
                        assert_eq!(lo, hi, "collapsed interval for ({s},{r})");
                        assert!((lo - got).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_groups_are_invisible() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        let b = d.add_group("b");
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![]);
        d.insert(a, &[1.0, 1.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
        d.insert(b, &[2.0, 2.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![b]);
        // Remove b's only record: a rules again.
        d.remove(b, 0).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
    }

    #[test]
    fn late_group_addition_joins_the_tallies() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        d.insert(a, &[5.0, 5.0]).unwrap();
        let b = d.add_group("b");
        d.insert(b, &[1.0, 1.0]).unwrap();
        assert_eq!(d.domination_probability(a, b).unwrap(), 1.0);
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
        let c = d.add_group("c");
        d.insert(c, &[9.0, 9.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![c]);
    }

    #[test]
    fn insert_validates_input() {
        let mut d = DynamicAggregateSkyline::new(2);
        let g = d.add_group("g");
        assert!(d.insert(g, &[1.0]).is_err());
        assert!(d.insert(g, &[1.0, f64::NAN]).is_err());
        assert!(d.remove(g, 0).is_err());
    }

    #[test]
    fn from_dataset_round_trips() {
        let ds = crate::testdata::movie_directors();
        let mut d = DynamicAggregateSkyline::from_dataset(&ds).unwrap();
        assert_eq!(d.n_records(), ds.n_records());
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), oracle);
    }

    /// The paper's motivating story: one bad movie from a great director
    /// nudges γ but, per Property 2, cannot swing it arbitrarily.
    #[test]
    fn single_insert_moves_gamma_boundedly() {
        let ds = crate::testdata::movie_directors();
        let mut d = DynamicAggregateSkyline::from_dataset(&ds).unwrap();
        let t = ds.group_by_label("Tarantino").unwrap();
        let w = ds.group_by_label("Wiseau").unwrap();
        let before = d.domination_probability(t, w).unwrap();
        assert_eq!(before, 1.0);
        // Tarantino releases a stinker. Before folding, the drift interval
        // must still contain the true probability.
        d.insert(t, &[1.0, 1.0]).unwrap();
        let (lo, hi) = d.probability_bounds(t, w);
        let after = d.domination_probability(t, w).unwrap();
        assert!(lo <= after + 1e-12 && after <= hi + 1e-12, "[{lo}, {hi}] ∌ {after}");
        // ε = 1/2 relative to the previous 2 records: γ(1−ε) = 0.5 ≤ γ'.
        assert!(after >= 1.0 / 1.5 - 1e-12, "after = {after}");
        assert!(after < 1.0);
    }

    /// The defer-recompute rule: an insert that cannot move any pair across
    /// γ is absorbed without kernel work; one that can forces a fold.
    #[test]
    fn deferral_skips_kernel_work_until_gamma_is_threatened() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        let b = d.add_group("b");
        for i in 0..8 {
            d.insert(a, &[10.0 + i as f64, 10.0]).unwrap();
            d.insert(b, &[1.0 + i as f64, 1.0]).unwrap();
        }
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
        let folded = d.stats().record_pairs;
        // One more dominated record for b: p(a ≻ b) can only stay above γ
        // (it was 1, and one edit moves it by at most 1/9 < 1 − γ̄ slack
        // with γ = 0.5 ... ), so the query is served from the interval.
        d.insert(b, &[2.0, 2.0]).unwrap();
        let out = d.skyline_ctx(Gamma::DEFAULT, &RunContext::unlimited()).unwrap();
        assert_eq!(out.groups, vec![a]);
        assert!(out.deferred_pairs > 0, "{out:?}");
        assert_eq!(out.flushed_pairs, 0, "{out:?}");
        assert_eq!(d.stats().record_pairs, folded, "no kernel work while deferred");
        assert!(d.has_pending());
        // Enough dominating records that p(b ≻ a) *could* cross γ = 0.5
        // (the drift interval's upper endpoint passes 1/2): forced fold.
        for _ in 0..10 {
            d.insert(b, &[99.0, 99.0]).unwrap();
        }
        let out = d.skyline_ctx(Gamma::DEFAULT, &RunContext::unlimited()).unwrap();
        assert!(out.flushed_pairs > 0, "{out:?}");
        assert!(d.stats().record_pairs > folded);
        assert!(!d.has_pending());
    }

    /// Budget interruption mid-fold leaves the structure consistent: the
    /// pending deltas survive, and an unlimited retry matches the oracle.
    #[test]
    fn interrupted_fold_is_resumable() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        let b = d.add_group("b");
        for i in 0..20 {
            d.insert(a, &[i as f64, 20.0 - i as f64]).unwrap();
            d.insert(b, &[i as f64 + 0.5, 20.5 - i as f64]).unwrap();
        }
        let tiny = RunContext::with_budget(1);
        let out = d.skyline_ctx(Gamma::DEFAULT, &tiny).unwrap();
        assert_eq!(out.interrupted, Some(InterruptReason::BudgetExhausted));
        assert!(d.has_pending(), "interrupted fold must not half-commit");
        let (snap, mapping) = d.snapshot().unwrap();
        let oracle: Vec<GroupId> =
            naive_skyline(&snap, Gamma::DEFAULT).skyline.into_iter().map(|g| mapping[g]).collect();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), oracle);
        assert!(!d.has_pending());
    }

    /// Tallies are kernel-config independent: blocked, columnar-scalar and
    /// columnar-auto maintenance produce bit-identical skylines, tallies
    /// and Stats on the same edit stream.
    #[test]
    fn kernel_configs_agree_bit_for_bit() {
        let configs = [
            KernelConfig::Blocked { block_size: 4 },
            KernelConfig::ColumnarScalar { block_size: 4 },
            KernelConfig::Columnar { block_size: 4 },
        ];
        let mut outcomes = Vec::new();
        for cfg in configs {
            let mut d = DynamicAggregateSkyline::with_kernel(2, cfg).unwrap();
            let mut next = lcg(7);
            for g in 0..4 {
                d.add_group(format!("g{g}"));
            }
            let mut skylines = Vec::new();
            for _ in 0..40 {
                let g = (next() * 4.0) as usize % 4;
                if next() < 0.25 && d.group_len(g) > 0 {
                    let idx = (next() * d.group_len(g) as f64) as usize % d.group_len(g);
                    d.remove(g, idx).unwrap();
                } else {
                    d.insert(g, &[(next() * 9.0).floor(), (next() * 9.0).floor()]).unwrap();
                }
                skylines.push(d.skyline(Gamma::DEFAULT).unwrap());
            }
            outcomes.push((skylines, d.export_tallies(), *d.stats()));
        }
        assert_eq!(outcomes[0], outcomes[1], "blocked vs columnar-scalar");
        assert_eq!(outcomes[1], outcomes[2], "columnar-scalar vs columnar-auto");
    }

    #[test]
    fn exhaustive_kernel_is_rejected() {
        let err = DynamicAggregateSkyline::with_kernel(2, KernelConfig::Exhaustive).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
    }

    /// Removing a record that was itself still pending cancels it without
    /// ever touching a tally.
    #[test]
    fn removing_a_pending_insert_is_free() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        let b = d.add_group("b");
        d.insert(a, &[5.0, 5.0]).unwrap();
        d.insert(b, &[1.0, 1.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
        let before = d.stats().record_pairs;
        d.insert(b, &[9.0, 9.0]).unwrap();
        assert_eq!(d.find_record(b, &[9.0, 9.0]), Some(1));
        let got = d.remove(b, 1).unwrap();
        assert_eq!(got, vec![9.0, 9.0]);
        assert_eq!(d.skyline(Gamma::DEFAULT).unwrap(), vec![a]);
        assert_eq!(d.stats().record_pairs, before, "cancelled insert must cost nothing");
    }
}
