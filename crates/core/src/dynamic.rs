//! Incremental aggregate-skyline maintenance (an extension beyond the
//! paper, motivated by its Property 2: small updates change domination
//! probabilities by bounded amounts, so recomputing everything from scratch
//! on every insert is wasteful).
//!
//! [`DynamicAggregateSkyline`] keeps the exact pairwise domination *counts*
//! `|S ≻ R|` for every ordered group pair. Inserting or removing one record
//! of group `R` only requires comparing that record against every other
//! group's records — `O(total records)` dominance checks — after which every
//! `p(S ≻ R)` is available in `O(1)` and the skyline in `O(n²)` for `n`
//! groups, instead of the `O(N²)` record comparisons of a full recompute.

use crate::dataset::{GroupId, GroupedDataset, GroupedDatasetBuilder};
use crate::dominance::dominates;
use crate::error::{Error, Result};
use crate::gamma::Gamma;

/// A mutable collection of groups with incrementally-maintained pairwise
/// domination counts.
///
/// ```
/// use aggsky_core::dynamic::DynamicAggregateSkyline;
/// use aggsky_core::Gamma;
///
/// let mut dyn_sky = DynamicAggregateSkyline::new(2);
/// let t = dyn_sky.add_group("Tarantino");
/// let w = dyn_sky.add_group("Wiseau");
/// dyn_sky.insert(t, &[557.0, 9.0]).unwrap();
/// dyn_sky.insert(w, &[10.0, 3.2]).unwrap();
/// assert_eq!(dyn_sky.skyline(Gamma::DEFAULT), vec![t]);
/// // A surprise hit makes Wiseau incomparable-in-part...
/// dyn_sky.insert(w, &[600.0, 2.0]).unwrap();
/// assert_eq!(dyn_sky.skyline(Gamma::DEFAULT), vec![t, w]);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicAggregateSkyline {
    dim: usize,
    labels: Vec<String>,
    /// Per-group record storage (row-major).
    groups: Vec<Vec<f64>>,
    /// `counts[s * cap + r]` = `|S ≻ R|` for ordered pair (s, r).
    counts: Vec<u64>,
    /// Allocated side length of the counts matrix; grows geometrically so a
    /// sequence of `add_group` calls costs amortized O(n²) total instead of
    /// O(n³) from per-call rebuilds.
    cap: usize,
}

impl DynamicAggregateSkyline {
    /// Creates an empty collection of `dim`-dimensional records (all
    /// dimensions MAX preference; negate values for MIN dimensions).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        DynamicAggregateSkyline {
            dim,
            labels: Vec::new(),
            groups: Vec::new(),
            counts: Vec::new(),
            cap: 0,
        }
    }

    /// Imports an existing dataset (computing all pairwise counts once).
    ///
    /// Infallible in practice — a [`GroupedDataset`] is already validated —
    /// but the signature stays honest instead of panicking on a broken
    /// internal assumption.
    pub fn from_dataset(ds: &GroupedDataset) -> Result<Self> {
        let mut out = DynamicAggregateSkyline::new(ds.dim());
        for g in ds.group_ids() {
            let id = out.add_group(ds.label(g));
            for rec in ds.records(g) {
                out.insert(id, rec)?;
            }
        }
        Ok(out)
    }

    /// Number of groups (including empty ones).
    pub fn n_groups(&self) -> usize {
        self.labels.len()
    }

    /// Number of records in group `g`.
    pub fn group_len(&self, g: GroupId) -> usize {
        self.groups[g].len() / self.dim
    }

    /// Total number of records.
    pub fn n_records(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum::<usize>() / self.dim
    }

    /// Label of group `g`.
    pub fn label(&self, g: GroupId) -> &str {
        &self.labels[g]
    }

    /// Adds a new (empty) group and returns its id. Empty groups are
    /// excluded from skylines until they receive a record.
    pub fn add_group(&mut self, label: impl Into<String>) -> GroupId {
        let old_n = self.labels.len();
        if old_n + 1 > self.cap {
            // Geometric growth keeps repeated add_group amortized-cheap.
            let new_cap = (self.cap * 2).max(4);
            let mut counts = vec![0u64; new_cap * new_cap];
            for s in 0..old_n {
                for r in 0..old_n {
                    counts[s * new_cap + r] = self.counts[s * self.cap + r];
                }
            }
            self.counts = counts;
            self.cap = new_cap;
        }
        self.labels.push(label.into());
        self.groups.push(Vec::new());
        old_n
    }

    /// Inserts one record into group `g`, updating all pairwise counts in
    /// `O(total records)` dominance checks.
    pub fn insert(&mut self, g: GroupId, record: &[f64]) -> Result<()> {
        if record.len() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, got: record.len() });
        }
        if let Some(d) = record.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { dimension: d });
        }
        let n = self.n_groups();
        for other in 0..n {
            if other == g {
                continue;
            }
            let (mut wins, mut losses) = (0u64, 0u64);
            for s in self.groups[other].chunks_exact(self.dim) {
                if dominates(record, s) {
                    wins += 1;
                } else if dominates(s, record) {
                    losses += 1;
                }
            }
            self.counts[g * self.cap + other] += wins;
            self.counts[other * self.cap + g] += losses;
        }
        self.groups[g].extend_from_slice(record);
        Ok(())
    }

    /// Removes record `idx` (0-based) from group `g`, updating counts.
    pub fn remove(&mut self, g: GroupId, idx: usize) -> Result<Vec<f64>> {
        let len = self.group_len(g);
        if idx >= len {
            return Err(Error::RecordIndexOutOfRange {
                group: self.labels[g].clone(),
                index: idx,
                len,
            });
        }
        let record: Vec<f64> = self.groups[g][idx * self.dim..(idx + 1) * self.dim].to_vec();
        let n = self.n_groups();
        for other in 0..n {
            if other == g {
                continue;
            }
            let (mut wins, mut losses) = (0u64, 0u64);
            for s in self.groups[other].chunks_exact(self.dim) {
                if dominates(&record, s) {
                    wins += 1;
                } else if dominates(s, &record) {
                    losses += 1;
                }
            }
            self.counts[g * self.cap + other] -= wins;
            self.counts[other * self.cap + g] -= losses;
        }
        // Swap-remove the record row.
        let last = len - 1;
        for d in 0..self.dim {
            self.groups[g].swap(idx * self.dim + d, last * self.dim + d);
        }
        self.groups[g].truncate(last * self.dim);
        Ok(record)
    }

    /// The current `p(S ≻ R)`; zero when either group is empty.
    pub fn domination_probability(&self, s: GroupId, r: GroupId) -> f64 {
        let (len_s, len_r) = (self.group_len(s), self.group_len(r));
        if len_s == 0 || len_r == 0 {
            return 0.0;
        }
        self.counts[s * self.cap + r] as f64 / crate::num::pair_product(len_s, len_r) as f64
    }

    /// The aggregate skyline of the current state among non-empty groups,
    /// ascending by group id. `O(n²)` on the maintained counts.
    pub fn skyline(&self, gamma: Gamma) -> Vec<GroupId> {
        let n = self.n_groups();
        (0..n)
            .filter(|&r| self.group_len(r) > 0)
            .filter(|&r| {
                (0..n).all(|s| {
                    s == r
                        || self.group_len(s) == 0
                        || !gamma.dominated(self.domination_probability(s, r))
                })
            })
            .collect()
    }

    /// Snapshots the current state as an immutable [`GroupedDataset`]
    /// (empty groups are skipped; the mapping from snapshot ids to dynamic
    /// ids is returned alongside).
    pub fn snapshot(&self) -> Result<(GroupedDataset, Vec<GroupId>)> {
        let mut b = GroupedDatasetBuilder::new(self.dim).trusted_labels();
        let mut mapping = Vec::new();
        for g in 0..self.n_groups() {
            if self.group_len(g) == 0 {
                continue;
            }
            let rows: Vec<&[f64]> = self.groups[g].chunks_exact(self.dim).collect();
            b.push_group(self.labels[g].clone(), &rows)?;
            mapping.push(g);
        }
        Ok((b.build()?, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::lcg;

    /// Differential test: a random sequence of inserts/removes must always
    /// leave the dynamic structure consistent with a from-scratch recompute.
    #[test]
    fn random_update_sequences_match_recompute() {
        for seed in 0..10u64 {
            let mut next = lcg(100 + seed);
            let dim = 1 + (next() * 3.0) as usize;
            let mut dynamic = DynamicAggregateSkyline::new(dim);
            for g in 0..5 {
                dynamic.add_group(format!("g{g}"));
            }
            for step in 0..60 {
                let g = (next() * 5.0) as usize % 5;
                let remove = next() < 0.3 && dynamic.group_len(g) > 0;
                if remove {
                    let idx =
                        (next() * dynamic.group_len(g) as f64) as usize % dynamic.group_len(g);
                    dynamic.remove(g, idx).unwrap();
                } else {
                    let rec: Vec<f64> = (0..dim).map(|_| (next() * 6.0).floor()).collect();
                    dynamic.insert(g, &rec).unwrap();
                }
                // Cross-check against the oracle on the snapshot.
                if dynamic.n_records() == 0 {
                    continue;
                }
                let (snap, mapping) = dynamic.snapshot().unwrap();
                let oracle: Vec<GroupId> = naive_skyline(&snap, Gamma::DEFAULT)
                    .skyline
                    .into_iter()
                    .map(|g| mapping[g])
                    .collect();
                assert_eq!(dynamic.skyline(Gamma::DEFAULT), oracle, "seed={seed} step={step}");
                for s in 0..5 {
                    for r in 0..5 {
                        if s == r || dynamic.group_len(s) == 0 || dynamic.group_len(r) == 0 {
                            continue;
                        }
                        let si = mapping.iter().position(|&m| m == s).unwrap();
                        let ri = mapping.iter().position(|&m| m == r).unwrap();
                        let expect = crate::gamma::domination_probability(&snap, si, ri);
                        let got = dynamic.domination_probability(s, r);
                        assert!((expect - got).abs() < 1e-12, "p({s},{r})");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_groups_are_invisible() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        let b = d.add_group("b");
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![]);
        d.insert(a, &[1.0, 1.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![a]);
        d.insert(b, &[2.0, 2.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![b]);
        // Remove b's only record: a rules again.
        d.remove(b, 0).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![a]);
    }

    #[test]
    fn late_group_addition_resizes_counts() {
        let mut d = DynamicAggregateSkyline::new(2);
        let a = d.add_group("a");
        d.insert(a, &[5.0, 5.0]).unwrap();
        let b = d.add_group("b");
        d.insert(b, &[1.0, 1.0]).unwrap();
        assert_eq!(d.domination_probability(a, b), 1.0);
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![a]);
        let c = d.add_group("c");
        d.insert(c, &[9.0, 9.0]).unwrap();
        assert_eq!(d.skyline(Gamma::DEFAULT), vec![c]);
    }

    #[test]
    fn insert_validates_input() {
        let mut d = DynamicAggregateSkyline::new(2);
        let g = d.add_group("g");
        assert!(d.insert(g, &[1.0]).is_err());
        assert!(d.insert(g, &[1.0, f64::NAN]).is_err());
        assert!(d.remove(g, 0).is_err());
    }

    #[test]
    fn from_dataset_round_trips() {
        let ds = crate::testdata::movie_directors();
        let d = DynamicAggregateSkyline::from_dataset(&ds).unwrap();
        assert_eq!(d.n_records(), ds.n_records());
        let oracle = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        assert_eq!(d.skyline(Gamma::DEFAULT), oracle);
    }

    /// The paper's motivating story: one bad movie from a great director
    /// nudges γ but, per Property 2, cannot swing it arbitrarily.
    #[test]
    fn single_insert_moves_gamma_boundedly() {
        let ds = crate::testdata::movie_directors();
        let mut d = DynamicAggregateSkyline::from_dataset(&ds).unwrap();
        let t = ds.group_by_label("Tarantino").unwrap();
        let w = ds.group_by_label("Wiseau").unwrap();
        let before = d.domination_probability(t, w);
        assert_eq!(before, 1.0);
        // Tarantino releases a stinker.
        d.insert(t, &[1.0, 1.0]).unwrap();
        let after = d.domination_probability(t, w);
        // ε = 1/2 relative to the previous 2 records: γ(1−ε) = 0.5 ≤ γ'.
        assert!(after >= 1.0 / 1.5 - 1e-12, "after = {after}");
        assert!(after < 1.0);
    }
}
