//! Pairwise group comparison: exhaustive counting, the Section 3.3 stopping
//! rule, and the Figure 9 bounding-box region decomposition.
//!
//! Every aggregate-skyline algorithm funnels its group-vs-group tests through
//! [`compare_groups`], which resolves the domination level in *both*
//! directions while performing as few record-vs-record checks as the enabled
//! optimizations allow.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;
use crate::gamma::Gamma;
use crate::mbb::Mbb;
use crate::stats::Stats;

/// Level at which one group dominates another.
///
/// `GammaBar` (strong domination, threshold `γ̄ = 1 − √(1−γ)/2`) implies
/// `Gamma`. `p = 1` always resolves to `GammaBar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DomLevel {
    /// No domination at level γ.
    None,
    /// Domination at level γ but (known or assumed) not at level γ̄.
    Gamma,
    /// Strong domination at level γ̄ (enables weak-transitivity pruning).
    GammaBar,
}

impl DomLevel {
    /// True iff this level excludes the dominated group from the skyline.
    #[inline]
    pub fn dominates(self) -> bool {
        self != DomLevel::None
    }
}

/// Resolution of one group-vs-group comparison, in both directions.
///
/// Because `γ ≥ 0.5`, at most one direction can be a domination
/// (Proposition 1); the other is always [`DomLevel::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairVerdict {
    /// Domination level of the first group over the second.
    pub forward: DomLevel,
    /// Domination level of the second group over the first.
    pub backward: DomLevel,
}

impl PairVerdict {
    pub(crate) const INCOMPARABLE: PairVerdict =
        PairVerdict { forward: DomLevel::None, backward: DomLevel::None };

    /// The same resolution seen from the opposite orientation: forward and
    /// backward swapped. Used by the pair cache, which always counts a pair
    /// in canonical `(min, max)` group order regardless of how the caller
    /// oriented the comparison.
    #[inline]
    pub fn flipped(self) -> PairVerdict {
        PairVerdict { forward: self.backward, backward: self.forward }
    }
}

/// Tuning knobs for [`compare_groups`].
#[derive(Debug, Clone, Copy)]
pub struct PairOptions {
    /// Apply the Section 3.3 early-stopping rule while counting pairs.
    pub stop_rule: bool,
    /// Distinguish γ̄-level (strong) domination from plain γ-level
    /// domination. Algorithms that never prune via weak transitivity (plain
    /// NL) set this to `false`, which lets the stopping rule fire earlier.
    pub need_bar: bool,
    /// Use the corrected weak-transitivity threshold `(1+γ)/2` instead of the
    /// paper's `max(γ, 1 − √(1−γ)/2)` for the strong level (see
    /// [`Gamma::bar_corrected`]).
    pub corrected_bar: bool,
}

impl Default for PairOptions {
    fn default() -> Self {
        PairOptions { stop_rule: true, need_bar: true, corrected_bar: false }
    }
}

/// Running state of an incremental pair count.
///
/// Shared between the record-at-a-time loop below and the blocked kernel in
/// [`crate::kernel`], which advances `n12`/`n21`/`checked` a whole block pair
/// at a time.
pub(crate) struct Counter {
    pub(crate) n12: u64,
    pub(crate) n21: u64,
    pub(crate) checked: u64,
    pub(crate) total: u64,
    gamma: f64,
    gamma_bar: f64,
    need_bar: bool,
}

impl Counter {
    pub(crate) fn new(total: u64, gamma: Gamma, opts: PairOptions) -> Self {
        Counter {
            n12: 0,
            n21: 0,
            checked: 0,
            total,
            gamma: gamma.value(),
            gamma_bar: if opts.corrected_bar {
                gamma.bar_corrected()
            } else {
                gamma.strong_threshold()
            },
            need_bar: opts.need_bar,
        }
    }

    /// Rebuilds a counter from memoized tallies ([`crate::PairCache`]),
    /// under a possibly *different* γ and option set than the run that
    /// produced them. Sound because the tallies themselves are
    /// γ-independent: `n12`/`n21`/`checked` only record which of the first
    /// `checked` pairs (in the kernel's deterministic block-pair order)
    /// dominate, and every `verdict()` the stopping rule accepts is certain
    /// — it equals the full-count verdict — so resuming under a new γ can
    /// only extend the count, never contradict it.
    pub(crate) fn resume(
        total: u64,
        gamma: Gamma,
        opts: PairOptions,
        n12: u64,
        n21: u64,
        checked: u64,
    ) -> Self {
        debug_assert!(n12 + n21 <= checked && checked <= total);
        let mut c = Counter::new(total, gamma, opts);
        c.n12 = n12;
        c.n21 = n21;
        c.checked = checked;
        c
    }

    /// Forward level if the count stopped right now and all remaining pairs
    /// were worst-case; `None` when the direction is not yet resolved.
    fn resolve_dir(&self, n: u64) -> Option<DomLevel> {
        let total = self.total as f64;
        let rem = self.total - self.checked;
        let low = n as f64;
        let high = (n + rem) as f64;
        // Can this direction still reach γ-level domination (p > γ or p = 1)?
        let possible_gamma = high > self.gamma * total || n + rem == self.total;
        if !possible_gamma {
            return Some(DomLevel::None);
        }
        // Is γ-level domination already certain?
        let certain_gamma =
            low > self.gamma * total || (self.checked == self.total && n == self.total);
        if !certain_gamma {
            return None;
        }
        if !self.need_bar {
            return Some(DomLevel::Gamma);
        }
        let possible_bar = high > self.gamma_bar * total || n + rem == self.total;
        let certain_bar =
            low > self.gamma_bar * total || (self.checked == self.total && n == self.total);
        if certain_bar {
            Some(DomLevel::GammaBar)
        } else if !possible_bar {
            Some(DomLevel::Gamma)
        } else {
            None
        }
    }

    pub(crate) fn verdict(&self) -> Option<PairVerdict> {
        let forward = self.resolve_dir(self.n12)?;
        let backward = self.resolve_dir(self.n21)?;
        Some(PairVerdict { forward, backward })
    }

    /// Level of a direction once every pair has been counted. Total — at a
    /// full count [`Counter::resolve_dir`]'s "possible" and "certain"
    /// conditions coincide, so this is its `rem = 0` specialization.
    fn resolve_full(&self, n: u64) -> DomLevel {
        let total = self.total as f64;
        if !((n as f64) > self.gamma * total || n == self.total) {
            return DomLevel::None;
        }
        if !self.need_bar {
            return DomLevel::Gamma;
        }
        if (n as f64) > self.gamma_bar * total || n == self.total {
            DomLevel::GammaBar
        } else {
            DomLevel::Gamma
        }
    }

    pub(crate) fn final_verdict(&self) -> PairVerdict {
        debug_assert_eq!(self.checked, self.total);
        PairVerdict { forward: self.resolve_full(self.n12), backward: self.resolve_full(self.n21) }
    }
}

/// Compares groups `g1` and `g2`, resolving γ- (and optionally γ̄-) level
/// domination in both directions.
///
/// * `boxes` — when `Some`, enables the Figure 9 bounding-box optimizations:
///   the 9(b) strict-dominance shortcut and the 9(c) region decomposition
///   that resolves all pairs involving records outside the boxes' overlap
///   region in closed form.
/// * `opts.stop_rule` — enables the Section 3.3 early-termination conditions,
///   evaluated after each outer record's row of comparisons.
pub fn compare_groups(
    ds: &GroupedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
    boxes: Option<(&Mbb, &Mbb)>,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    stats.group_pairs += 1;
    let len1 = crate::num::wide(ds.group_len(g1));
    let len2 = crate::num::wide(ds.group_len(g2));
    let total = crate::num::pair_product(ds.group_len(g1), ds.group_len(g2));
    let mut counter = Counter::new(total, gamma, opts);

    if let Some((b1, b2)) = boxes {
        // Figure 9(b): disjoint boxes with one strictly better resolve the
        // pair with zero record comparisons (p = 1).
        if b1.strictly_dominates(b2) {
            stats.bbox_resolved += 1;
            return PairVerdict { forward: DomLevel::GammaBar, backward: DomLevel::None };
        }
        if b2.strictly_dominates(b1) {
            stats.bbox_resolved += 1;
            return PairVerdict { forward: DomLevel::None, backward: DomLevel::GammaBar };
        }
        // If neither box can produce a dominating record pair, the groups
        // are incomparable outright.
        if !b1.may_dominate(b2) && !b2.may_dominate(b1) {
            stats.bbox_resolved += 1;
            return PairVerdict::INCOMPARABLE;
        }
        // Figure 9(c): classify records against the other group's corners.
        //
        // A1 ⊆ g1: dominated by b2.min  ⇒ dominated by every record of g2.
        // C1 ⊆ g1: dominate b2.max      ⇒ dominate every record of g2.
        // A2 ⊆ g2: dominated by b1.min  ⇒ dominated by every record of g1.
        // C2 ⊆ g2: dominate b1.max      ⇒ dominate every record of g1.
        //
        // Records in A1 can never dominate a g2 record and records in C2 can
        // never be dominated by a g1 record (and symmetrically), so only the
        // "middle" records of both groups need pairwise checks.
        let mut middle1: Vec<usize> = Vec::new();
        let mut a1 = 0u64;
        let mut c1 = 0u64;
        for (i, r) in ds.records(g1).enumerate() {
            if dominates(&b2.min, r) {
                a1 += 1;
            } else if dominates(r, &b2.max) {
                c1 += 1;
            } else {
                middle1.push(i);
            }
        }
        let mut middle2: Vec<usize> = Vec::new();
        let mut a2 = 0u64;
        let mut c2 = 0u64;
        for (j, s) in ds.records(g2).enumerate() {
            if dominates(&b1.min, s) {
                a2 += 1;
            } else if dominates(s, &b1.max) {
                c2 += 1;
            } else {
                middle2.push(j);
            }
        }
        // Closed-form pair counts (inclusion-exclusion on the overlap).
        counter.n12 = c1 * len2 + a2 * len1 - c1 * a2;
        counter.n21 = c2 * len1 + a1 * len2 - c2 * a1;
        let unknown = crate::num::pair_product(middle1.len(), middle2.len());
        counter.checked = total - unknown;
        stats.bbox_skipped_pairs += counter.checked;

        if opts.stop_rule {
            if let Some(v) = counter.verdict() {
                if counter.checked < total {
                    stats.early_stops += 1;
                }
                return v;
            }
        }
        return count_rows(
            ds,
            g1,
            g2,
            &RowSet::Subset(&middle1),
            &RowSet::Subset(&middle2),
            &mut counter,
            opts,
            stats,
        );
    }

    count_rows(ds, g1, g2, &RowSet::All, &RowSet::All, &mut counter, opts, stats)
}

/// Which records of a group participate in the pairwise loop.
enum RowSet<'a> {
    All,
    Subset(&'a [usize]),
}

impl RowSet<'_> {
    fn indices(&self, len: usize) -> impl Iterator<Item = usize> + '_ {
        match self {
            RowSet::All => Choice::A(0..len),
            RowSet::Subset(s) => Choice::B(s.iter().copied()),
        }
    }
}

/// Tiny either-iterator to avoid boxing in the hot loop.
enum Choice<A, B> {
    A(A),
    B(B),
}

impl<A: Iterator<Item = usize>, B: Iterator<Item = usize>> Iterator for Choice<A, B> {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            Choice::A(a) => a.next(),
            Choice::B(b) => b.next(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn count_rows(
    ds: &GroupedDataset,
    g1: GroupId,
    g2: GroupId,
    rows1: &RowSet<'_>,
    rows2: &RowSet<'_>,
    counter: &mut Counter,
    opts: PairOptions,
    stats: &mut Stats,
) -> PairVerdict {
    let len1 = ds.group_len(g1);
    let len2 = ds.group_len(g2);
    let inner = match rows2 {
        // The common (no bbox decomposition) case walks the contiguous row
        // buffer directly — no index vector, no per-pair indirection.
        RowSet::All => None,
        RowSet::Subset(s) => Some(*s),
    };
    for i in rows1.indices(len1) {
        let r1 = ds.record(g1, i);
        let inner_len = match inner {
            None => {
                for r2 in ds.records(g2) {
                    count_one(r1, r2, counter);
                }
                crate::num::wide(len2)
            }
            Some(idx2) => {
                for &j in idx2 {
                    count_one(r1, ds.record(g2, j), counter);
                }
                crate::num::wide(idx2.len())
            }
        };
        counter.checked += inner_len;
        stats.record_pairs += inner_len;
        if opts.stop_rule && counter.checked < counter.total {
            if let Some(v) = counter.verdict() {
                stats.early_stops += 1;
                return v;
            }
        }
    }
    counter.final_verdict()
}

/// One fused dominance test updating the pair counter.
#[inline]
fn count_one(r1: &[f64], r2: &[f64], counter: &mut Counter) {
    let mut r1_better = false;
    let mut r2_better = false;
    for (&x, &y) in r1.iter().zip(r2.iter()) {
        if crate::ord::gt(x, y) {
            r1_better = true;
        } else if crate::ord::gt(y, x) {
            r2_better = true;
        }
    }
    if r1_better && !r2_better {
        counter.n12 += 1;
    } else if r2_better && !r1_better {
        counter.n21 += 1;
    }
}

/// Exhaustive comparison of two groups without any optimization: the oracle
/// the optimized paths are differentially tested against.
pub fn compare_groups_exhaustive(
    ds: &GroupedDataset,
    g1: GroupId,
    g2: GroupId,
    gamma: Gamma,
) -> PairVerdict {
    let p12 = crate::gamma::domination_probability(ds, g1, g2);
    let p21 = crate::gamma::domination_probability(ds, g2, g1);
    let level = |p: f64| {
        if gamma.strongly_dominated(p) {
            DomLevel::GammaBar
        } else if gamma.dominated(p) {
            DomLevel::Gamma
        } else {
            DomLevel::None
        }
    };
    PairVerdict { forward: level(p12), backward: level(p21) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;

    fn opts(stop: bool, bar: bool) -> PairOptions {
        PairOptions { stop_rule: stop, need_bar: bar, corrected_bar: false }
    }

    fn ds_tarantino_wiseau() -> GroupedDataset {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("T", &[vec![313.0, 8.2], vec![557.0, 9.0]]).unwrap();
        b.push_group("W", &[vec![10.0, 3.2], vec![12.0, 2.9]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn strict_dominance_is_gamma_bar() {
        let ds = ds_tarantino_wiseau();
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, Gamma::DEFAULT, None, opts(true, true), &mut stats);
        assert_eq!(v.forward, DomLevel::GammaBar);
        assert_eq!(v.backward, DomLevel::None);
    }

    #[test]
    fn bbox_shortcut_avoids_all_record_pairs() {
        let ds = ds_tarantino_wiseau();
        let boxes = Mbb::of_all_groups(&ds);
        let mut stats = Stats::default();
        let v = compare_groups(
            &ds,
            0,
            1,
            Gamma::DEFAULT,
            Some((&boxes[0], &boxes[1])),
            opts(true, true),
            &mut stats,
        );
        assert_eq!(v.forward, DomLevel::GammaBar);
        assert_eq!(stats.record_pairs, 0);
        assert_eq!(stats.bbox_resolved, 1);
    }

    #[test]
    fn incomparable_groups() {
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("A", &[vec![0.0, 10.0], vec![1.0, 9.0]]).unwrap();
        b.push_group("B", &[vec![10.0, 0.0], vec![9.0, 1.0]]).unwrap();
        let ds = b.build().unwrap();
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, Gamma::DEFAULT, None, opts(true, true), &mut stats);
        assert_eq!(v, PairVerdict::INCOMPARABLE);
    }

    #[test]
    fn verdict_matches_exhaustive_oracle_on_counterexample_groups() {
        // Proposition 3 counterexample: p(G2 ≻ G1) = 2/3.
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("G1", &[vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        b.push_group("G2", &[vec![2.0, 3.0]]).unwrap();
        let ds = b.build().unwrap();
        let boxes = Mbb::of_all_groups(&ds);
        let oracle = compare_groups_exhaustive(&ds, 0, 1, Gamma::DEFAULT);
        for stop in [false, true] {
            for bbox in [false, true] {
                let mut stats = Stats::default();
                let boxes_arg = bbox.then_some((&boxes[0], &boxes[1]));
                let v = compare_groups(
                    &ds,
                    0,
                    1,
                    Gamma::DEFAULT,
                    boxes_arg,
                    opts(stop, true),
                    &mut stats,
                );
                assert_eq!(v, oracle, "stop={stop} bbox={bbox}");
            }
        }
        // 2/3 > γ̄(0.5) ≈ .646: strong domination by G2.
        assert_eq!(oracle.backward, DomLevel::GammaBar);
        assert_eq!(oracle.forward, DomLevel::None);
    }

    #[test]
    fn need_bar_false_still_detects_gamma_level() {
        let ds = ds_tarantino_wiseau();
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, Gamma::DEFAULT, None, opts(true, false), &mut stats);
        assert!(v.forward.dominates());
    }

    #[test]
    fn gamma_one_requires_total_domination() {
        let mut b = GroupedDatasetBuilder::new(2);
        // g1 dominates 3 of 4 pairs; at γ = 1 that is not domination.
        b.push_group("g1", &[vec![5.0, 5.0], vec![2.0, 2.0]]).unwrap();
        b.push_group("g2", &[vec![1.0, 1.0], vec![3.0, 3.0]]).unwrap();
        let ds = b.build().unwrap();
        let g1 = Gamma::new(1.0).unwrap();
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, g1, None, opts(true, true), &mut stats);
        assert_eq!(v, PairVerdict::INCOMPARABLE);
        // At γ = .5 the 3/4 probability does dominate.
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, Gamma::DEFAULT, None, opts(true, true), &mut stats);
        assert_eq!(v.forward, DomLevel::GammaBar); // 3/4 > .6464
    }

    #[test]
    fn early_stop_fires_on_large_onesided_groups() {
        // g1 has 100 records all dominating g2's 100 records; the stop rule
        // should certify γ̄-domination long before 10 000 comparisons.
        let rows1: Vec<Vec<f64>> = (0..100).map(|i| vec![100.0 + i as f64, 100.0]).collect();
        let rows2: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 1.0]).collect();
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("hi", &rows1).unwrap();
        b.push_group("lo", &rows2).unwrap();
        let ds = b.build().unwrap();
        let mut stats = Stats::default();
        let v = compare_groups(&ds, 0, 1, Gamma::DEFAULT, None, opts(true, true), &mut stats);
        assert_eq!(v.forward, DomLevel::GammaBar);
        assert_eq!(stats.early_stops, 1);
        assert!(stats.record_pairs < 10_000, "checked {} pairs", stats.record_pairs);
    }
}
