//! The aggregate *skycube*: the aggregate skyline of every non-empty
//! subspace of the skyline attributes (the group-level analogue of the data
//! cube skyline work the paper cites).
//!
//! Analysts rarely know up front which criteria matter; the skycube answers
//! "who survives under *any* subset of the criteria" in one call, and the
//! per-group summary tells how robust each group is across subspaces.

use crate::algorithms::{AlgoOptions, Algorithm};
use crate::dataset::{GroupId, GroupedDataset};
use crate::error::Result;
use crate::gamma::Gamma;

/// One subspace's skyline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubspaceSkyline {
    /// The selected dimensions (ascending).
    pub dims: Vec<usize>,
    /// Groups in the aggregate skyline of that subspace, ascending.
    pub skyline: Vec<GroupId>,
}

/// The full skycube: `2^d − 1` subspace skylines.
#[derive(Debug, Clone)]
pub struct Skycube {
    /// All subspaces, ordered by ascending dimension-mask value.
    pub subspaces: Vec<SubspaceSkyline>,
    /// Number of groups in the underlying dataset.
    n_groups: usize,
}

impl Skycube {
    /// Looks up the skyline of one subspace (dims in any order).
    pub fn skyline_of(&self, dims: &[usize]) -> Option<&[GroupId]> {
        let mut key: Vec<usize> = dims.to_vec();
        key.sort_unstable();
        key.dedup();
        self.subspaces.iter().find(|s| s.dims == key).map(|s| s.skyline.as_slice())
    }

    /// For each group, in how many subspaces it appears in the skyline.
    pub fn appearance_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_groups];
        for s in &self.subspaces {
            for &g in &s.skyline {
                counts[g] += 1;
            }
        }
        counts
    }

    /// Groups that appear in *every* subspace skyline ("all-round winners").
    pub fn universal_groups(&self) -> Vec<GroupId> {
        let counts = self.appearance_counts();
        let total = self.subspaces.len();
        counts.into_iter().enumerate().filter(|&(_, c)| c == total).map(|(g, _)| g).collect()
    }
}

/// Computes the aggregate skyline of every non-empty subset of dimensions
/// (so `2^d − 1` skylines; `d` is capped at 12 to keep the cube finite).
/// Each subspace uses the indexed algorithm with exact pruning.
pub fn skycube(ds: &GroupedDataset, gamma: Gamma) -> Result<Skycube> {
    let d = ds.dim();
    assert!(d <= 12, "skycube over {d} dimensions would have {} subspaces", (1u64 << d) - 1);
    let mut subspaces = Vec::with_capacity((1usize << d) - 1);
    let opts = AlgoOptions::exact(gamma);
    for mask in 1usize..(1 << d) {
        let dims: Vec<usize> = (0..d).filter(|i| mask & (1 << i) != 0).collect();
        let projected = ds.project(&dims)?;
        let result = Algorithm::Indexed.run_with(&projected, opts)?;
        subspaces.push(SubspaceSkyline { dims, skyline: result.skyline });
    }
    Ok(Skycube { subspaces, n_groups: ds.n_groups() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn cube_has_all_subspaces_and_matches_direct_computation() {
        let ds = movie_directors();
        let cube = skycube(&ds, Gamma::DEFAULT).unwrap();
        assert_eq!(cube.subspaces.len(), 3); // 2 dims -> {0}, {1}, {0,1}
        let full = cube.skyline_of(&[0, 1]).unwrap();
        assert_eq!(full, naive_skyline(&ds, Gamma::DEFAULT).skyline);
        // Each single-dimension skyline matches projecting then solving.
        for d in 0..2 {
            let projected = ds.project(&[d]).unwrap();
            let direct = naive_skyline(&projected, Gamma::DEFAULT).skyline;
            assert_eq!(cube.skyline_of(&[d]).unwrap(), direct, "dim {d}");
        }
    }

    #[test]
    fn lookup_normalizes_dimension_order() {
        let ds = random_dataset(8, 4, 3, 11);
        let cube = skycube(&ds, Gamma::DEFAULT).unwrap();
        assert_eq!(cube.subspaces.len(), 7);
        assert_eq!(cube.skyline_of(&[2, 0]), cube.skyline_of(&[0, 2]));
        assert!(cube.skyline_of(&[5]).is_none());
    }

    #[test]
    fn appearance_counts_and_universal_groups() {
        let ds = random_dataset(10, 5, 3, 13);
        let cube = skycube(&ds, Gamma::DEFAULT).unwrap();
        let counts = cube.appearance_counts();
        assert_eq!(counts.len(), ds.n_groups());
        for &c in &counts {
            assert!(c <= cube.subspaces.len());
        }
        for g in cube.universal_groups() {
            assert_eq!(counts[g], cube.subspaces.len());
        }
        // Universal groups are, in particular, in the full-space skyline.
        let full = naive_skyline(&ds, Gamma::DEFAULT).skyline;
        for g in cube.universal_groups() {
            assert!(full.contains(&g));
        }
    }

    #[test]
    fn every_subspace_skyline_is_exact() {
        let ds = random_dataset(9, 4, 3, 17);
        let cube = skycube(&ds, Gamma::DEFAULT).unwrap();
        for sub in &cube.subspaces {
            let projected = ds.project(&sub.dims).unwrap();
            let direct = naive_skyline(&projected, Gamma::DEFAULT).skyline;
            assert_eq!(sub.skyline, direct, "dims {:?}", sub.dims);
        }
    }
}
