//! Instrumentation counters collected by every algorithm run.
//!
//! Wall-clock time depends on the machine; the counters below are
//! hardware-independent measures of the work each optimization saves, and
//! they are what the benchmark harness reports next to elapsed time.

/// Work counters for one aggregate-skyline computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Pairs of groups for which a domination test was started.
    pub group_pairs: u64,
    /// Record-vs-record dominance checks actually performed.
    pub record_pairs: u64,
    /// Group pairs fully resolved by bounding-box reasoning alone
    /// (Figure 9(b) strict-dominance shortcut).
    pub bbox_resolved: u64,
    /// Record comparisons avoided by the Figure 9(c) region decomposition
    /// (pairs whose outcome was derived from MBB corners).
    pub bbox_skipped_pairs: u64,
    /// Group pairs whose pairwise loop terminated early via the Section 3.3
    /// stopping rule.
    pub early_stops: u64,
    /// Group comparisons skipped because one side was already strongly
    /// dominated (weak-transitivity pruning, Algorithm 3).
    pub transitive_skips: u64,
    /// Candidate groups returned by spatial-index window queries
    /// (Algorithm 5); group pairs never returned were pruned for free.
    pub index_candidates: u64,
    /// Block pairs the blocked kernel resolved as *fully dominating* in
    /// O(1) (one block's MBB min corner dominates the other's max corner:
    /// Figure 9(b) at record-block granularity).
    pub blocks_full: u64,
    /// Block pairs the blocked kernel skipped in O(1) because neither
    /// block's MBB allows a dominating record pair in either direction.
    pub blocks_skipped: u64,
    /// Record-vs-record dominance tests performed inside the blocked
    /// kernel's straddling-block loops (compare against `record_pairs` of
    /// an exhaustive run to measure what block pruning saved).
    pub records_compared: u64,
    /// Chunks the parallel scheduler re-queued after a worker panic (each
    /// retry is one incident; the query still completes unless the
    /// per-chunk attempt cap is exhausted).
    pub worker_retries: u64,
    /// Workers the parallel scheduler quarantined (stopped handing work to)
    /// after they panicked while other workers survived.
    pub workers_quarantined: u64,
}

impl Stats {
    /// Merges the counters of another run into this one (used by the
    /// parallel driver and by benchmark aggregation).
    pub fn merge(&mut self, other: &Stats) {
        self.group_pairs += other.group_pairs;
        self.record_pairs += other.record_pairs;
        self.bbox_resolved += other.bbox_resolved;
        self.bbox_skipped_pairs += other.bbox_skipped_pairs;
        self.early_stops += other.early_stops;
        self.transitive_skips += other.transitive_skips;
        self.index_candidates += other.index_candidates;
        self.blocks_full += other.blocks_full;
        self.blocks_skipped += other.blocks_skipped;
        self.records_compared += other.records_compared;
        self.worker_retries += other.worker_retries;
        self.workers_quarantined += other.workers_quarantined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats { group_pairs: 1, record_pairs: 10, ..Stats::default() };
        let b = Stats { group_pairs: 2, record_pairs: 5, early_stops: 1, ..Stats::default() };
        a.merge(&b);
        assert_eq!(a.group_pairs, 3);
        assert_eq!(a.record_pairs, 15);
        assert_eq!(a.early_stops, 1);
    }

    #[test]
    fn merge_adds_incident_counters() {
        let mut a = Stats { worker_retries: 1, ..Stats::default() };
        let b = Stats { worker_retries: 2, workers_quarantined: 1, ..Stats::default() };
        a.merge(&b);
        assert_eq!(a.worker_retries, 3);
        assert_eq!(a.workers_quarantined, 1);
    }
}
