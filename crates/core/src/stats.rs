//! Instrumentation counters collected by every algorithm run.
//!
//! Wall-clock time depends on the machine; the counters below are
//! hardware-independent measures of the work each optimization saves, and
//! they are what the benchmark harness reports next to elapsed time.

use aggsky_obs::{Counter, Recorder};

/// Work counters for one aggregate-skyline computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Pairs of groups for which a domination test was started.
    pub group_pairs: u64,
    /// Record-vs-record dominance checks actually performed.
    pub record_pairs: u64,
    /// Group pairs fully resolved by bounding-box reasoning alone
    /// (Figure 9(b) strict-dominance shortcut).
    pub bbox_resolved: u64,
    /// Record comparisons avoided by the Figure 9(c) region decomposition
    /// (pairs whose outcome was derived from MBB corners).
    pub bbox_skipped_pairs: u64,
    /// Group pairs whose pairwise loop terminated early via the Section 3.3
    /// stopping rule.
    pub early_stops: u64,
    /// Group comparisons skipped because one side was already strongly
    /// dominated (weak-transitivity pruning, Algorithm 3).
    pub transitive_skips: u64,
    /// Candidate groups returned by spatial-index window queries
    /// (Algorithm 5); group pairs never returned were pruned for free.
    pub index_candidates: u64,
    /// Block pairs the blocked kernel resolved as *fully dominating* in
    /// O(1) (one block's MBB min corner dominates the other's max corner:
    /// Figure 9(b) at record-block granularity).
    pub blocks_full: u64,
    /// Block pairs the blocked kernel skipped in O(1) because neither
    /// block's MBB allows a dominating record pair in either direction.
    pub blocks_skipped: u64,
    /// Record-vs-record dominance tests performed inside the blocked
    /// kernel's straddling-block loops (compare against `record_pairs` of
    /// an exhaustive run to measure what block pruning saved).
    pub records_compared: u64,
    /// Chunks the parallel scheduler re-queued after a worker panic (each
    /// retry is one incident; the query still completes unless the
    /// per-chunk attempt cap is exhausted).
    pub worker_retries: u64,
    /// Workers the parallel scheduler quarantined (stopped handing work to)
    /// after they panicked while other workers survived.
    pub workers_quarantined: u64,
    /// Group comparisons fully served from a [`crate::PairCache`] entry
    /// (memoized evidence already decided the pair under the caller's γ).
    pub cache_hits: u64,
    /// Group comparisons that found no cache entry and counted from the
    /// start of the block cursor.
    pub cache_misses: u64,
    /// Group comparisons that found a *partial* cache entry and resumed
    /// counting from its cursor instead of from scratch.
    pub cache_resumes: u64,
}

impl Stats {
    /// Merges the counters of another run into this one (used by the
    /// parallel driver and by benchmark aggregation).
    ///
    /// The full-struct destructuring (no `..` rest pattern) is deliberate:
    /// adding a field to [`Stats`] without deciding how it merges becomes a
    /// compile error instead of a silently dropped counter.
    pub fn merge(&mut self, other: &Stats) {
        let Stats {
            group_pairs,
            record_pairs,
            bbox_resolved,
            bbox_skipped_pairs,
            early_stops,
            transitive_skips,
            index_candidates,
            blocks_full,
            blocks_skipped,
            records_compared,
            worker_retries,
            workers_quarantined,
            cache_hits,
            cache_misses,
            cache_resumes,
        } = *other;
        self.group_pairs += group_pairs;
        self.record_pairs += record_pairs;
        self.bbox_resolved += bbox_resolved;
        self.bbox_skipped_pairs += bbox_skipped_pairs;
        self.early_stops += early_stops;
        self.transitive_skips += transitive_skips;
        self.index_candidates += index_candidates;
        self.blocks_full += blocks_full;
        self.blocks_skipped += blocks_skipped;
        self.records_compared += records_compared;
        self.worker_retries += worker_retries;
        self.workers_quarantined += workers_quarantined;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.cache_resumes += cache_resumes;
    }

    /// Dumps every counter into an observability recorder, field-for-field.
    /// Same exhaustive destructuring as [`Stats::merge`]: a new field must
    /// be mapped to an [`aggsky_obs::Counter`] (or explicitly ignored here)
    /// before the crate compiles again.
    pub fn record_to(&self, rec: &dyn Recorder) {
        let Stats {
            group_pairs,
            record_pairs,
            bbox_resolved,
            bbox_skipped_pairs,
            early_stops,
            transitive_skips,
            index_candidates,
            blocks_full,
            blocks_skipped,
            records_compared,
            worker_retries,
            workers_quarantined,
            cache_hits,
            cache_misses,
            cache_resumes,
        } = *self;
        rec.add(Counter::GroupPairs, group_pairs);
        rec.add(Counter::RecordPairs, record_pairs);
        rec.add(Counter::BboxResolved, bbox_resolved);
        rec.add(Counter::BboxSkippedPairs, bbox_skipped_pairs);
        rec.add(Counter::EarlyStops, early_stops);
        rec.add(Counter::TransitiveSkips, transitive_skips);
        rec.add(Counter::IndexCandidates, index_candidates);
        rec.add(Counter::BlocksFull, blocks_full);
        rec.add(Counter::BlocksSkipped, blocks_skipped);
        rec.add(Counter::RecordsCompared, records_compared);
        rec.add(Counter::WorkerRetries, worker_retries);
        rec.add(Counter::WorkersQuarantined, workers_quarantined);
        rec.add(Counter::CacheHits, cache_hits);
        rec.add(Counter::CacheMisses, cache_misses);
        rec.add(Counter::CacheResumes, cache_resumes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Stats` with every field set to a distinct non-zero value, so a
    /// field silently dropped by `merge` or `record_to` fails an assertion
    /// rather than comparing 0 == 0.
    fn all_nonzero() -> Stats {
        Stats {
            group_pairs: 1,
            record_pairs: 2,
            bbox_resolved: 3,
            bbox_skipped_pairs: 4,
            early_stops: 5,
            transitive_skips: 6,
            index_candidates: 7,
            blocks_full: 8,
            blocks_skipped: 9,
            records_compared: 10,
            worker_retries: 11,
            workers_quarantined: 12,
            cache_hits: 13,
            cache_misses: 14,
            cache_resumes: 15,
        }
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = all_nonzero();
        let b = all_nonzero();
        a.merge(&b);
        assert_eq!(
            a,
            Stats {
                group_pairs: 2,
                record_pairs: 4,
                bbox_resolved: 6,
                bbox_skipped_pairs: 8,
                early_stops: 10,
                transitive_skips: 12,
                index_candidates: 14,
                blocks_full: 16,
                blocks_skipped: 18,
                records_compared: 20,
                worker_retries: 22,
                workers_quarantined: 24,
                cache_hits: 26,
                cache_misses: 28,
                cache_resumes: 30,
            }
        );
        // Merging into a default leaves an exact copy: nothing dropped.
        let mut zero = Stats::default();
        zero.merge(&all_nonzero());
        assert_eq!(zero, all_nonzero());
    }

    #[test]
    fn merge_adds_incident_counters() {
        let mut a = Stats { worker_retries: 1, ..Stats::default() };
        let b = Stats { worker_retries: 2, workers_quarantined: 1, ..Stats::default() };
        a.merge(&b);
        assert_eq!(a.worker_retries, 3);
        assert_eq!(a.workers_quarantined, 1);
    }

    #[test]
    fn record_to_exports_every_field() {
        use aggsky_obs::{Counter, TraceRecorder};
        let rec = TraceRecorder::new();
        all_nonzero().record_to(&rec);
        let snap = rec.snapshot();
        assert_eq!(snap.metrics.counter(Counter::GroupPairs), 1);
        assert_eq!(snap.metrics.counter(Counter::RecordPairs), 2);
        assert_eq!(snap.metrics.counter(Counter::BboxResolved), 3);
        assert_eq!(snap.metrics.counter(Counter::BboxSkippedPairs), 4);
        assert_eq!(snap.metrics.counter(Counter::EarlyStops), 5);
        assert_eq!(snap.metrics.counter(Counter::TransitiveSkips), 6);
        assert_eq!(snap.metrics.counter(Counter::IndexCandidates), 7);
        assert_eq!(snap.metrics.counter(Counter::BlocksFull), 8);
        assert_eq!(snap.metrics.counter(Counter::BlocksSkipped), 9);
        assert_eq!(snap.metrics.counter(Counter::RecordsCompared), 10);
        assert_eq!(snap.metrics.counter(Counter::WorkerRetries), 11);
        assert_eq!(snap.metrics.counter(Counter::WorkersQuarantined), 12);
        assert_eq!(snap.metrics.counter(Counter::CacheHits), 13);
        assert_eq!(snap.metrics.counter(Counter::CacheMisses), 14);
        assert_eq!(snap.metrics.counter(Counter::CacheResumes), 15);
    }
}
