//! Error types for dataset construction and operator configuration.

use std::fmt;

/// Errors raised while building a [`crate::GroupedDataset`] or configuring an
/// aggregate-skyline computation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A record had a different number of dimensions than the dataset.
    DimensionMismatch {
        /// Dimensionality declared by the dataset.
        expected: usize,
        /// Dimensionality of the offending record.
        got: usize,
    },
    /// A record contained a non-finite value (NaN or ±∞). Dominance is
    /// undefined on NaN, and infinities break the coordinate-sum ordering
    /// the blocked kernel relies on, so both are rejected at ingestion.
    NonFiniteValue {
        /// Index of the dimension holding the non-finite value.
        dimension: usize,
    },
    /// The dataset has zero dimensions.
    ZeroDimensions,
    /// A group with the given label was inserted twice.
    DuplicateGroup(String),
    /// A group was added with no records; empty groups have no defined
    /// domination probability (the denominator `|R|·|S|` would be zero).
    EmptyGroup(String),
    /// A record index was outside a group's bounds.
    RecordIndexOutOfRange {
        /// Group label.
        group: String,
        /// Requested record index.
        index: usize,
        /// Number of records in the group.
        len: usize,
    },
    /// γ was outside `[0.5, 1]`; Proposition 1 requires `γ ≥ 0.5` for the
    /// dominance relation to be asymmetric.
    InvalidGamma(f64),
    /// A group exceeded [`crate::dataset::MAX_GROUP_LEN`] records, the cap
    /// that keeps every pair-count denominator `|S|·|R|` below `2⁶⁴`.
    GroupTooLarge {
        /// Group label.
        group: String,
        /// Attempted record count.
        len: usize,
    },
    /// `|S|·|R|` overflowed `u64`; a wrapped denominator would silently
    /// inflate domination probabilities, so counting refuses to proceed.
    PairCountOverflow {
        /// `|S|`.
        len_s: usize,
        /// `|R|`.
        len_r: usize,
    },
    /// An operator was configured with an out-of-domain argument (e.g. a
    /// kernel block size of zero). The message names the argument and the
    /// accepted domain.
    InvalidArgument(String),
    /// A parallel worker panicked and the scheduler exhausted its per-chunk
    /// retry budget (or, for the static strided scheduler, retries are not
    /// attempted at all). Transient panics are retried and quarantined
    /// instead — see `Stats::worker_retries` / `workers_quarantined`.
    WorkerPanicked {
        /// Index of the worker that observed the final panic.
        worker: usize,
        /// First group id of the chunk whose retries were exhausted.
        chunk: usize,
    },
    /// A checkpoint I/O operation failed (the message names the path and
    /// the underlying OS error). Carried as a string because [`Error`] is
    /// `Clone + PartialEq` and `std::io::Error` is neither.
    Io(String),
    /// Resume state failed validation: a frame that decodes but mentions
    /// out-of-range group ids, block cursors beyond the kernel's block-pair
    /// space, or tallies that exceed their denominators. Resuming from such
    /// state could be silently wrong, so it is refused instead.
    CorruptCheckpoint(String),
    /// A structurally valid checkpoint was produced by a *different*
    /// dataset or configuration (its embedded fingerprint does not match
    /// the caller's). Distinct from [`Error::CorruptCheckpoint`]: the frame
    /// is intact, it just answers a different question.
    CheckpointMismatch(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "record has {got} dimensions, dataset expects {expected}")
            }
            Error::NonFiniteValue { dimension } => {
                write!(
                    f,
                    "non-finite value in dimension {dimension}; dominance counting requires \
                     finite coordinates"
                )
            }
            Error::ZeroDimensions => write!(f, "dataset must have at least one dimension"),
            Error::DuplicateGroup(label) => write!(f, "group {label:?} inserted twice"),
            Error::EmptyGroup(label) => write!(f, "group {label:?} has no records"),
            Error::RecordIndexOutOfRange { group, index, len } => {
                write!(f, "record index {index} out of range for group {group:?} of {len} records")
            }
            Error::InvalidGamma(g) => {
                write!(f, "gamma {g} outside [0.5, 1]; asymmetry requires gamma >= 0.5")
            }
            Error::GroupTooLarge { group, len } => {
                write!(
                    f,
                    "group {group:?} has {len} records, above the cap that keeps |S|*|R| \
                     pair counts below 2^64"
                )
            }
            Error::PairCountOverflow { len_s, len_r } => {
                write!(f, "pair count {len_s}*{len_r} overflows u64")
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::WorkerPanicked { worker, chunk } => {
                write!(
                    f,
                    "parallel worker {worker} panicked repeatedly on the chunk starting at \
                     group {chunk}; retries exhausted"
                )
            }
            Error::Io(msg) => write!(f, "checkpoint i/o failed: {msg}"),
            Error::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
            Error::CheckpointMismatch(msg) => {
                write!(f, "checkpoint belongs to a different dataset/configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
