//! Error types for dataset construction and operator configuration.

use std::fmt;

/// Errors raised while building a [`crate::GroupedDataset`] or configuring an
/// aggregate-skyline computation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A record had a different number of dimensions than the dataset.
    DimensionMismatch {
        /// Dimensionality declared by the dataset.
        expected: usize,
        /// Dimensionality of the offending record.
        got: usize,
    },
    /// A record contained a NaN value; dominance is undefined on NaN.
    NanValue {
        /// Index of the dimension holding the NaN.
        dimension: usize,
    },
    /// The dataset has zero dimensions.
    ZeroDimensions,
    /// A group with the given label was inserted twice.
    DuplicateGroup(String),
    /// A group was added with no records; empty groups have no defined
    /// domination probability (the denominator `|R|·|S|` would be zero).
    EmptyGroup(String),
    /// A record index was outside a group's bounds.
    RecordIndexOutOfRange {
        /// Group label.
        group: String,
        /// Requested record index.
        index: usize,
        /// Number of records in the group.
        len: usize,
    },
    /// γ was outside `[0.5, 1]`; Proposition 1 requires `γ ≥ 0.5` for the
    /// dominance relation to be asymmetric.
    InvalidGamma(f64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "record has {got} dimensions, dataset expects {expected}")
            }
            Error::NanValue { dimension } => {
                write!(f, "NaN value in dimension {dimension}; dominance is undefined on NaN")
            }
            Error::ZeroDimensions => write!(f, "dataset must have at least one dimension"),
            Error::DuplicateGroup(label) => write!(f, "group {label:?} inserted twice"),
            Error::EmptyGroup(label) => write!(f, "group {label:?} has no records"),
            Error::RecordIndexOutOfRange { group, index, len } => {
                write!(f, "record index {index} out of range for group {group:?} of {len} records")
            }
            Error::InvalidGamma(g) => {
                write!(f, "gamma {g} outside [0.5, 1]; asymmetry requires gamma >= 0.5")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
