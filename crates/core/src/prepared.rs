//! One-time preprocessing of a dataset for the blocked counting kernel.
//!
//! [`PreparedDataset`] rewrites every group into *coordinate-sum descending*
//! order and cuts it into fixed-size blocks with precomputed bounding
//! corners. The invariant that makes both steps useful is that record
//! dominance implies a strictly larger coordinate sum:
//!
//! > if `r` dominates `s` then `Σ r[d] > Σ s[d]`
//!
//! (all coordinates are `≥` with at least one `>`, and the dataset is
//! normalized to MAX preference). Sorting by descending sum therefore puts
//! every record *before* all records it can possibly dominate, and two
//! records with equal sums can never dominate each other.
//!
//! The preparation is independent of γ and of any [`crate::PairOptions`]
//! tuning, so one `PreparedDataset` can be built once and shared by every
//! algorithm — and across threads — for any number of queries against the
//! same data. See [`crate::kernel`] for the counting loops that consume it.

use crate::dataset::{GroupId, GroupedDataset};
use crate::mbb::Mbb;

/// A [`GroupedDataset`] preprocessed for blocked pair counting: per-group
/// records sorted by descending coordinate sum and partitioned into blocks
/// of at most [`block_size`](PreparedDataset::block_size) records, each with
/// its bounding corners.
///
/// Building is `O(n log n)` per group and touches every value once; the
/// result is plain data (no interior mutability), so a shared reference can
/// be used concurrently from many threads.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    dim: usize,
    block_size: usize,
    /// Row-major record values, each group's rows sorted by descending sum.
    values: Vec<f64>,
    /// Coordinate sum of each (sorted) record, parallel to the rows.
    sums: Vec<f64>,
    /// `offsets[g]..offsets[g+1]` is the row range of group `g`.
    offsets: Vec<usize>,
    /// `block_offsets[g]..block_offsets[g+1]` is the global block-index
    /// range of group `g`.
    block_offsets: Vec<usize>,
    /// Per-dimension minima of each block, `dim` values per block.
    block_min: Vec<f64>,
    /// Per-dimension maxima of each block, `dim` values per block.
    block_max: Vec<f64>,
    /// Group bounding boxes (identical to [`Mbb::of_all_groups`]), computed
    /// for free while scanning the blocks.
    mbbs: Vec<Mbb>,
}

/// Borrowed view of one record block of a [`PreparedDataset`].
///
/// Blocks are never empty; `sums` is sorted descending and parallel to the
/// rows of `rows`.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    /// Per-dimension minima over the block's records (the block MBB's
    /// "worst" corner under MAX preference).
    pub min: &'a [f64],
    /// Per-dimension maxima over the block's records (the "best" corner).
    pub max: &'a [f64],
    /// The block's records, row-major (`len * dim` values).
    pub rows: &'a [f64],
    /// Coordinate sums of the block's records, descending.
    pub sums: &'a [f64],
}

impl BlockView<'_> {
    /// Number of records in the block (at least 1, at most the block size).
    #[inline]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Blocks are never empty; provided for clippy's `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }
}

impl PreparedDataset {
    /// Default number of records per block. Small blocks win because their
    /// corners are tight: on an independent 5-d workload, size 8 lets the
    /// O(1) full / skip classification absorb ~4× more record pairs than
    /// size 64 (whose per-block boxes approach the whole group's MBB), and
    /// the two corner tests per block pair stay negligible next to the up
    /// to 64 record pairs they summarize.
    pub const DEFAULT_BLOCK_SIZE: usize = 8;

    /// Preprocesses `ds`: sorts each group by descending coordinate sum and
    /// materializes per-block bounding corners.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn build(ds: &GroupedDataset, block_size: usize) -> PreparedDataset {
        assert!(block_size > 0, "block_size must be positive");
        let dim = ds.dim();
        let n_groups = ds.n_groups();
        let mut values = Vec::with_capacity(ds.n_records() * dim);
        let mut sums = Vec::with_capacity(ds.n_records());
        let mut offsets = Vec::with_capacity(n_groups + 1);
        offsets.push(0);
        let mut block_offsets = Vec::with_capacity(n_groups + 1);
        block_offsets.push(0);
        let mut block_min = Vec::new();
        let mut block_max = Vec::new();
        let mut mbbs = Vec::with_capacity(n_groups);
        let mut order: Vec<(f64, usize)> = Vec::new();
        for g in ds.group_ids() {
            order.clear();
            order.extend(ds.records(g).enumerate().map(|(i, r)| (r.iter().sum::<f64>(), i)));
            // Descending sum; ties broken by original index so the layout is
            // deterministic regardless of the sort implementation.
            order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let base = values.len();
            for &(s, i) in order.iter() {
                sums.push(s);
                values.extend_from_slice(ds.record(g, i));
            }
            offsets.push(values.len() / dim);
            let len = order.len();
            let rows = &values[base..];
            let mut g_min = vec![f64::INFINITY; dim];
            let mut g_max = vec![f64::NEG_INFINITY; dim];
            for start in (0..len).step_by(block_size) {
                let end = (start + block_size).min(len);
                let at = block_min.len();
                block_min.resize(at + dim, f64::INFINITY);
                block_max.resize(at + dim, f64::NEG_INFINITY);
                for r in rows[start * dim..end * dim].chunks_exact(dim) {
                    for d in 0..dim {
                        block_min[at + d] = block_min[at + d].min(r[d]);
                        block_max[at + d] = block_max[at + d].max(r[d]);
                    }
                }
                for d in 0..dim {
                    g_min[d] = g_min[d].min(block_min[at + d]);
                    g_max[d] = g_max[d].max(block_max[at + d]);
                }
            }
            block_offsets.push(block_min.len() / dim);
            mbbs.push(Mbb { min: g_min, max: g_max });
        }
        let prep = PreparedDataset {
            dim,
            block_size,
            values,
            sums,
            offsets,
            block_offsets,
            block_min,
            block_max,
            mbbs,
        };
        crate::invariants::check_prepared(ds, &prep);
        prep
    }

    /// Number of dimensions of every record.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum number of records per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of groups.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of records.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// Number of records in group `g`.
    #[inline]
    pub fn group_len(&self, g: GroupId) -> usize {
        self.offsets[g + 1] - self.offsets[g]
    }

    /// Number of blocks of group `g` (`ceil(group_len / block_size)`).
    #[inline]
    pub fn n_blocks(&self, g: GroupId) -> usize {
        self.block_offsets[g + 1] - self.block_offsets[g]
    }

    /// Bounding box of group `g`.
    #[inline]
    pub fn mbb(&self, g: GroupId) -> &Mbb {
        &self.mbbs[g]
    }

    /// Bounding boxes of all groups, indexed by [`GroupId`]; identical to
    /// [`Mbb::of_all_groups`] on the source dataset.
    #[inline]
    pub fn mbbs(&self) -> &[Mbb] {
        &self.mbbs
    }

    /// Record `i` of group `g` **in sorted order** (not the source
    /// dataset's record order).
    #[inline]
    pub fn record(&self, g: GroupId, i: usize) -> &[f64] {
        let row = self.offsets[g] + i;
        debug_assert!(row < self.offsets[g + 1]);
        &self.values[row * self.dim..(row + 1) * self.dim]
    }

    /// Coordinate sums of group `g`'s records, descending.
    #[inline]
    pub fn group_sums(&self, g: GroupId) -> &[f64] {
        &self.sums[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Block `b` (0-based within the group) of group `g`.
    #[inline]
    pub fn block(&self, g: GroupId, b: usize) -> BlockView<'_> {
        let gb = self.block_offsets[g] + b;
        debug_assert!(gb < self.block_offsets[g + 1]);
        let start = self.offsets[g] + b * self.block_size;
        let end = (start + self.block_size).min(self.offsets[g + 1]);
        BlockView {
            min: &self.block_min[gb * self.dim..(gb + 1) * self.dim],
            max: &self.block_max[gb * self.dim..(gb + 1) * self.dim],
            rows: &self.values[start * self.dim..end * self.dim],
            sums: &self.sums[start..end],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn sums_are_descending_within_each_group() {
        let ds = random_dataset(10, 9, 3, 77);
        let prep = PreparedDataset::build(&ds, 4);
        for g in 0..prep.n_groups() {
            let sums = prep.group_sums(g);
            assert!(sums.windows(2).all(|w| w[0] >= w[1]), "group {g} not sorted");
            for (i, s) in sums.iter().enumerate() {
                let expect: f64 = prep.record(g, i).iter().sum();
                assert_eq!(*s, expect);
            }
        }
    }

    #[test]
    fn preparation_is_a_permutation_of_each_group() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 2);
        for g in ds.group_ids() {
            let mut original: Vec<Vec<f64>> = ds.records(g).map(|r| r.to_vec()).collect();
            let mut prepared: Vec<Vec<f64>> =
                (0..prep.group_len(g)).map(|i| prep.record(g, i).to_vec()).collect();
            original.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prepared.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(original, prepared, "group {g}");
        }
    }

    #[test]
    fn group_mbbs_match_unprepared_computation() {
        let ds = random_dataset(12, 7, 4, 5);
        let prep = PreparedDataset::build(&ds, 3);
        assert_eq!(prep.mbbs(), &Mbb::of_all_groups(&ds)[..]);
    }

    #[test]
    fn blocks_partition_each_group_and_bound_their_records() {
        let ds = random_dataset(8, 11, 3, 42);
        for block_size in [1, 2, 5, 64] {
            let prep = PreparedDataset::build(&ds, block_size);
            for g in 0..prep.n_groups() {
                let len = prep.group_len(g);
                assert_eq!(prep.n_blocks(g), len.div_ceil(block_size));
                let mut covered = 0;
                for b in 0..prep.n_blocks(g) {
                    let view = prep.block(g, b);
                    assert!(!view.is_empty());
                    assert!(view.len() <= block_size);
                    covered += view.len();
                    for r in view.rows.chunks_exact(prep.dim()) {
                        for (d, &v) in r.iter().enumerate() {
                            assert!(view.min[d] <= v && v <= view.max[d]);
                        }
                    }
                }
                assert_eq!(covered, len, "blocks must partition group {g}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        let ds = movie_directors();
        PreparedDataset::build(&ds, 0);
    }
}
