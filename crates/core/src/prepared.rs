//! One-time preprocessing of a dataset for the blocked counting kernel.
//!
//! [`PreparedDataset`] rewrites every group into *coordinate-sum descending*
//! order and cuts it into fixed-size blocks with precomputed bounding
//! corners. The invariant that makes both steps useful is that record
//! dominance implies a strictly larger coordinate sum:
//!
//! > if `r` dominates `s` then `Σ r[d] > Σ s[d]`
//!
//! (all coordinates are `≥` with at least one `>`, and the dataset is
//! normalized to MAX preference). Sorting by descending sum therefore puts
//! every record *before* all records it can possibly dominate, and two
//! records with equal sums can never dominate each other.
//!
//! The preparation is independent of γ and of any [`crate::PairOptions`]
//! tuning, so one `PreparedDataset` can be built once and shared by every
//! algorithm — and across threads — for any number of queries against the
//! same data. See [`crate::kernel`] for the counting loops that consume it.

use crate::dataset::{GroupId, GroupedDataset};
use crate::error::{Error, Result};
use crate::mbb::Mbb;

/// Largest block size for which the columnar key lanes are materialized:
/// one lane fits in a `u64` bitmask, so the lane kernel can express "which
/// records of this block does the probe dominate" as a single word.
pub const MAX_LANE_BLOCK: usize = 64;

/// Number of `i64` elements per SIMD vector (`__m256i`). Key lanes are
/// padded to a multiple of this, so the AVX2 kernel ([`crate::simd`]) can
/// load every lane as whole unaligned vectors with no scalar tail; the pad
/// slots carry the same incomparable sentinels as block padding and are
/// masked off by [`LaneBlock::valid_mask`] either way.
pub const LANE_VECTOR: usize = 4;

/// A [`GroupedDataset`] preprocessed for blocked pair counting: per-group
/// records sorted by descending coordinate sum and partitioned into blocks
/// of at most [`block_size`](PreparedDataset::block_size) records, each with
/// its bounding corners.
///
/// Building is `O(n log n)` per group and touches every value once; the
/// result is plain data (no interior mutability), so a shared reference can
/// be used concurrently from many threads.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    dim: usize,
    block_size: usize,
    /// Row-major record values, each group's rows sorted by descending sum.
    values: Vec<f64>,
    /// Coordinate sum of each (sorted) record, parallel to the rows.
    sums: Vec<f64>,
    /// `offsets[g]..offsets[g+1]` is the row range of group `g`.
    offsets: Vec<usize>,
    /// `block_offsets[g]..block_offsets[g+1]` is the global block-index
    /// range of group `g`.
    block_offsets: Vec<usize>,
    /// Per-dimension minima of each block, `dim` values per block.
    block_min: Vec<f64>,
    /// Per-dimension maxima of each block, `dim` values per block.
    block_max: Vec<f64>,
    /// Group bounding boxes (identical to [`Mbb::of_all_groups`]), computed
    /// for free while scanning the blocks.
    mbbs: Vec<Mbb>,
    /// Columnar structure-of-arrays mirror of `values`, in the integer key
    /// space of [`crate::dominance::sort_key`]: per block, `dim + 1`
    /// contiguous lanes of `block_size` keys each (`dim` coordinate lanes
    /// followed by one coordinate-sum lane), padded to the block size with
    /// sentinels that can neither dominate nor be dominated. Empty when
    /// `block_size > MAX_LANE_BLOCK` (see `lanes`).
    keys: Vec<i64>,
    /// Whether `keys` was materialized (`block_size <= MAX_LANE_BLOCK`).
    lanes: bool,
    /// Lane stride of `keys`: `block_size` rounded up to a multiple of
    /// [`LANE_VECTOR`] so the SIMD kernel loads whole vectors only.
    lane_width: usize,
}

/// Borrowed view of one record block of a [`PreparedDataset`].
///
/// Blocks are never empty; `sums` is sorted descending and parallel to the
/// rows of `rows`.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    /// Per-dimension minima over the block's records (the block MBB's
    /// "worst" corner under MAX preference).
    pub min: &'a [f64],
    /// Per-dimension maxima over the block's records (the "best" corner).
    pub max: &'a [f64],
    /// The block's records, row-major (`len * dim` values).
    pub rows: &'a [f64],
    /// Coordinate sums of the block's records, descending.
    pub sums: &'a [f64],
}

impl BlockView<'_> {
    /// Number of records in the block (at least 1, at most the block size).
    #[inline]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Blocks are never empty; provided for clippy's `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }
}

/// Borrowed view of one block's columnar key lanes.
///
/// `keys` holds `dim + 1` lanes of `width` integers each: lanes `0..dim`
/// are the coordinate keys ([`crate::dominance::sort_key`]) of the block's
/// records in sorted order, lane `dim` is the coordinate-sum key. Only the
/// first `len` slots of each lane are live; the rest (block-size padding of
/// a group's last block, plus the [`LANE_VECTOR`] stride rounding) is
/// padded with sentinels (`i64::MAX` in lane 0, `i64::MIN` elsewhere)
/// chosen so a padded slot can neither dominate nor be dominated — the
/// kernel additionally masks results with [`LaneBlock::valid_mask`], so the
/// sentinels are defense in depth rather than load-bearing.
#[derive(Debug, Clone, Copy)]
pub struct LaneBlock<'a> {
    /// `(dim + 1) * width` keys, lane-major.
    pub keys: &'a [i64],
    /// Lane stride: the preparation's block size rounded up to a multiple
    /// of [`LANE_VECTOR`] (at most [`MAX_LANE_BLOCK`], so one lane still
    /// fits a `u64` mask).
    pub width: usize,
    /// Number of live records in the block.
    pub len: usize,
}

impl<'a> LaneBlock<'a> {
    /// Coordinate lane `d` (`d == dim` yields the sum lane); `width` keys.
    #[inline]
    pub fn lane(&self, d: usize) -> &'a [i64] {
        &self.keys[d * self.width..(d + 1) * self.width]
    }

    /// Bitmask with one bit set per live record of the block.
    #[inline]
    pub fn valid_mask(&self) -> u64 {
        if self.len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }
}

impl PreparedDataset {
    /// Default number of records per block. Small blocks win because their
    /// corners are tight: on an independent 5-d workload, size 8 lets the
    /// O(1) full / skip classification absorb ~4× more record pairs than
    /// size 64 (whose per-block boxes approach the whole group's MBB), and
    /// the two corner tests per block pair stay negligible next to the up
    /// to 64 record pairs they summarize.
    pub const DEFAULT_BLOCK_SIZE: usize = 8;

    /// Preprocesses `ds`: sorts each group by descending coordinate sum,
    /// materializes per-block bounding corners, and (for block sizes up to
    /// [`MAX_LANE_BLOCK`]) the columnar key lanes the bitmask kernel reads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `block_size` is zero.
    pub fn build(ds: &GroupedDataset, block_size: usize) -> Result<PreparedDataset> {
        if block_size == 0 {
            return Err(Error::InvalidArgument("block_size must be positive (got 0)".to_string()));
        }
        let dim = ds.dim();
        let n_groups = ds.n_groups();
        let mut values = Vec::with_capacity(ds.n_records() * dim);
        let mut sums = Vec::with_capacity(ds.n_records());
        let mut offsets = Vec::with_capacity(n_groups + 1);
        offsets.push(0);
        let mut block_offsets = Vec::with_capacity(n_groups + 1);
        block_offsets.push(0);
        let mut block_min = Vec::new();
        let mut block_max = Vec::new();
        let mut mbbs = Vec::with_capacity(n_groups);
        let mut order: Vec<(f64, usize)> = Vec::new();
        for g in ds.group_ids() {
            let mbb = append_sorted_group(
                ds,
                g,
                dim,
                block_size,
                &mut values,
                &mut sums,
                &mut block_min,
                &mut block_max,
                &mut order,
            );
            offsets.push(values.len() / dim);
            block_offsets.push(block_min.len() / dim);
            mbbs.push(mbb);
        }
        let lanes = block_size <= MAX_LANE_BLOCK;
        // Rounding the lane stride (not the block size) up to the vector
        // width keeps MAX_LANE_BLOCK intact: 64 is already a multiple of 4.
        let lane_width = block_size.next_multiple_of(LANE_VECTOR);
        let keys = if lanes {
            build_lane_keys(dim, block_size, lane_width, &values, &sums, &offsets, &block_offsets)
        } else {
            Vec::new()
        };
        let prep = PreparedDataset {
            dim,
            block_size,
            values,
            sums,
            offsets,
            block_offsets,
            block_min,
            block_max,
            mbbs,
            keys,
            lanes,
            lane_width,
        };
        crate::invariants::check_prepared(ds, &prep);
        Ok(prep)
    }

    /// Rebuilds the preparation for `ds`, a dataset in which only the
    /// groups flagged in `dirty` changed since this preparation was built.
    /// Clean groups' sorted rows, block corners and columnar key lanes are
    /// copied wholesale; only dirty groups pay the `O(n log n)` sort and
    /// lane materialization — the epoch writer's fast path
    /// ([`crate::dynamic`] serving layer).
    ///
    /// A flagged-clean group whose length nonetheless differs from the
    /// preparation's is treated as dirty (defensive; the copy would be
    /// incoherent). Flagged-clean groups with *equal* length but different
    /// content are the caller's contract violation — caught by
    /// [`crate::invariants::check_prepared`] under the `invariants`
    /// feature, garbage-in-garbage-out otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `ds`'s group count or
    /// dimensionality differs from this preparation's, or when `dirty` is
    /// not one flag per group.
    pub fn rebuild_dirty(&self, ds: &GroupedDataset, dirty: &[bool]) -> Result<PreparedDataset> {
        if ds.n_groups() != self.n_groups() || ds.dim() != self.dim || dirty.len() != ds.n_groups()
        {
            return Err(Error::InvalidArgument(format!(
                "dirty rebuild shape mismatch: dataset has {} groups of dim {}, preparation \
                 has {} of dim {}, {} dirty flags",
                ds.n_groups(),
                ds.dim(),
                self.n_groups(),
                self.dim,
                dirty.len()
            )));
        }
        let dim = self.dim;
        let block_size = self.block_size;
        let mut values = Vec::with_capacity(ds.n_records() * dim);
        let mut sums = Vec::with_capacity(ds.n_records());
        let mut offsets = Vec::with_capacity(self.n_groups() + 1);
        offsets.push(0);
        let mut block_offsets = Vec::with_capacity(self.n_groups() + 1);
        block_offsets.push(0);
        let mut block_min = Vec::new();
        let mut block_max = Vec::new();
        let mut mbbs = Vec::with_capacity(self.n_groups());
        let mut order: Vec<(f64, usize)> = Vec::new();
        let mut rebuilt: Vec<bool> = Vec::with_capacity(self.n_groups());
        for g in ds.group_ids() {
            let clean = !dirty[g] && ds.group_len(g) == self.group_len(g);
            rebuilt.push(!clean);
            if clean {
                let (r0, r1) = (self.offsets[g], self.offsets[g + 1]);
                values.extend_from_slice(&self.values[r0 * dim..r1 * dim]);
                sums.extend_from_slice(&self.sums[r0..r1]);
                let (b0, b1) = (self.block_offsets[g], self.block_offsets[g + 1]);
                block_min.extend_from_slice(&self.block_min[b0 * dim..b1 * dim]);
                block_max.extend_from_slice(&self.block_max[b0 * dim..b1 * dim]);
                mbbs.push(self.mbbs[g].clone());
            } else {
                let mbb = append_sorted_group(
                    ds,
                    g,
                    dim,
                    block_size,
                    &mut values,
                    &mut sums,
                    &mut block_min,
                    &mut block_max,
                    &mut order,
                );
                mbbs.push(mbb);
            }
            offsets.push(values.len() / dim);
            block_offsets.push(block_min.len() / dim);
        }
        let keys = if self.lanes {
            let stride = (dim + 1) * self.lane_width;
            let total_blocks = block_offsets[block_offsets.len() - 1];
            let mut keys = vec![0i64; total_blocks * stride];
            for g in ds.group_ids() {
                let dst = block_offsets[g] * stride..block_offsets[g + 1] * stride;
                if rebuilt[g] {
                    fill_group_lanes(
                        &mut keys[dst],
                        dim,
                        block_size,
                        self.lane_width,
                        &values,
                        &sums,
                        offsets[g],
                        offsets[g + 1],
                    );
                } else {
                    let src = self.block_offsets[g] * stride..self.block_offsets[g + 1] * stride;
                    keys[dst].copy_from_slice(&self.keys[src]);
                }
            }
            keys
        } else {
            Vec::new()
        };
        let prep = PreparedDataset {
            dim,
            block_size,
            values,
            sums,
            offsets,
            block_offsets,
            block_min,
            block_max,
            mbbs,
            keys,
            lanes: self.lanes,
            lane_width: self.lane_width,
        };
        crate::invariants::check_prepared(ds, &prep);
        Ok(prep)
    }

    /// Number of dimensions of every record.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum number of records per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of groups.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of records.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// Number of records in group `g`.
    #[inline]
    pub fn group_len(&self, g: GroupId) -> usize {
        self.offsets[g + 1] - self.offsets[g]
    }

    /// Number of blocks of group `g` (`ceil(group_len / block_size)`).
    #[inline]
    pub fn n_blocks(&self, g: GroupId) -> usize {
        self.block_offsets[g + 1] - self.block_offsets[g]
    }

    /// Bounding box of group `g`.
    #[inline]
    pub fn mbb(&self, g: GroupId) -> &Mbb {
        &self.mbbs[g]
    }

    /// Bounding boxes of all groups, indexed by [`GroupId`]; identical to
    /// [`Mbb::of_all_groups`] on the source dataset.
    #[inline]
    pub fn mbbs(&self) -> &[Mbb] {
        &self.mbbs
    }

    /// Record `i` of group `g` **in sorted order** (not the source
    /// dataset's record order).
    #[inline]
    pub fn record(&self, g: GroupId, i: usize) -> &[f64] {
        let row = self.offsets[g] + i;
        debug_assert!(row < self.offsets[g + 1]);
        &self.values[row * self.dim..(row + 1) * self.dim]
    }

    /// Coordinate sums of group `g`'s records, descending.
    #[inline]
    pub fn group_sums(&self, g: GroupId) -> &[f64] {
        &self.sums[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Whether the columnar key lanes were materialized (block size at most
    /// [`MAX_LANE_BLOCK`]). When `false`, [`Self::lane_block`] must not be
    /// called and the kernel falls back to the row-wise straddle loop.
    #[inline]
    pub fn lanes_enabled(&self) -> bool {
        self.lanes
    }

    /// Columnar key lanes of block `b` (0-based within the group) of group
    /// `g`. Requires [`Self::lanes_enabled`].
    #[inline]
    pub fn lane_block(&self, g: GroupId, b: usize) -> LaneBlock<'_> {
        debug_assert!(self.lanes, "lane_block on a preparation without lanes");
        let gb = self.block_offsets[g] + b;
        debug_assert!(gb < self.block_offsets[g + 1]);
        let start = self.offsets[g] + b * self.block_size;
        let end = (start + self.block_size).min(self.offsets[g + 1]);
        let stride = (self.dim + 1) * self.lane_width;
        LaneBlock {
            keys: &self.keys[gb * stride..(gb + 1) * stride],
            width: self.lane_width,
            len: end - start,
        }
    }

    /// Block `b` (0-based within the group) of group `g`.
    #[inline]
    pub fn block(&self, g: GroupId, b: usize) -> BlockView<'_> {
        let gb = self.block_offsets[g] + b;
        debug_assert!(gb < self.block_offsets[g + 1]);
        let start = self.offsets[g] + b * self.block_size;
        let end = (start + self.block_size).min(self.offsets[g + 1]);
        BlockView {
            min: &self.block_min[gb * self.dim..(gb + 1) * self.dim],
            max: &self.block_max[gb * self.dim..(gb + 1) * self.dim],
            rows: &self.values[start * self.dim..end * self.dim],
            sums: &self.sums[start..end],
        }
    }
}

/// Sorts group `g` of `ds` by descending coordinate sum and appends its
/// rows, sums and per-block bounding corners to the accumulators, returning
/// the group's bounding box. `order` is scratch reused across calls. Shared
/// by [`PreparedDataset::build`] (every group) and
/// [`PreparedDataset::rebuild_dirty`] (dirty groups only).
#[allow(clippy::too_many_arguments)]
fn append_sorted_group(
    ds: &GroupedDataset,
    g: GroupId,
    dim: usize,
    block_size: usize,
    values: &mut Vec<f64>,
    sums: &mut Vec<f64>,
    block_min: &mut Vec<f64>,
    block_max: &mut Vec<f64>,
    order: &mut Vec<(f64, usize)>,
) -> Mbb {
    order.clear();
    order.extend(ds.records(g).enumerate().map(|(i, r)| (r.iter().sum::<f64>(), i)));
    // Descending sum; ties broken by original index so the layout is
    // deterministic regardless of the sort implementation.
    order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let base = values.len();
    for &(s, i) in order.iter() {
        sums.push(s);
        values.extend_from_slice(ds.record(g, i));
    }
    let len = order.len();
    let rows = &values[base..];
    let mut g_min = vec![f64::INFINITY; dim];
    let mut g_max = vec![f64::NEG_INFINITY; dim];
    for start in (0..len).step_by(block_size) {
        let end = (start + block_size).min(len);
        let at = block_min.len();
        block_min.resize(at + dim, f64::INFINITY);
        block_max.resize(at + dim, f64::NEG_INFINITY);
        for r in rows[start * dim..end * dim].chunks_exact(dim) {
            for d in 0..dim {
                block_min[at + d] = block_min[at + d].min(r[d]);
                block_max[at + d] = block_max[at + d].max(r[d]);
            }
        }
        for d in 0..dim {
            g_min[d] = g_min[d].min(block_min[at + d]);
            g_max[d] = g_max[d].max(block_max[at + d]);
        }
    }
    Mbb { min: g_min, max: g_max }
}

/// Fills the columnar key lanes: for each block, `dim` coordinate lanes and
/// one sum lane of `lane_width` keys each (the block size rounded up to
/// [`LANE_VECTOR`]), live slots holding [`crate::dominance::sort_key`] of
/// the sorted rows, padded slots holding sentinels (`i64::MAX` in lane 0 so
/// a pad is never dominated, `i64::MIN` in every other lane — including the
/// sum lane, which by itself already prevents a pad from dominating,
/// covering the 1-dimensional case where no coordinate sentinel can do both
/// jobs at once). The stride-rounding pad past `block_size` carries the
/// same sentinel pattern as block padding.
fn build_lane_keys(
    dim: usize,
    block_size: usize,
    lane_width: usize,
    values: &[f64],
    sums: &[f64],
    offsets: &[usize],
    block_offsets: &[usize],
) -> Vec<i64> {
    debug_assert_eq!(lane_width % LANE_VECTOR, 0);
    debug_assert!(lane_width >= block_size);
    let stride = (dim + 1) * lane_width;
    let total_blocks = block_offsets[block_offsets.len() - 1];
    let mut keys = vec![0i64; total_blocks * stride];
    for g in 0..offsets.len() - 1 {
        fill_group_lanes(
            &mut keys[block_offsets[g] * stride..block_offsets[g + 1] * stride],
            dim,
            block_size,
            lane_width,
            values,
            sums,
            offsets[g],
            offsets[g + 1],
        );
    }
    keys
}

/// Fills one group's slice of the key-lane buffer (see [`build_lane_keys`]
/// for the layout). `g_start..g_end` is the group's row range into the
/// global `values`/`sums`; `keys` is exactly the group's
/// `n_blocks * (dim + 1) * lane_width` lane slots.
#[allow(clippy::too_many_arguments)]
fn fill_group_lanes(
    keys: &mut [i64],
    dim: usize,
    block_size: usize,
    lane_width: usize,
    values: &[f64],
    sums: &[f64],
    g_start: usize,
    g_end: usize,
) {
    let stride = (dim + 1) * lane_width;
    debug_assert_eq!(keys.len(), (g_end - g_start).div_ceil(block_size) * stride);
    for (b, start) in (g_start..g_end).step_by(block_size).enumerate() {
        let end = (start + block_size).min(g_end);
        let base = b * stride;
        for (j, row) in (start..end).enumerate() {
            for d in 0..dim {
                keys[base + d * lane_width + j] = crate::dominance::sort_key(values[row * dim + d]);
            }
            keys[base + dim * lane_width + j] = crate::dominance::sort_key(sums[row]);
        }
        for j in (end - start)..lane_width {
            keys[base + j] = i64::MAX;
            for d in 1..=dim {
                keys[base + d * lane_width + j] = i64::MIN;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{movie_directors, random_dataset};

    #[test]
    fn sums_are_descending_within_each_group() {
        let ds = random_dataset(10, 9, 3, 77);
        let prep = PreparedDataset::build(&ds, 4).unwrap();
        for g in 0..prep.n_groups() {
            let sums = prep.group_sums(g);
            assert!(sums.windows(2).all(|w| w[0] >= w[1]), "group {g} not sorted");
            for (i, s) in sums.iter().enumerate() {
                let expect: f64 = prep.record(g, i).iter().sum();
                assert_eq!(*s, expect);
            }
        }
    }

    #[test]
    fn preparation_is_a_permutation_of_each_group() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, 2).unwrap();
        for g in ds.group_ids() {
            let mut original: Vec<Vec<f64>> = ds.records(g).map(|r| r.to_vec()).collect();
            let mut prepared: Vec<Vec<f64>> =
                (0..prep.group_len(g)).map(|i| prep.record(g, i).to_vec()).collect();
            original.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prepared.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(original, prepared, "group {g}");
        }
    }

    #[test]
    fn group_mbbs_match_unprepared_computation() {
        let ds = random_dataset(12, 7, 4, 5);
        let prep = PreparedDataset::build(&ds, 3).unwrap();
        assert_eq!(prep.mbbs(), &Mbb::of_all_groups(&ds)[..]);
    }

    #[test]
    fn blocks_partition_each_group_and_bound_their_records() {
        let ds = random_dataset(8, 11, 3, 42);
        for block_size in [1, 2, 5, 64] {
            let prep = PreparedDataset::build(&ds, block_size).unwrap();
            for g in 0..prep.n_groups() {
                let len = prep.group_len(g);
                assert_eq!(prep.n_blocks(g), len.div_ceil(block_size));
                let mut covered = 0;
                for b in 0..prep.n_blocks(g) {
                    let view = prep.block(g, b);
                    assert!(!view.is_empty());
                    assert!(view.len() <= block_size);
                    covered += view.len();
                    for r in view.rows.chunks_exact(prep.dim()) {
                        for (d, &v) in r.iter().enumerate() {
                            assert!(view.min[d] <= v && v <= view.max[d]);
                        }
                    }
                }
                assert_eq!(covered, len, "blocks must partition group {g}");
            }
        }
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let ds = movie_directors();
        match PreparedDataset::build(&ds, 0) {
            Err(crate::error::Error::InvalidArgument(msg)) => {
                assert!(msg.contains("block_size must be positive"), "unhelpful message: {msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn lane_keys_mirror_block_records() {
        let ds = crate::testdata::random_dataset(5, 9, 3, 42);
        for block_size in [1, 4, 64] {
            let prep = PreparedDataset::build(&ds, block_size).unwrap();
            assert!(prep.lanes_enabled());
            let dim = prep.dim();
            for g in 0..prep.n_groups() {
                for b in 0..prep.n_blocks(g) {
                    let view = prep.block(g, b);
                    let lanes = prep.lane_block(g, b);
                    assert_eq!(lanes.len, view.len());
                    assert_eq!(lanes.width, block_size.next_multiple_of(LANE_VECTOR));
                    for (j, row) in view.rows.chunks_exact(dim).enumerate() {
                        for (d, &v) in row.iter().enumerate() {
                            assert_eq!(lanes.lane(d)[j], crate::dominance::sort_key(v));
                        }
                        assert_eq!(lanes.lane(dim)[j], crate::dominance::sort_key(view.sums[j]));
                    }
                    // Padding (block tail and stride rounding alike) carries
                    // the incomparable sentinel pattern.
                    for j in view.len()..lanes.width {
                        assert_eq!(lanes.lane(0)[j], i64::MAX);
                        for d in 1..=dim {
                            assert_eq!(lanes.lane(d)[j], i64::MIN);
                        }
                    }
                    let expect_mask =
                        if view.len() >= 64 { u64::MAX } else { (1u64 << view.len()) - 1 };
                    assert_eq!(lanes.valid_mask(), expect_mask);
                }
            }
        }
    }

    /// Asserts two preparations are bit-identical in every field.
    fn assert_same_prep(a: &PreparedDataset, b: &PreparedDataset) {
        assert_eq!(a.dim, b.dim);
        assert_eq!(a.block_size, b.block_size);
        assert_eq!(a.values, b.values);
        assert_eq!(a.sums, b.sums);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.block_offsets, b.block_offsets);
        assert_eq!(a.block_min, b.block_min);
        assert_eq!(a.block_max, b.block_max);
        assert_eq!(a.mbbs, b.mbbs);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.lanes, b.lanes);
        assert_eq!(a.lane_width, b.lane_width);
    }

    #[test]
    fn dirty_rebuild_matches_full_build() {
        let before = random_dataset(9, 8, 3, 2024);
        // Mutate groups 2 and 6: drop a record from one, grow the other.
        let mut b = crate::dataset::GroupedDatasetBuilder::new(3);
        for g in before.group_ids() {
            let mut rows: Vec<Vec<f64>> = before.records(g).map(|r| r.to_vec()).collect();
            if g == 2 {
                rows.pop();
            }
            if g == 6 {
                rows.push(vec![9.5, 0.25, 4.0]);
                rows.push(vec![1.0, 1.0, 1.0]);
            }
            b.push_group(before.label(g), &rows).unwrap();
        }
        let after = b.build().unwrap();
        let mut dirty = vec![false; before.n_groups()];
        dirty[2] = true;
        dirty[6] = true;
        for block_size in [1, 4, MAX_LANE_BLOCK + 1] {
            let prep = PreparedDataset::build(&before, block_size).unwrap();
            let rebuilt = prep.rebuild_dirty(&after, &dirty).unwrap();
            assert_same_prep(&rebuilt, &PreparedDataset::build(&after, block_size).unwrap());
        }
    }

    #[test]
    fn dirty_rebuild_with_no_dirty_groups_is_a_copy() {
        let ds = random_dataset(6, 5, 2, 7);
        let prep = PreparedDataset::build(&ds, 4).unwrap();
        let rebuilt = prep.rebuild_dirty(&ds, &vec![false; ds.n_groups()]).unwrap();
        assert_same_prep(&rebuilt, &prep);
    }

    #[test]
    fn dirty_rebuild_treats_length_changes_as_dirty_even_when_unflagged() {
        let before = random_dataset(4, 6, 2, 11);
        let mut b = crate::dataset::GroupedDatasetBuilder::new(2);
        for g in before.group_ids() {
            let mut rows: Vec<Vec<f64>> = before.records(g).map(|r| r.to_vec()).collect();
            if g == 1 {
                rows.push(vec![50.0, 50.0]);
            }
            b.push_group(before.label(g), &rows).unwrap();
        }
        let after = b.build().unwrap();
        let prep = PreparedDataset::build(&before, 4).unwrap();
        // Group 1 grew but is (wrongly) flagged clean; the length guard
        // must rebuild it anyway.
        let rebuilt = prep.rebuild_dirty(&after, &vec![false; after.n_groups()]).unwrap();
        assert_same_prep(&rebuilt, &PreparedDataset::build(&after, 4).unwrap());
    }

    #[test]
    fn dirty_rebuild_rejects_shape_mismatches() {
        let ds = random_dataset(5, 4, 3, 3);
        let prep = PreparedDataset::build(&ds, 4).unwrap();
        let fewer = random_dataset(4, 4, 3, 3);
        assert!(matches!(
            prep.rebuild_dirty(&fewer, &[false; 4]),
            Err(crate::error::Error::InvalidArgument(_))
        ));
        let other_dim = random_dataset(5, 4, 2, 3);
        assert!(matches!(
            prep.rebuild_dirty(&other_dim, &[false; 5]),
            Err(crate::error::Error::InvalidArgument(_))
        ));
        assert!(matches!(
            prep.rebuild_dirty(&ds, &[false; 3]),
            Err(crate::error::Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn oversized_blocks_disable_lanes() {
        let ds = movie_directors();
        let prep = PreparedDataset::build(&ds, MAX_LANE_BLOCK + 1).unwrap();
        assert!(!prep.lanes_enabled());
        let prep = PreparedDataset::build(&ds, MAX_LANE_BLOCK).unwrap();
        assert!(prep.lanes_enabled());
    }
}
