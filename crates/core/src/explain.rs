//! Explanations: *why* is a group in (or out of) the aggregate skyline, and
//! which of its records do the work?
//!
//! The paper motivates aggregate skylines with interpretability ("the best
//! directors *according to the features of their movies*"); this module
//! makes the interpretation inspectable. The title's metaphor is apt: for
//! every galaxy (group) we can point at the stars (records) that win its
//! comparisons.

use crate::dataset::{GroupId, GroupedDataset};
use crate::dominance::dominates;
use crate::gamma::{domination_probability, Gamma};

/// A group threatening (or failing to threaten) another, with its
/// domination probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Threat {
    /// The would-be dominator.
    pub group: GroupId,
    /// `p(group ≻ subject)`.
    pub probability: f64,
    /// Whether the threat succeeds at the γ used for the explanation.
    pub dominates: bool,
}

/// Why a group is in or out of the skyline at a given γ.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership {
    /// The explained group.
    pub group: GroupId,
    /// True iff no other group γ-dominates it.
    pub in_skyline: bool,
    /// Every other group with `p > 0`, descending by probability.
    pub threats: Vec<Threat>,
}

impl Membership {
    /// The strongest threat, if any group dominates at all.
    pub fn worst_threat(&self) -> Option<&Threat> {
        self.threats.first()
    }
}

/// Explains group `g`'s skyline membership at `gamma`: collects every group
/// with a non-zero domination probability over `g`, sorted most-threatening
/// first.
pub fn explain_membership(ds: &GroupedDataset, g: GroupId, gamma: Gamma) -> Membership {
    let mut threats: Vec<Threat> = ds
        .group_ids()
        .filter(|&s| s != g)
        .filter_map(|s| {
            let p = domination_probability(ds, s, g);
            crate::ord::gt(p, 0.0).then_some(Threat {
                group: s,
                probability: p,
                dominates: gamma.dominated(p),
            })
        })
        .collect();
    threats.sort_by(|a, b| b.probability.total_cmp(&a.probability).then(a.group.cmp(&b.group)));
    let in_skyline = !threats.iter().any(|t| t.dominates);
    Membership { group: g, in_skyline, threats }
}

/// Per-record contribution of group `s` in its comparison against `r`:
/// `wins[i]` is the number of `r`-records that record `i` of `s` dominates,
/// `losses[i]` the number of `r`-records dominating it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairContribution {
    /// Wins per record of the first group.
    pub wins: Vec<u32>,
    /// Losses per record of the first group.
    pub losses: Vec<u32>,
}

impl PairContribution {
    /// Indices of the first group's records, best (most wins, fewest
    /// losses) first.
    pub fn star_records(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.wins.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.wins[i]), self.losses[i], i));
        order
    }
}

/// Computes per-record win/loss counts for group `s` against group `r`.
pub fn pair_contribution(ds: &GroupedDataset, s: GroupId, r: GroupId) -> PairContribution {
    let mut wins = vec![0u32; ds.group_len(s)];
    let mut losses = vec![0u32; ds.group_len(s)];
    for (i, sv) in ds.records(s).enumerate() {
        for rv in ds.records(r) {
            if dominates(sv, rv) {
                wins[i] += 1;
            } else if dominates(rv, sv) {
                losses[i] += 1;
            }
        }
    }
    PairContribution { wins, losses }
}

/// The "stars" of a group: its internal record skyline (records of the
/// group not dominated by other records of the same group). Indices are
/// 0-based within the group.
pub fn stars_of(ds: &GroupedDataset, g: GroupId) -> Vec<usize> {
    crate::record_skyline::bnl(ds.group_rows(g), ds.dim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::movie_directors;

    #[test]
    fn membership_explains_figure_4b() {
        let ds = movie_directors();
        let cameron = ds.group_by_label("Cameron").unwrap();
        let jackson = ds.group_by_label("Jackson").unwrap();
        // Cameron is out because Jackson dominates him with probability 1.
        let m = explain_membership(&ds, cameron, Gamma::DEFAULT);
        assert!(!m.in_skyline);
        let worst = m.worst_threat().unwrap();
        assert_eq!(worst.group, jackson);
        assert_eq!(worst.probability, 1.0);
        assert!(worst.dominates);
        // Jackson is in: everyone's probability stays at 1/2.
        let m = explain_membership(&ds, jackson, Gamma::DEFAULT);
        assert!(m.in_skyline);
        assert!(m.threats.iter().all(|t| !t.dominates && t.probability <= 0.5));
    }

    #[test]
    fn threats_are_sorted_descending() {
        let ds = movie_directors();
        let w = ds.group_by_label("Wiseau").unwrap();
        let m = explain_membership(&ds, w, Gamma::DEFAULT);
        assert!(!m.in_skyline);
        for pair in m.threats.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
        // Everyone with a decent movie dominates The Room with p = 1.
        assert_eq!(m.threats.iter().filter(|t| t.probability == 1.0).count(), 6);
    }

    #[test]
    fn contribution_counts_match_probability() {
        let ds = movie_directors();
        let t = ds.group_by_label("Tarantino").unwrap();
        let c = ds.group_by_label("Coppola").unwrap();
        let contrib = pair_contribution(&ds, t, c);
        let total: u32 = contrib.wins.iter().sum();
        let p = domination_probability(&ds, t, c);
        let pairs = (ds.group_len(t) * ds.group_len(c)) as f64;
        assert_eq!(total as f64 / pairs, p);
        // Pulp Fiction (record 1) is Tarantino's star against Coppola.
        assert_eq!(contrib.star_records()[0], 1);
    }

    #[test]
    fn stars_of_group() {
        let ds = movie_directors();
        let c = ds.group_by_label("Coppola").unwrap();
        // The Godfather dominates Dracula within Coppola's own group.
        assert_eq!(stars_of(&ds, c), vec![0]);
        let t = ds.group_by_label("Tarantino").unwrap();
        // Pulp Fiction dominates Kill Bill within Tarantino's group.
        assert_eq!(stars_of(&ds, t), vec![1]);
        let cam = ds.group_by_label("Cameron").unwrap();
        // Avatar (more popular) and Terminator II (better rated) are
        // mutually incomparable: both are stars.
        assert_eq!(stars_of(&ds, cam), vec![0, 1]);
    }
}
