//! Ranked aggregate skylines (Section 2.2).
//!
//! The paper suggests computing, for each group, the minimum γ at which it
//! enters the aggregate skyline, and returning groups sorted by that value:
//! "we can compute all groups that *can be* in an aggregate skyline,
//! corresponding to γ = 1, and return them in sorted order according to the
//! minimum value of γ for which they are in the group skyline."

use crate::dataset::{GroupId, GroupedDataset};
use crate::gamma::domination_probability;

/// A group together with the smallest γ for which it belongs to the
/// aggregate skyline.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedGroup {
    /// The group.
    pub group: GroupId,
    /// `max_{S ≠ R} p(S ≻ R)`: the group is in `Sky_γ` for every
    /// `γ ≥ max(min_gamma, 0.5)`.
    pub min_gamma: f64,
}

/// Computes `max_{S ≠ R} p(S ≻ R)` for every group `R`.
///
/// A group with `min_gamma = 1` is dominated with probability 1 by some
/// group and can never be in an aggregate skyline (the `p = 1` clause of
/// Definition 3 applies at every γ).
pub fn min_gamma_per_group(ds: &GroupedDataset) -> Vec<f64> {
    let n = ds.n_groups();
    let mut worst = vec![0.0f64; n];
    for s in 0..n {
        for (r, w) in worst.iter_mut().enumerate() {
            if s == r {
                continue;
            }
            let p = domination_probability(ds, s, r);
            if p > *w {
                *w = p;
            }
        }
    }
    worst
}

/// Every group that can appear in *some* aggregate skyline (i.e. is not
/// dominated with probability 1 by another group), sorted ascending by its
/// minimum qualifying γ. Ties are broken by group id for determinism.
pub fn ranked_skyline(ds: &GroupedDataset) -> Vec<RankedGroup> {
    let mut out: Vec<RankedGroup> = min_gamma_per_group(ds)
        .into_iter()
        .enumerate()
        .filter(|&(_, mg)| crate::ord::lt(mg, 1.0))
        .map(|(group, min_gamma)| RankedGroup { group, min_gamma })
        .collect();
    out.sort_by(|a, b| crate::ord::cmp(a.min_gamma, b.min_gamma).then(a.group.cmp(&b.group)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupedDatasetBuilder;
    use crate::gamma::Gamma;

    fn ds() -> GroupedDataset {
        let mut b = GroupedDatasetBuilder::new(2);
        // "top" strictly dominates "bottom"; "side" is incomparable to both.
        b.push_group("top", &[vec![8.0, 8.0], vec![9.0, 9.0]]).unwrap();
        b.push_group("bottom", &[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        b.push_group("side", &[vec![0.0, 100.0]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn min_gamma_identifies_strictly_dominated_groups() {
        let mg = min_gamma_per_group(&ds());
        assert_eq!(mg[0], 0.0, "nothing dominates 'top'");
        assert_eq!(mg[1], 1.0, "'bottom' is strictly dominated");
        assert_eq!(mg[2], 0.0, "'side' is incomparable to everything");
    }

    #[test]
    fn ranked_skyline_excludes_probability_one_losers() {
        let ranked = ranked_skyline(&ds());
        let groups: Vec<GroupId> = ranked.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 2]);
    }

    #[test]
    fn ranking_is_consistent_with_membership_at_each_gamma() {
        // Mixed dataset where domination is partial.
        let mut b = GroupedDatasetBuilder::new(2);
        b.push_group("a", &[vec![5.0, 5.0], vec![1.0, 1.0]]).unwrap();
        b.push_group("b", &[vec![3.0, 3.0], vec![4.0, 4.0]]).unwrap();
        b.push_group("c", &[vec![2.0, 6.0]]).unwrap();
        let ds = b.build().unwrap();
        let mg = min_gamma_per_group(&ds);
        for gamma_v in [0.5, 0.6, 0.75, 0.9, 1.0] {
            let gamma = Gamma::new(gamma_v).unwrap();
            let naive = crate::algorithms::naive_skyline(&ds, gamma);
            for g in ds.group_ids() {
                let in_sky = naive.skyline.contains(&g);
                let predicted = mg[g] < 1.0 && !gamma.dominated(mg[g]);
                assert_eq!(in_sky, predicted, "group {g} at gamma {gamma_v}");
            }
        }
    }
}
