//! Columnar bitmask kernel for straddling block pairs.
//!
//! The row-wise straddle loop in [`crate::kernel`] tests one record pair at
//! a time with an early-exit `dominates` call — a branchy loop whose trip
//! count depends on the data. This module replaces it, when the
//! [`crate::prepared::PreparedDataset`] carries key lanes, with a
//! branch-reduced lane kernel over the structure-of-arrays layout:
//!
//! For one probe record `r₁` against a block `B` of up to 64 records, the
//! kernel computes per-lane comparison bitmasks (bit `j` describes record
//! `j` of the block) and combines them with the coordinate-sum lane:
//!
//! * backward (`B`'s records dominating `r₁`):
//!   `AND_d (lane_d ≥ r₁[d])  &  (sum_lane > Σr₁)`
//! * forward (`r₁` dominating `B`'s records):
//!   `AND_d (lane_d ≤ r₁[d])  &  (sum_lane < Σr₁)`
//!
//! The sum term replaces the "∃ strict" clause of Definition 1: a record
//! that is coordinate-wise `≥` another with a strictly larger sum must be
//! strictly larger somewhere, and dominance always implies a strictly
//! larger sum. It is also exactly the prefix/suffix partition the row-wise
//! loop derives by binary search on the descending sums, so the popcounts
//! of the sum masks reproduce the row-wise path's `records_compared` /
//! `record_pairs` charges bit-for-bit, and the dominance popcounts its
//! `n12`/`n21`.
//!
//! All comparisons run in the integer key space of
//! [`crate::dominance::sort_key`], where they agree exactly with the
//! sanctioned [`crate::ord`] total order (rule L2 is moot: there is no
//! float comparison here to misorder). The entry point monomorphizes the
//! dimension for d = 2..=8 via a `const D: usize` fast path, with a dynamic
//! fallback for d = 1 and d ≥ 9.

use crate::paircount::Counter;
use crate::prepared::LaneBlock;
use crate::stats::Stats;

/// Counts the dominating pairs of one straddling block pair, probe block
/// `a` against lane block `b`, in the directions flagged possible. Exact
/// drop-in for the row-wise `straddle`: identical `Counter` and [`Stats`]
/// updates.
pub(crate) fn straddle_lanes(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    match dim {
        2 => straddle_fixed::<2>(a, b, fwd, bwd, counter, stats),
        3 => straddle_fixed::<3>(a, b, fwd, bwd, counter, stats),
        4 => straddle_fixed::<4>(a, b, fwd, bwd, counter, stats),
        5 => straddle_fixed::<5>(a, b, fwd, bwd, counter, stats),
        6 => straddle_fixed::<6>(a, b, fwd, bwd, counter, stats),
        7 => straddle_fixed::<7>(a, b, fwd, bwd, counter, stats),
        8 => straddle_fixed::<8>(a, b, fwd, bwd, counter, stats),
        _ => straddle_impl(dim, a, b, fwd, bwd, counter, stats),
    }
}

/// Monomorphization shim: `straddle_impl` is `#[inline(always)]`, so each
/// instantiation specializes the per-dimension loop to a compile-time trip
/// count the optimizer fully unrolls and vectorizes.
fn straddle_fixed<const D: usize>(
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    straddle_impl(D, a, b, fwd, bwd, counter, stats);
}

/// Builds the bitmask of block-`b` records whose lane-`d` key satisfies
/// `cmp` against the probe key. Branch-free: the comparison result is
/// widened and shifted into place, which LLVM turns into a vector compare
/// plus movemask on targets that have one.
#[inline(always)]
fn lane_mask(lane: &[i64], probe: i64, cmp: impl Fn(i64, i64) -> bool) -> u64 {
    let mut m = 0u64;
    for (j, &v) in lane.iter().enumerate() {
        m |= u64::from(cmp(v, probe)) << j;
    }
    m
}

/// Mask with the low `n` bits set (`n` may be 64).
#[inline(always)]
fn low_bits(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

#[inline(always)]
fn straddle_impl(
    dim: usize,
    a: &LaneBlock<'_>,
    b: &LaneBlock<'_>,
    fwd: bool,
    bwd: bool,
    counter: &mut Counter,
    stats: &mut Stats,
) {
    let valid = b.valid_mask();
    let a_sum = a.lane(dim);
    let b_sum = b.lane(dim);
    let width = b_sum.len();
    let mut n12 = 0u64;
    let mut n21 = 0u64;
    let mut tests = 0u64;
    // Both sum lanes are sorted descending (the prepared layout sorts each
    // group by descending coordinate sum, and the pad sentinel `i64::MIN`
    // sits at the tail), so the "sum strictly greater" candidates form a
    // prefix of `b` that only grows as the probe sum shrinks, and the
    // "strictly smaller" candidates a suffix that only grows. Two monotone
    // cursors deliver both masks in amortized O(1) per probe — the same
    // sublinearity the row-wise loop gets from its binary search.
    let mut p = 0usize; // b-records with sum >  s1 (row-wise prefix `p`)
    let mut q = 0usize; // b-records with sum >= s1 (row-wise cut `q`)
    for i in 0..a.len {
        let s1 = a_sum[i];
        debug_assert!(i == 0 || a_sum[i - 1] >= s1, "probe sums must be descending");
        if bwd {
            while p < width && b_sum[p] > s1 {
                p += 1;
            }
            let sum_gt = low_bits(p) & valid;
            tests += u64::from(sum_gt.count_ones());
            // With no sum-qualified candidate the coordinate lanes are
            // skipped outright.
            if sum_gt != 0 {
                let mut all_ge = sum_gt;
                for d in 0..dim {
                    all_ge &= lane_mask(b.lane(d), a.lane(d)[i], |v, k| v >= k);
                }
                n21 += u64::from(all_ge.count_ones());
            }
        }
        if fwd {
            while q < width && b_sum[q] >= s1 {
                q += 1;
            }
            let sum_lt = !low_bits(q) & valid;
            tests += u64::from(sum_lt.count_ones());
            if sum_lt != 0 {
                let mut all_le = sum_lt;
                for d in 0..dim {
                    all_le &= lane_mask(b.lane(d), a.lane(d)[i], |v, k| v <= k);
                }
                n12 += u64::from(all_le.count_ones());
            }
        }
    }
    counter.n12 += n12;
    counter.n21 += n21;
    stats.records_compared += tests;
    stats.record_pairs += tests;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::{dominates_keys, sort_key};
    use crate::gamma::Gamma;
    use crate::paircount::PairOptions;
    use crate::prepared::PreparedDataset;
    use crate::testdata::random_dataset;

    /// The lane kernel's popcount tallies equal a scalar key-space count
    /// over the same blocks, for every dimension crossing the
    /// monomorphization boundary.
    #[test]
    fn lane_kernel_matches_scalar_key_count() {
        for dim in [1usize, 2, 5, 8, 9] {
            let ds = random_dataset(4, 11, dim, 7 + dim as u64);
            let prep = PreparedDataset::build(&ds, 5).unwrap();
            for g1 in 0..ds.n_groups() {
                for g2 in 0..ds.n_groups() {
                    if g1 == g2 {
                        continue;
                    }
                    for ba in 0..prep.n_blocks(g1) {
                        for bb in 0..prep.n_blocks(g2) {
                            let la = prep.lane_block(g1, ba);
                            let lb = prep.lane_block(g2, bb);
                            let opts = PairOptions::default();
                            let total = crate::num::pair_product(la.len, lb.len);
                            let mut counter = Counter::new(total, Gamma::DEFAULT, opts);
                            let mut stats = Stats::default();
                            straddle_lanes(dim, &la, &lb, true, true, &mut counter, &mut stats);

                            // Scalar reference in the same key space.
                            let key_row = |l: &LaneBlock<'_>, i: usize| -> Vec<i64> {
                                (0..dim).map(|d| l.lane(d)[i]).collect()
                            };
                            let mut n12 = 0u64;
                            let mut n21 = 0u64;
                            for i in 0..la.len {
                                let r1 = key_row(&la, i);
                                for j in 0..lb.len {
                                    let r2 = key_row(&lb, j);
                                    if dominates_keys(&r1, &r2) {
                                        n12 += 1;
                                    }
                                    if dominates_keys(&r2, &r1) {
                                        n21 += 1;
                                    }
                                }
                            }
                            assert_eq!(
                                (counter.n12, counter.n21),
                                (n12, n21),
                                "dim={dim} {g1}v{g2} blocks {ba}/{bb}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Sentinel padding alone (ignoring the valid mask) can neither
    /// dominate nor be dominated for d ≥ 2: the pad key vector loses to
    /// everything in lane 0 going one way and in lanes 1.. the other. (For
    /// d = 1 the coordinate sentinel only blocks one direction; the
    /// `i64::MIN` *sum-lane* sentinel blocks the other, which the
    /// `lane_kernel_matches_scalar_key_count` dim = 1 case exercises on
    /// real padded blocks.)
    #[test]
    fn sentinel_pad_is_incomparable() {
        for dim in [2usize, 4, 8] {
            let mut pad = vec![i64::MIN; dim];
            pad[0] = i64::MAX;
            let real: Vec<i64> = (0..dim).map(|d| sort_key(d as f64 + 1.0)).collect();
            assert!(!dominates_keys(&pad, &real), "dim={dim}");
            assert!(!dominates_keys(&real, &pad), "dim={dim}");
        }
    }
}
