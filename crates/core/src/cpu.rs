//! Runtime CPU-feature policy for the SIMD straddle kernel.
//!
//! The AVX2 kernel in [`crate::simd`] is selected at runtime, never at
//! compile time: [`avx2_available`] wraps `is_x86_feature_detected!` (and is
//! simply `false` off x86-64), and [`force_scalar`] lets the environment pin
//! the scalar columnar path even on AVX2 hardware — the fallback must stay
//! testable and benchable where the fast path exists (`AGGSKY_FORCE_SCALAR`,
//! DESIGN.md §13). [`simd_active`] combines the two into the one predicate
//! the kernel dispatcher consults.
//!
//! This module deliberately lives *outside* the lint L5 counting-path scan:
//! it reads `std::env`, which is banned on counting paths. The counting code
//! never reads the environment itself — it receives the already-resolved
//! boolean. Because both columnar paths are bit-identical (pinned by
//! `tests/simd_differential.rs`), the dispatch decision can never change a
//! verdict, a tally, or a `Stats` charge; it only selects how fast the same
//! numbers are produced.

use std::sync::OnceLock;

/// Whether the running CPU supports AVX2 (always `false` off x86-64).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Interprets an `AGGSKY_FORCE_SCALAR` setting: unset, empty, or `"0"`
/// leave SIMD enabled; any other value forces the scalar columnar path.
///
/// Split out from [`force_scalar`] so the policy is testable without
/// touching the process environment (the cached read makes `set_var`-style
/// tests order-dependent).
#[inline]
pub fn scalar_forced_by(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => !v.is_empty() && v != "0",
    }
}

/// Whether `AGGSKY_FORCE_SCALAR` pins the scalar columnar path. The
/// environment is read once per process and cached: kernel construction may
/// sit on hot paths, and a mid-run flip would make otherwise identical
/// comparisons take different code paths within one run.
#[inline]
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let value = std::env::var("AGGSKY_FORCE_SCALAR").ok();
        scalar_forced_by(value.as_deref())
    })
}

/// The dispatch predicate: AVX2 detected and not overridden. When `true`,
/// [`crate::KernelConfig::Columnar`] routes straddling block pairs through
/// the [`crate::simd`] kernel; when `false`, through the scalar columnar
/// kernel. Either way the results are bit-identical.
#[inline]
pub fn simd_active() -> bool {
    avx2_available() && !force_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_override_policy() {
        assert!(!scalar_forced_by(None));
        assert!(!scalar_forced_by(Some("")));
        assert!(!scalar_forced_by(Some("0")));
        assert!(scalar_forced_by(Some("1")));
        assert!(scalar_forced_by(Some("true")));
        assert!(scalar_forced_by(Some("yes")));
    }

    #[test]
    fn simd_active_implies_avx2() {
        if simd_active() {
            assert!(avx2_available());
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn no_avx2_off_x86() {
        assert!(!avx2_available());
        assert!(!simd_active());
    }
}
