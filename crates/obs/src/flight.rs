//! The always-on flight recorder: a bounded, deterministic ring buffer of
//! recent spans and events that turns every failure into a black box.
//!
//! Unlike [`crate::TraceRecorder`], which buffers a whole run for offline
//! export, the flight recorder keeps only the last `capacity` entries in a
//! preallocated ring: pushing copies one fixed-size [`FlightEntry`]
//! (static name, track, stamp, up to [`MAX_INLINE_ARGS`] inline args) and
//! never allocates on the hot path. Entries are stamped by the caller in
//! the virtual tick domain, so same-seed runs fill the ring identically.
//!
//! On a failure edge — budget exhaustion, cancellation, worker
//! panic/quarantine, chaos fault, checkpoint recovery — core code calls
//! [`Recorder::dump`] with a static reason. The first dump per distinct
//! reason renders the ring to a Chrome-trace JSON snapshot (loadable in
//! Perfetto like the full export) and retains it in memory; when a dump
//! directory is configured the snapshot is also written to
//! `flight-<seq>-<reason>.json`. Deduping per reason keeps the dump list —
//! and therefore the bytes — deterministic even when a failure edge is
//! polled repeatedly.

use crate::chrome::escape;
use crate::clock::Stamp;
use crate::metrics::{Counter, Hist, MetricsRegistry};
use crate::recorder::{Recorder, SpanId};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// Ring capacity used by [`FlightRecorder::new`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// How many leading span/event args are kept inline per entry; the rest
/// are dropped rather than allocated for.
pub const MAX_INLINE_ARGS: usize = 2;

/// Open spans tracked for end-entry naming; beyond this depth span ends
/// render as `"span"`.
const OPEN_CAP: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    SpanStart,
    SpanEnd,
    Event,
}

/// One fixed-size ring entry.
#[derive(Debug, Clone, Copy)]
struct FlightEntry {
    kind: EntryKind,
    name: &'static str,
    track: u32,
    at: Stamp,
    span_id: SpanId,
    args: [(&'static str, u64); MAX_INLINE_ARGS],
    n_args: usize,
}

/// One retained black-box snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// 0-based dump sequence number (also part of the on-disk file name).
    pub seq: u64,
    /// The failure edge that triggered the dump.
    pub reason: &'static str,
    /// Chrome-trace JSON of the ring at dump time.
    pub json: String,
}

#[derive(Debug)]
struct FlightState {
    ring: Vec<FlightEntry>,
    /// Next write position; the ring holds `len` valid entries ending here.
    head: usize,
    len: usize,
    next_span: SpanId,
    open: Vec<(SpanId, &'static str, u32)>,
    dumped_reasons: Vec<&'static str>,
    dumps: Vec<FlightDump>,
}

/// The always-on bounded recorder. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<FlightState>,
    metrics: MetricsRegistry,
    capacity: usize,
    dump_dir: Option<PathBuf>,
}

impl FlightRecorder {
    /// A recorder with the default ring capacity and no dump directory.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder whose ring holds the last `capacity` entries
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            state: Mutex::new(FlightState {
                ring: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
                next_span: 0,
                open: Vec::with_capacity(OPEN_CAP),
                dumped_reasons: Vec::new(),
                dumps: Vec::new(),
            }),
            metrics: MetricsRegistry::new(),
            capacity,
            dump_dir: None,
        }
    }

    /// Also writes each dump to `dir/flight-<seq>-<reason>.json`
    /// (best-effort: dump retention in memory never fails).
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> FlightRecorder {
        self.dump_dir = Some(dir.into());
        self
    }

    /// The metric registry shared with [`Recorder::add`] /
    /// [`Recorder::observe`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of entries currently held (≤ capacity).
    pub fn ring_len(&self) -> usize {
        self.state.lock().map_or(0, |st| st.len)
    }

    /// All dumps taken so far, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.state.lock().map_or_else(|_| Vec::new(), |st| st.dumps.clone())
    }

    /// Renders the current ring as Chrome-trace JSON without recording a
    /// dump (used by tests and ad-hoc inspection).
    pub fn render(&self) -> String {
        self.state.lock().map_or_else(|_| String::from("[\n\n]\n"), |st| render_ring(&st))
    }

    fn push(&self, entry: FlightEntry) {
        let Ok(mut st) = self.state.lock() else { return };
        let head = st.head;
        if st.ring.len() < self.capacity {
            st.ring.push(entry);
        } else if let Some(slot) = st.ring.get_mut(head) {
            *slot = entry;
        }
        st.head = (head + 1) % self.capacity;
        st.len = (st.len + 1).min(self.capacity);
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

fn inline_args(args: &[(&'static str, u64)]) -> ([(&'static str, u64); MAX_INLINE_ARGS], usize) {
    let mut out = [("", 0u64); MAX_INLINE_ARGS];
    let n = args.len().min(MAX_INLINE_ARGS);
    for (slot, arg) in out.iter_mut().zip(args.iter().take(n)) {
        *slot = *arg;
    }
    (out, n)
}

impl Recorder for FlightRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, track: u32, at: Stamp) -> SpanId {
        let id = {
            let Ok(mut st) = self.state.lock() else { return 0 };
            st.next_span = st.next_span.saturating_add(1);
            let id = st.next_span;
            if st.open.len() < OPEN_CAP {
                st.open.push((id, name, track));
            }
            id
        };
        self.push(FlightEntry {
            kind: EntryKind::SpanStart,
            name,
            track,
            at,
            span_id: id,
            args: [("", 0); MAX_INLINE_ARGS],
            n_args: 0,
        });
        id
    }

    fn span_end(&self, id: SpanId, at: Stamp, args: &[(&'static str, u64)]) {
        if id == 0 {
            return;
        }
        let (name, track) = {
            let Ok(mut st) = self.state.lock() else { return };
            match st.open.iter().rposition(|(open_id, _, _)| *open_id == id) {
                Some(i) => {
                    let (_, name, track) = st.open.remove(i);
                    (name, track)
                }
                None => ("span", 0),
            }
        };
        let (inline, n) = inline_args(args);
        self.push(FlightEntry {
            kind: EntryKind::SpanEnd,
            name,
            track,
            at,
            span_id: id,
            args: inline,
            n_args: n,
        });
    }

    fn event(&self, name: &'static str, track: u32, at: Stamp, args: &[(&'static str, u64)]) {
        let (inline, n) = inline_args(args);
        self.push(FlightEntry {
            kind: EntryKind::Event,
            name,
            track,
            at,
            span_id: 0,
            args: inline,
            n_args: n,
        });
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.metrics.add(counter, delta);
    }

    fn observe(&self, hist: Hist, value: u64) {
        self.metrics.observe(hist, value);
    }

    fn dump(&self, reason: &'static str) {
        let Ok(mut st) = self.state.lock() else { return };
        if st.dumped_reasons.contains(&reason) {
            return;
        }
        st.dumped_reasons.push(reason);
        let seq = u64::try_from(st.dumps.len()).unwrap_or(u64::MAX);
        let json = render_ring(&st);
        if let Some(dir) = &self.dump_dir {
            let path = dir.join(format!("flight-{seq:03}-{reason}.json"));
            // Best-effort black box: a failed write must not mask the
            // original failure, and the dump stays retrievable in memory.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, &json);
        }
        st.dumps.push(FlightDump { seq, reason, json });
    }
}

/// Renders the ring, oldest entry first, as a Chrome trace-event JSON
/// array: span starts become `"B"` events, span ends `"E"`, instants
/// `"i"`, preceded by one `thread_name` metadata record per track.
fn render_ring(st: &FlightState) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    // The ring holds `len == ring.len()` entries; when it has not wrapped,
    // `head % len == 0`, so the oldest entry is always `head % len`.
    let n = st.ring.len();
    let in_order = |i: usize| {
        if n == 0 {
            return None;
        }
        st.ring.get((st.head % n + i) % n)
    };
    let mut tracks: Vec<u32> = Vec::new();
    for i in 0..st.len {
        if let Some(e) = in_order(i) {
            if !tracks.contains(&e.track) {
                tracks.push(e.track);
            }
        }
    }
    tracks.sort_unstable();
    for t in &tracks {
        let name = if *t == 0 { "main".to_string() } else { format!("worker-{}", t - 1) };
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&name)
        );
    }
    for i in 0..st.len {
        let Some(e) = in_order(i) else { continue };
        let ph = match e.kind {
            EntryKind::SpanStart => "B",
            EntryKind::SpanEnd => "E",
            EntryKind::Event => "i",
        };
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{}",
            escape(e.name),
            e.at.domain.label(),
            e.at.value,
            e.track
        );
        if e.kind == EntryKind::Event {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut afirst = true;
        if e.span_id != 0 {
            let _ = write!(out, "\"span_id\":{}", e.span_id);
            afirst = false;
        }
        for (k, v) in e.args.iter().take(e.n_args) {
            if !afirst {
                out.push(',');
            }
            afirst = false;
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rec: &FlightRecorder, n: u64) {
        for i in 0..n {
            let s = rec.span_start("step", 0, Stamp::tick(i));
            rec.event("probe", 1, Stamp::tick(i), &[("i", i), ("sq", i * i), ("dropped", 1)]);
            rec.span_end(s, Stamp::tick(i + 1), &[("n", i)]);
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let rec = FlightRecorder::with_capacity(8);
        fill(&rec, 100);
        assert_eq!(rec.ring_len(), 8);
        let json = rec.render();
        // Only recent ticks survive; tick 0 was overwritten long ago.
        assert!(json.contains("\"ts\":99"), "newest entry retained:\n{json}");
        assert!(!json.contains("\"ts\":0,"), "oldest entries evicted:\n{json}");
    }

    #[test]
    fn args_beyond_inline_capacity_are_dropped_not_allocated() {
        let rec = FlightRecorder::with_capacity(4);
        rec.event("e", 0, Stamp::tick(1), &[("a", 1), ("b", 2), ("c", 3)]);
        let json = rec.render();
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"b\":2"));
        assert!(!json.contains("\"c\":3"), "third arg dropped: {json}");
    }

    #[test]
    fn dump_dedupes_per_reason() {
        let rec = FlightRecorder::new();
        fill(&rec, 3);
        rec.dump("budget_exhausted");
        rec.dump("budget_exhausted");
        rec.dump("chaos_panic");
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].reason, "budget_exhausted");
        assert_eq!(dumps[0].seq, 0);
        assert_eq!(dumps[1].reason, "chaos_panic");
        assert_eq!(dumps[1].seq, 1);
        assert!(dumps[0].json.starts_with("[\n"));
        assert!(dumps[0].json.ends_with("\n]\n"));
    }

    #[test]
    fn identical_recordings_dump_identical_bytes() {
        let make = || {
            let rec = FlightRecorder::with_capacity(16);
            fill(&rec, 40);
            rec.dump("interrupt");
            rec.dumps().remove(0).json
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn span_ends_recover_their_names() {
        let rec = FlightRecorder::with_capacity(8);
        let a = rec.span_start("outer", 0, Stamp::tick(0));
        let b = rec.span_start("inner", 0, Stamp::tick(1));
        rec.span_end(b, Stamp::tick(2), &[]);
        rec.span_end(a, Stamp::tick(3), &[]);
        let json = rec.render();
        assert_eq!(json.matches("\"name\":\"inner\"").count(), 2, "start + end: {json}");
        assert_eq!(json.matches("\"name\":\"outer\"").count(), 2);
    }

    #[test]
    fn dump_writes_file_when_dir_configured() {
        let dir = std::env::temp_dir().join(format!("aggsky-flight-{}", std::process::id()));
        let rec = FlightRecorder::new().with_dump_dir(&dir);
        fill(&rec, 2);
        rec.dump("test_reason");
        let path = dir.join("flight-000-test_reason.json");
        let on_disk = std::fs::read_to_string(&path).expect("dump file written");
        assert_eq!(on_disk, rec.dumps()[0].json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_flow_through() {
        let rec = FlightRecorder::new();
        rec.add(Counter::RecordPairs, 7);
        rec.observe(Hist::BatchBlockPairs, 5);
        let snap = rec.metrics().snapshot();
        assert_eq!(snap.counter(Counter::RecordPairs), 7);
        assert_eq!(snap.hist(Hist::BatchBlockPairs).count, 1);
    }
}
