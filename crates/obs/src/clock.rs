//! The two clock domains and their timestamps.
//!
//! Everything on a counting path is stamped in the **tick** domain: the
//! virtual clock advanced by record-pair comparisons (`Stats::record_pairs`
//! in `aggsky-core`, `SharedState::spent` in the parallel scheduler). Tick
//! stamps are a pure function of the input and configuration, which is what
//! makes traces byte-identical across runs (DESIGN.md §11).
//!
//! The **wall** domain is real elapsed time in microseconds. It exists for
//! the bench harness and for consumers that deliberately opt out of
//! determinism; library crates must never read it (lint rule L6 forbids
//! `Instant`/`SystemTime` outside `crates/obs` and `crates/bench`), so the
//! only sanctioned wall-clock source is [`WallClock`] in this module.

use std::time::Instant;

/// Which clock a [`Stamp`] was taken from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClockDomain {
    /// Deterministic virtual time: record pairs spent so far.
    Tick,
    /// Wall-clock microseconds since some recorder-local epoch.
    Wall,
}

impl ClockDomain {
    /// Short lowercase label used as the Chrome-trace event category.
    pub const fn label(self) -> &'static str {
        match self {
            ClockDomain::Tick => "tick",
            ClockDomain::Wall => "wall",
        }
    }
}

/// A timestamp: a domain plus a monotonically non-decreasing value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// The clock the value was read from.
    pub domain: ClockDomain,
    /// Ticks (record pairs) or wall microseconds, depending on `domain`.
    pub value: u64,
}

impl Stamp {
    /// Tick zero: the start of every deterministic run.
    pub const ZERO: Stamp = Stamp::tick(0);

    /// A deterministic virtual-clock stamp.
    pub const fn tick(value: u64) -> Stamp {
        Stamp { domain: ClockDomain::Tick, value }
    }

    /// A wall-clock stamp in microseconds.
    pub const fn wall_micros(value: u64) -> Stamp {
        Stamp { domain: ClockDomain::Wall, value }
    }
}

/// A wall-clock stopwatch, the only sanctioned source of wall time for
/// instrumented code. Created once per recording session; all wall stamps
/// are offsets from its start, so traces never leak absolute times.
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts the stopwatch now.
    pub fn start() -> WallClock {
        WallClock { start: Instant::now() }
    }

    /// Microseconds elapsed since [`WallClock::start`], saturating.
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The current wall stamp relative to the stopwatch's start.
    pub fn stamp(&self) -> Stamp {
        Stamp::wall_micros(self.elapsed_micros())
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_stamps_order_by_value() {
        assert!(Stamp::tick(1) < Stamp::tick(2));
        assert_eq!(Stamp::ZERO, Stamp::tick(0));
        assert_eq!(Stamp::tick(7).domain.label(), "tick");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let w = WallClock::start();
        let a = w.elapsed_micros();
        let b = w.elapsed_micros();
        assert!(b >= a);
        assert_eq!(w.stamp().domain, ClockDomain::Wall);
    }
}
