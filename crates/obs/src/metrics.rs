//! The static metric registry: named counters and log2-bucketed histograms.
//!
//! Metric identity is a closed enum rather than a string so every
//! observation site is a compile-time constant: no interning, no hashing,
//! no allocation on the hot path. Counters mirror the `Stats` struct of
//! `aggsky-core` one-to-one (plus a few SQL-executor extras); histograms
//! capture *distributions* the flat counters cannot — record pairs per
//! group pair, scheduler chunk sizes, straddle-block fanout.
//!
//! Histogram buckets are powers of two: bucket `i` holds values `v` with
//! `2^(i-1) ≤ v < 2^i` (bucket 0 holds exactly `v = 0`), i.e. the bucket
//! index is the number of significant bits. 65 buckets cover all of `u64`.

use crate::sketch::SketchSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: one per significant-bit count of a `u64`,
/// plus one for zero.
pub const HIST_BUCKETS: usize = 65;

/// A named monotone counter. Every non-`Sql*` variant mirrors an
/// `aggsky_core::Stats` field one-for-one; the `Sql*` variants are recorded
/// by the SQL executor only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Ordered group pairs whose γ-dominance was evaluated.
    GroupPairs,
    /// Record pairs charged to the virtual clock.
    RecordPairs,
    /// Group pairs resolved by bounding-box corners alone.
    BboxResolved,
    /// Record pairs skipped thanks to bounding-box resolution.
    BboxSkippedPairs,
    /// Pair counts cut short by the §3.3 stopping rule.
    EarlyStops,
    /// Comparisons avoided by the transitivity rule.
    TransitiveSkips,
    /// Candidate groups returned by index window queries.
    IndexCandidates,
    /// Block pairs classified all-dominating by corner tests.
    BlocksFull,
    /// Block pairs classified none-dominating by corner tests.
    BlocksSkipped,
    /// Record pairs actually compared inside straddle blocks.
    RecordsCompared,
    /// Scheduler chunks retried after a worker fault.
    WorkerRetries,
    /// Workers quarantined after repeated faults.
    WorkersQuarantined,
    /// Table rows scanned by the SQL executor (post-residual-filter).
    SqlRowsScanned,
    /// Groups materialized by the SQL aggregation pipeline.
    SqlGroupsBuilt,
    /// Group comparisons served entirely from the pair-count cache.
    CacheHits,
    /// Group comparisons that found no pair-count cache entry.
    CacheMisses,
    /// Group comparisons resumed from a partial pair-count cache entry.
    CacheResumes,
    /// Checkpoint frames committed by the persist layer.
    CheckpointSaves,
    /// Checkpoint recovery attempts (loads) issued by the persist layer.
    CheckpointLoads,
    /// Frames found on disk that failed validation and were degraded past
    /// during recovery (torn writes, bit rot, truncation).
    CheckpointFramesSkipped,
    /// Records inserted into a dynamic aggregate skyline (recorded by the
    /// incremental-maintenance layer only, like the `Sql*` extras).
    DynInserts,
    /// Group pairs whose γ-verdict was served from the Property-2 drift
    /// interval without recounting (defer-recompute hits).
    DynDeferred,
    /// Group pairs whose tallies were recomputed through the kernel because
    /// their drift interval crossed the γ bound (or a flush was forced).
    DynFlushedPairs,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 23] = [
        Counter::GroupPairs,
        Counter::RecordPairs,
        Counter::BboxResolved,
        Counter::BboxSkippedPairs,
        Counter::EarlyStops,
        Counter::TransitiveSkips,
        Counter::IndexCandidates,
        Counter::BlocksFull,
        Counter::BlocksSkipped,
        Counter::RecordsCompared,
        Counter::WorkerRetries,
        Counter::WorkersQuarantined,
        Counter::SqlRowsScanned,
        Counter::SqlGroupsBuilt,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheResumes,
        Counter::CheckpointSaves,
        Counter::CheckpointLoads,
        Counter::CheckpointFramesSkipped,
        Counter::DynInserts,
        Counter::DynDeferred,
        Counter::DynFlushedPairs,
    ];

    /// Prometheus metric name (`_total` suffix per convention).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::GroupPairs => "aggsky_group_pairs_total",
            Counter::RecordPairs => "aggsky_record_pairs_total",
            Counter::BboxResolved => "aggsky_bbox_resolved_total",
            Counter::BboxSkippedPairs => "aggsky_bbox_skipped_pairs_total",
            Counter::EarlyStops => "aggsky_early_stops_total",
            Counter::TransitiveSkips => "aggsky_transitive_skips_total",
            Counter::IndexCandidates => "aggsky_index_candidates_total",
            Counter::BlocksFull => "aggsky_blocks_full_total",
            Counter::BlocksSkipped => "aggsky_blocks_skipped_total",
            Counter::RecordsCompared => "aggsky_records_compared_total",
            Counter::WorkerRetries => "aggsky_worker_retries_total",
            Counter::WorkersQuarantined => "aggsky_workers_quarantined_total",
            Counter::SqlRowsScanned => "aggsky_sql_rows_scanned_total",
            Counter::SqlGroupsBuilt => "aggsky_sql_groups_built_total",
            Counter::CacheHits => "aggsky_cache_hits_total",
            Counter::CacheMisses => "aggsky_cache_misses_total",
            Counter::CacheResumes => "aggsky_cache_resumes_total",
            Counter::CheckpointSaves => "aggsky_checkpoint_saves_total",
            Counter::CheckpointLoads => "aggsky_checkpoint_loads_total",
            Counter::CheckpointFramesSkipped => "aggsky_checkpoint_frames_skipped_total",
            Counter::DynInserts => "aggsky_dyn_inserts_total",
            Counter::DynDeferred => "aggsky_dyn_deferred_total",
            Counter::DynFlushedPairs => "aggsky_dyn_flushed_pairs_total",
        }
    }

    const fn index(self) -> usize {
        match self {
            Counter::GroupPairs => 0,
            Counter::RecordPairs => 1,
            Counter::BboxResolved => 2,
            Counter::BboxSkippedPairs => 3,
            Counter::EarlyStops => 4,
            Counter::TransitiveSkips => 5,
            Counter::IndexCandidates => 6,
            Counter::BlocksFull => 7,
            Counter::BlocksSkipped => 8,
            Counter::RecordsCompared => 9,
            Counter::WorkerRetries => 10,
            Counter::WorkersQuarantined => 11,
            Counter::SqlRowsScanned => 12,
            Counter::SqlGroupsBuilt => 13,
            Counter::CacheHits => 14,
            Counter::CacheMisses => 15,
            Counter::CacheResumes => 16,
            Counter::CheckpointSaves => 17,
            Counter::CheckpointLoads => 18,
            Counter::CheckpointFramesSkipped => 19,
            Counter::DynInserts => 20,
            Counter::DynDeferred => 21,
            Counter::DynFlushedPairs => 22,
        }
    }
}

/// A named log2-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hist {
    /// Record pairs charged per evaluated group pair.
    RecordPairsPerGroupPair,
    /// Straddle block pairs executed per stolen scheduler batch.
    BatchBlockPairs,
    /// Record pairs compared per straddling block scan of a group pair.
    StraddleFanout,
    /// Candidate groups per index window query.
    WindowCandidates,
    /// Size in bytes of each committed checkpoint frame.
    CheckpointFrameBytes,
}

impl Hist {
    /// Every histogram, in export order.
    pub const ALL: [Hist; 5] = [
        Hist::RecordPairsPerGroupPair,
        Hist::BatchBlockPairs,
        Hist::StraddleFanout,
        Hist::WindowCandidates,
        Hist::CheckpointFrameBytes,
    ];

    /// Prometheus metric family name.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::RecordPairsPerGroupPair => "aggsky_record_pairs_per_group_pair",
            Hist::BatchBlockPairs => "aggsky_batch_block_pairs",
            Hist::StraddleFanout => "aggsky_straddle_fanout_pairs",
            Hist::WindowCandidates => "aggsky_window_candidates",
            Hist::CheckpointFrameBytes => "aggsky_checkpoint_frame_bytes",
        }
    }

    const fn index(self) -> usize {
        match self {
            Hist::RecordPairsPerGroupPair => 0,
            Hist::BatchBlockPairs => 1,
            Hist::StraddleFanout => 2,
            Hist::WindowCandidates => 3,
            Hist::CheckpointFrameBytes => 4,
        }
    }

    /// The quantile sketch fed alongside this histogram, for the
    /// distributions where tail latency matters. One `observe` call updates
    /// both, so the coarse log2 export stays byte-stable while p95/p99 gain
    /// the sketch's ≤3.2% resolution.
    pub const fn paired_sketch(self) -> Option<Sketch> {
        match self {
            Hist::BatchBlockPairs => Some(Sketch::BatchBlockPairs),
            Hist::StraddleFanout => Some(Sketch::StraddleFanout),
            _ => None,
        }
    }
}

/// A named log-linear quantile sketch (see [`crate::sketch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sketch {
    /// Straddle block pairs executed per stolen scheduler batch
    /// (fine-grained companion of [`Hist::BatchBlockPairs`]).
    BatchBlockPairs,
    /// Record pairs compared per straddling block scan (companion of
    /// [`Hist::StraddleFanout`]).
    StraddleFanout,
    /// Record-pair ticks charged per executed SQL query (fed by the SQL
    /// layer's query journal).
    QueryTicks,
}

impl Sketch {
    /// Every sketch, in export order.
    pub const ALL: [Sketch; 3] =
        [Sketch::BatchBlockPairs, Sketch::StraddleFanout, Sketch::QueryTicks];

    /// Prometheus metric family name (exported as a `summary`).
    pub const fn name(self) -> &'static str {
        match self {
            Sketch::BatchBlockPairs => "aggsky_batch_block_pairs_quantiles",
            Sketch::StraddleFanout => "aggsky_straddle_fanout_quantiles",
            Sketch::QueryTicks => "aggsky_query_ticks",
        }
    }

    const fn index(self) -> usize {
        match self {
            Sketch::BatchBlockPairs => 0,
            Sketch::StraddleFanout => 1,
            Sketch::QueryTicks => 2,
        }
    }
}

/// Bucket index of `value`: its number of significant bits (0 for 0).
pub fn bucket_of(value: u64) -> usize {
    let bits = 64u32.saturating_sub(value.leading_zeros());
    usize::try_from(bits).unwrap_or(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`); bucket 0 holds only 0.
pub fn bucket_le(i: usize) -> u128 {
    1u128.checked_shl(u32::try_from(i.min(64)).unwrap_or(64)).map_or(u128::MAX, |p| p - 1)
}

/// An immutable point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistSnapshot {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_of(value)) {
            *b = b.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds `other` into `self` bucket-wise. Associative, commutative, and
    /// count-conserving (verified by a seeded property test).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// `q` per-mille of the total (e.g. `500` → median). `None` when empty.
    pub fn quantile_le(&self, q_permille: u64) -> Option<u128> {
        if self.count == 0 {
            return None;
        }
        let threshold = (u128::from(self.count) * u128::from(q_permille)).div_ceil(1000);
        let mut cum: u128 = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += u128::from(*b);
            if cum >= threshold {
                return Some(bucket_le(i));
            }
        }
        Some(bucket_le(HIST_BUCKETS - 1))
    }
}

struct AtomicHist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    fn new() -> AtomicHist {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        if let Some(b) = self.buckets.get(bucket_of(value)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed))
            }),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Storage for every [`Counter`], [`Hist`], and [`Sketch`]. Shared by
/// reference between the recorder and any number of worker threads.
/// Counters and histograms are lock-free atomics on the per-pair hot path;
/// sketches sit behind one mutex, acceptable because they are observed at
/// batch/query granularity, never per record pair.
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [AtomicHist; Hist::ALL.len()],
    sketches: Mutex<[SketchSnapshot; Sketch::ALL.len()]>,
}

impl MetricsRegistry {
    /// A registry with every metric at zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHist::new()),
            sketches: Mutex::new(std::array::from_fn(|_| SketchSnapshot::default())),
        }
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(c) = self.counters.get(counter.index()) {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation; histograms with a
    /// [`Hist::paired_sketch`] feed their quantile sketch from the same
    /// call.
    pub fn observe(&self, hist: Hist, value: u64) {
        if let Some(h) = self.hists.get(hist.index()) {
            h.observe(value);
        }
        if let Some(s) = hist.paired_sketch() {
            self.observe_sketch(s, value);
        }
    }

    /// Records one quantile-sketch observation directly (used for sketches
    /// with no histogram companion, e.g. [`Sketch::QueryTicks`]).
    pub fn observe_sketch(&self, sketch: Sketch, value: u64) {
        if let Ok(mut sketches) = self.sketches.lock() {
            if let Some(s) = sketches.get_mut(sketch.index()) {
                s.observe(value);
            }
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter.index()).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Copies every metric out into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sketches = match self.sketches.lock() {
            Ok(s) => s.clone(),
            Err(_) => std::array::from_fn(|_| SketchSnapshot::default()),
        };
        MetricsSnapshot {
            counters: std::array::from_fn(|i| {
                self.counters.get(i).map_or(0, |c| c.load(Ordering::Relaxed))
            }),
            hists: std::array::from_fn(|i| {
                self.hists.get(i).map_or_else(HistSnapshot::default, AtomicHist::snapshot)
            }),
            sketches,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

/// An immutable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::ALL.len()],
    hists: [HistSnapshot; Hist::ALL.len()],
    sketches: [SketchSnapshot; Sketch::ALL.len()],
}

impl MetricsSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; Counter::ALL.len()],
            hists: [HistSnapshot::default(); Hist::ALL.len()],
            sketches: std::array::from_fn(|_| SketchSnapshot::default()),
        }
    }

    /// Value of one counter at snapshot time.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(counter.index()).copied().unwrap_or(0)
    }

    /// One histogram at snapshot time.
    pub fn hist(&self, hist: Hist) -> HistSnapshot {
        self.hists.get(hist.index()).copied().unwrap_or_default()
    }

    /// One quantile sketch at snapshot time.
    pub fn sketch(&self, sketch: Sketch) -> SketchSnapshot {
        self.sketches.get(sketch.index()).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Inclusive upper bounds match the index rule.
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(3), 7);
        assert_eq!(bucket_le(64), u128::from(u64::MAX));
        for v in [0u64, 1, 2, 3, 4, 5, 100, 1 << 33, u64::MAX] {
            let b = bucket_of(v);
            assert!(u128::from(v) <= bucket_le(b), "{v} above le of its bucket {b}");
            if b > 0 {
                assert!(u128::from(v) > bucket_le(b - 1), "{v} fits an earlier bucket than {b}");
            }
        }
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::RecordPairs, 5);
        reg.add(Counter::RecordPairs, 7);
        reg.observe(Hist::BatchBlockPairs, 3);
        reg.observe(Hist::BatchBlockPairs, 9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::RecordPairs), 12);
        assert_eq!(snap.counter(Counter::GroupPairs), 0);
        let h = snap.hist(Hist::BatchBlockPairs);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        assert_eq!(h.buckets[bucket_of(3)], 1);
        assert_eq!(h.buckets[bucket_of(9)], 1);
    }

    #[test]
    fn quantile_bounds_are_sane() {
        let mut h = HistSnapshot::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile_le(500).unwrap();
        let p100 = h.quantile_le(1000).unwrap();
        assert!(p50 >= 50, "median bound {p50} below true median");
        assert!(p100 >= 100);
        assert!(p50 <= p100);
        assert_eq!(HistSnapshot::default().quantile_le(500), None);
    }

    #[test]
    fn paired_hist_observation_feeds_sketch() {
        let reg = MetricsRegistry::new();
        for v in [3u64, 9, 100, 1000] {
            reg.observe(Hist::BatchBlockPairs, v);
        }
        reg.observe(Hist::WindowCandidates, 7); // no paired sketch
        reg.observe_sketch(Sketch::QueryTicks, 40);
        let snap = reg.snapshot();
        let sk = snap.sketch(Sketch::BatchBlockPairs);
        assert_eq!(sk.count, 4);
        assert_eq!(sk.sum, 1112);
        assert_eq!(sk.max, 1000);
        assert_eq!(snap.sketch(Sketch::StraddleFanout).count, 0);
        assert_eq!(snap.sketch(Sketch::QueryTicks).count, 1);
        // The coarse histogram is unchanged by the pairing.
        assert_eq!(snap.hist(Hist::BatchBlockPairs).count, 4);
    }

    #[test]
    fn counter_and_hist_indices_are_dense_and_unique() {
        let mut seen = [false; Counter::ALL.len()];
        for c in Counter::ALL {
            assert!(!seen[c.index()], "duplicate counter index");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let mut hseen = [false; Hist::ALL.len()];
        for h in Hist::ALL {
            assert!(!hseen[h.index()], "duplicate hist index");
            hseen[h.index()] = true;
        }
        assert!(hseen.iter().all(|s| *s));
        let mut sseen = [false; Sketch::ALL.len()];
        for s in Sketch::ALL {
            assert!(!sseen[s.index()], "duplicate sketch index");
            sseen[s.index()] = true;
        }
        assert!(sseen.iter().all(|s| *s));
    }
}
