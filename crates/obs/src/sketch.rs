//! A dependency-free log-linear quantile sketch with a proven relative
//! error bound.
//!
//! The log2 histograms of [`crate::metrics`] answer "which power-of-two
//! bucket" — a factor-of-two error band that is too coarse for tail-latency
//! questions (p95/p99 of batch sizes, straddle pair costs, per-query
//! ticks). This sketch keeps the fixed-bucket, integer-only, allocation-free
//! design but subdivides every binary octave into `2^LINEAR_BITS = 16`
//! linear sub-buckets:
//!
//! * values `0 ≤ v < 32` land in an exact bucket (error 0);
//! * a value `v ≥ 32` with `e` = index of its leading bit lands in the
//!   sub-bucket addressed by the 4 bits below the leading bit. The bucket
//!   spans `2^(e-4)` consecutive integers and every member is at least
//!   `2^e`, so reporting the bucket midpoint is off by at most
//!   `2^(e-5) / 2^e = 1/32 ≈ 3.1%` — comfortably inside the ≤10% contract
//!   (verified against exact quantiles by a seeded test).
//!
//! Sketches merge bucket-wise (associative, commutative, count-conserving)
//! so per-worker sketches combine exactly like `Stats`. All arithmetic is
//! integer and deterministic: same observations → same quantiles, byte for
//! byte, on every platform.

/// Sub-bucket resolution: each binary octave is split into
/// `2^SKETCH_LINEAR_BITS` linear sub-buckets.
pub const SKETCH_LINEAR_BITS: u32 = 4;

/// `2^SKETCH_LINEAR_BITS`, as a bucket count.
const SUB_BUCKETS: usize = 16;

/// Values below this are stored exactly (one bucket per integer):
/// `2^(SKETCH_LINEAR_BITS + 1)`.
const EXACT_LIMIT: u64 = 32;

/// [`EXACT_LIMIT`] as a bucket count.
const EXACT_BUCKETS: usize = 32;

/// Octaves covered by the log-linear region: leading-bit positions
/// `SKETCH_LINEAR_BITS + 1 ..= 63`.
const OCTAVES: usize = 59;

/// Total bucket count: one per exact small value plus 16 per octave.
pub const SKETCH_BUCKETS: usize = EXACT_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Bucket index of `value`.
pub fn sketch_bucket_of(value: u64) -> usize {
    if value < EXACT_LIMIT {
        return usize::try_from(value).unwrap_or(0);
    }
    // Leading-bit position; value ≥ 32 ⇒ e ≥ 5, so e - SKETCH_LINEAR_BITS
    // never underflows.
    let e = 63u32.saturating_sub(value.leading_zeros());
    let sub = (value >> (e - SKETCH_LINEAR_BITS)) & ((1u64 << SKETCH_LINEAR_BITS) - 1);
    let octave = usize::try_from(e.saturating_sub(SKETCH_LINEAR_BITS + 1)).unwrap_or(0);
    let idx = EXACT_BUCKETS + octave * SUB_BUCKETS + usize::try_from(sub).unwrap_or(0);
    idx.min(SKETCH_BUCKETS - 1)
}

/// Midpoint representative of bucket `i` — the value reported for any
/// observation that landed there. For exact buckets this is the value
/// itself; for log-linear buckets the error is bounded by half the bucket
/// width, i.e. a relative error of at most `2^-(SKETCH_LINEAR_BITS + 1)`.
pub fn sketch_value_of(i: usize) -> u64 {
    if i < EXACT_BUCKETS {
        return u64::try_from(i).unwrap_or(0);
    }
    let o = i - EXACT_BUCKETS;
    let e = (SKETCH_LINEAR_BITS + 1 + u32::try_from(o / SUB_BUCKETS).unwrap_or(0)).min(63);
    let sub = u64::try_from(o % SUB_BUCKETS).unwrap_or(0);
    let width = 1u64 << (e - SKETCH_LINEAR_BITS);
    let lo = (1u64 << e).saturating_add(sub.saturating_mul(width));
    lo.saturating_add(width / 2)
}

/// A mergeable point-in-time quantile sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Per-bucket observation counts (see [`sketch_bucket_of`]).
    pub buckets: [u64; SKETCH_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl Default for SketchSnapshot {
    fn default() -> SketchSnapshot {
        SketchSnapshot { buckets: [0; SKETCH_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl SketchSnapshot {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        if let Some(b) = self.buckets.get_mut(sketch_bucket_of(value)) {
            *b = b.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds `other` into `self` bucket-wise. Associative, commutative, and
    /// count-conserving, so per-worker sketches merge like `Stats`.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-per-mille quantile (e.g. `500` → p50, `990` → p99): the
    /// representative of the bucket holding the ⌈count·q/1000⌉-th smallest
    /// observation, clamped to the exact maximum. `None` when empty.
    pub fn quantile(&self, q_permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let threshold = (u128::from(self.count) * u128::from(q_permille)).div_ceil(1000).max(1);
        let mut cum: u128 = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += u128::from(*b);
            if cum >= threshold {
                return Some(sketch_value_of(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..EXACT_LIMIT {
            assert_eq!(sketch_bucket_of(v), usize::try_from(v).unwrap());
            assert_eq!(sketch_value_of(sketch_bucket_of(v)), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0usize;
        for v in [0u64, 1, 31, 32, 33, 47, 48, 100, 1000, 1 << 20, 1 << 40, u64::MAX] {
            let b = sketch_bucket_of(v);
            assert!(b < SKETCH_BUCKETS, "bucket {b} out of range for {v}");
            assert!(b >= prev, "bucket index decreased at {v}");
            prev = b;
        }
    }

    #[test]
    fn representative_error_is_bounded() {
        // The documented bound: |rep − v| ≤ v / 32 for every v.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v + v / 2] {
                let rep = sketch_value_of(sketch_bucket_of(probe));
                let err = rep.abs_diff(probe);
                assert!(
                    err <= probe / 32 + 1,
                    "rep {rep} for {probe}: error {err} above bound {}",
                    probe / 32 + 1
                );
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_ten_percent() {
        // Seeded skewed data: quadratic growth gives a long tail.
        let mut sk = SketchSnapshot::default();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 12345u64;
        for i in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 50) + i * i / 64;
            sk.observe(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [500u64, 950, 990, 1000] {
            let rank =
                usize::try_from((u128::from(sk.count) * u128::from(q)).div_ceil(1000).max(1) - 1)
                    .unwrap();
            let truth = exact[rank];
            let est = sk.quantile(q).unwrap();
            let err = est.abs_diff(truth);
            assert!(
                err * 10 <= truth.max(10),
                "p{q}: estimate {est} vs exact {truth} (error {err} > 10%)"
            );
        }
        assert!(sk.quantile(1000).unwrap() <= sk.max, "p100 clamped to the exact max");
    }

    #[test]
    fn merge_is_count_conserving_and_matches_combined() {
        let mut a = SketchSnapshot::default();
        let mut b = SketchSnapshot::default();
        let mut all = SketchSnapshot::default();
        for v in 0..1000u64 {
            let target = if v % 3 == 0 { &mut a } else { &mut b };
            target.observe(v * v);
            all.observe(v * v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all, "merge must equal observing the union");
        // Commutative.
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(rev, merged);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sk = SketchSnapshot::default();
        assert_eq!(sk.quantile(500), None);
        assert_eq!(sk.count, 0);
        assert_eq!(sk.max, 0);
    }
}
