//! Prometheus text exposition (version 0.0.4) export and a small in-tree
//! format checker used by tests and CI.
//!
//! Counters become `# TYPE name counter` + one sample. Histograms follow
//! the standard cumulative-bucket convention: `name_bucket{le="…"}` lines
//! in increasing `le` order ending with `le="+Inf"`, then `name_sum` and
//! `name_count`. Bucket boundaries are the log2 upper bounds of
//! [`crate::metrics::bucket_le`]; empty tail buckets are trimmed (the
//! `+Inf` bucket always remains), so output size tracks the data.

use crate::metrics::{bucket_le, Counter, Hist, MetricsSnapshot};
use std::fmt::Write as _;

/// Serializes every counter and histogram to Prometheus text format.
pub fn export_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", snap.counter(c));
    }
    for h in Hist::ALL {
        let name = h.name();
        let hist = snap.hist(h);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last_nonzero = hist.buckets.iter().rposition(|b| *b > 0);
        let mut cum: u64 = 0;
        if let Some(last) = last_nonzero {
            for (i, b) in hist.buckets.iter().enumerate().take(last + 1) {
                cum = cum.saturating_add(*b);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_le(i));
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Checks `text` against the subset of the Prometheus exposition format
/// this crate emits: `# TYPE` declarations before their samples, legal
/// metric names, integer values, and for histograms monotone cumulative
/// buckets terminated by `+Inf` with `_count` equal to the `+Inf` bucket.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new();
    // In-flight histogram check state: (family, prev cumulative, inf seen, count seen).
    let mut hist: Option<HistCheck> = None;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if parts.next().is_some() {
                return Err(format!("line {n}: trailing tokens after TYPE"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric kind `{kind}`"));
            }
            if !valid_name(name) {
                return Err(format!("line {n}: invalid metric name `{name}`"));
            }
            if declared.iter().any(|(d, _)| d == name) {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            finish_hist(&hist, n)?;
            hist = (kind == "histogram").then(|| HistCheck::new(name));
            declared.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample line without a value"))?;
        let value: u64 =
            value.parse().map_err(|_| format!("line {n}: non-integer value `{value}`"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (name_and_labels, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let family = family_of(name);
        if !declared.iter().any(|(d, _)| d == family) {
            return Err(format!("line {n}: sample `{name}` precedes its TYPE declaration"));
        }
        if let Some(chk) = hist.as_mut() {
            if family == chk.family {
                chk.sample(name, labels, value, n)?;
                continue;
            }
        }
        if labels.is_some() {
            return Err(format!("line {n}: unexpected labels on non-histogram `{name}`"));
        }
    }
    finish_hist(&hist, text.lines().count())?;
    Ok(())
}

struct HistCheck {
    family: String,
    prev_cum: u64,
    inf: Option<u64>,
    count: Option<u64>,
    sum_seen: bool,
}

impl HistCheck {
    fn new(family: &str) -> HistCheck {
        HistCheck {
            family: family.to_string(),
            prev_cum: 0,
            inf: None,
            count: None,
            sum_seen: false,
        }
    }

    fn sample(
        &mut self,
        name: &str,
        labels: Option<&str>,
        value: u64,
        n: usize,
    ) -> Result<(), String> {
        if name == format!("{}_bucket", self.family) {
            let le = labels
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("line {n}: bucket sample without an le label"))?;
            if self.inf.is_some() {
                return Err(format!("line {n}: bucket after le=\"+Inf\""));
            }
            if value < self.prev_cum {
                return Err(format!(
                    "line {n}: cumulative bucket decreased ({} → {value})",
                    self.prev_cum
                ));
            }
            self.prev_cum = value;
            if le == "+Inf" {
                self.inf = Some(value);
            } else if le.parse::<u128>().is_err() {
                return Err(format!("line {n}: non-numeric le `{le}`"));
            }
        } else if name == format!("{}_sum", self.family) {
            self.sum_seen = true;
        } else if name == format!("{}_count", self.family) {
            self.count = Some(value);
        } else {
            return Err(format!("line {n}: unexpected sample `{name}` inside histogram"));
        }
        Ok(())
    }
}

fn finish_hist(hist: &Option<HistCheck>, n: usize) -> Result<(), String> {
    let Some(chk) = hist else { return Ok(()) };
    let inf = chk
        .inf
        .ok_or_else(|| format!("line {n}: histogram `{}` has no +Inf bucket", chk.family))?;
    if !chk.sum_seen {
        return Err(format!("line {n}: histogram `{}` has no _sum", chk.family));
    }
    match chk.count {
        Some(c) if c == inf => Ok(()),
        Some(c) => Err(format!("line {n}: `{}` _count {c} != +Inf bucket {inf}", chk.family)),
        None => Err(format!("line {n}: histogram `{}` has no _count", chk.family)),
    }
}

/// Strips the `_bucket`/`_sum`/`_count` histogram suffixes.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            return stem;
        }
    }
    name
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist, MetricsRegistry};

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.add(Counter::RecordPairs, 42);
        reg.add(Counter::GroupPairs, 6);
        for v in [0u64, 1, 2, 3, 9, 1000] {
            reg.observe(Hist::RecordPairsPerGroupPair, v);
        }
        reg.snapshot()
    }

    #[test]
    fn export_validates_and_contains_expected_lines() {
        let text = export_prometheus(&sample_snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE aggsky_record_pairs_total counter"));
        assert!(text.contains("aggsky_record_pairs_total 42"));
        assert!(text.contains("# TYPE aggsky_record_pairs_per_group_pair histogram"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_sum 1015"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_count 6"));
        // le="1023" is the bucket holding 1000 (2^10 − 1).
        assert!(text.contains("le=\"1023\""));
    }

    #[test]
    fn empty_registry_still_validates() {
        let text = export_prometheus(&MetricsRegistry::new().snapshot());
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export_prometheus(&sample_snapshot()), export_prometheus(&sample_snapshot()));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("no_type_decl 5\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm not_a_number\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\n# TYPE m counter\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err());
        // Histogram with decreasing cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // Histogram whose _count disagrees with the +Inf bucket.
        let bad2 = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(bad2).is_err());
        // Histogram missing the +Inf bucket entirely.
        let bad3 = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad3).is_err());
    }
}
