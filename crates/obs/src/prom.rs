//! Prometheus text exposition (version 0.0.4) export and a small in-tree
//! format checker used by tests and CI.
//!
//! Counters become `# TYPE name counter` + one sample. Histograms follow
//! the standard cumulative-bucket convention: `name_bucket{le="…"}` lines
//! in increasing `le` order ending with `le="+Inf"`, then `name_sum` and
//! `name_count`. Bucket boundaries are the log2 upper bounds of
//! [`crate::metrics::bucket_le`]; empty tail buckets are trimmed (the
//! `+Inf` bucket always remains), so output size tracks the data.
//! Quantile sketches export as `summary` families: `name{quantile="…"}`
//! lines in increasing quantile order (omitted when empty), then
//! `name_sum` and `name_count`.

use crate::metrics::{bucket_le, Counter, Hist, MetricsSnapshot, Sketch};
use std::fmt::Write as _;

/// The quantiles every sketch exports, as (label, per-mille) pairs.
const SUMMARY_QUANTILES: [(&str, u64); 3] = [("0.5", 500), ("0.95", 950), ("0.99", 990)];

/// Serializes every counter, histogram, and quantile sketch to Prometheus
/// text format.
pub fn export_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", snap.counter(c));
    }
    for h in Hist::ALL {
        let name = h.name();
        let hist = snap.hist(h);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last_nonzero = hist.buckets.iter().rposition(|b| *b > 0);
        let mut cum: u64 = 0;
        if let Some(last) = last_nonzero {
            for (i, b) in hist.buckets.iter().enumerate().take(last + 1) {
                cum = cum.saturating_add(*b);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_le(i));
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    for s in Sketch::ALL {
        let name = s.name();
        let sk = snap.sketch(s);
        let _ = writeln!(out, "# TYPE {name} summary");
        if sk.count > 0 {
            for (label, q) in SUMMARY_QUANTILES {
                if let Some(v) = sk.quantile(q) {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {v}");
                }
            }
            let _ = writeln!(out, "{name}{{quantile=\"1\"}} {}", sk.max);
        }
        let _ = writeln!(out, "{name}_sum {}", sk.sum);
        let _ = writeln!(out, "{name}_count {}", sk.count);
    }
    out
}

/// Checks `text` against the subset of the Prometheus exposition format
/// this crate emits: `# TYPE` declarations before their samples, legal
/// metric names, integer values, escape-aware label parsing, histograms
/// with monotone cumulative buckets terminated by `+Inf` and `_count`
/// equal to the `+Inf` bucket, and summaries with monotone quantile
/// samples plus `_sum`/`_count`. An empty exposition (or one whose
/// families all have zero observations) validates.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new();
    // In-flight compound-family check state (histogram or summary).
    let mut check: Option<Check> = None;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if parts.next().is_some() {
                return Err(format!("line {n}: trailing tokens after TYPE"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {n}: unknown metric kind `{kind}`"));
            }
            if !valid_name(name) {
                return Err(format!("line {n}: invalid metric name `{name}`"));
            }
            if declared.iter().any(|(d, _)| d == name) {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            finish_check(&check, n)?;
            check = match kind {
                "histogram" => Some(Check::Hist(HistCheck::new(name))),
                "summary" => Some(Check::Summary(SummaryCheck::new(name))),
                _ => None,
            };
            declared.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample line without a value"))?;
        let value: u64 =
            value.parse().map_err(|_| format!("line {n}: non-integer value `{value}`"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let raw = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(parse_labels(raw, n)?))
            }
            None => (name_and_labels, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let family = family_of(name);
        if !declared.iter().any(|(d, _)| d == family || d == name) {
            return Err(format!("line {n}: sample `{name}` precedes its TYPE declaration"));
        }
        match check.as_mut() {
            Some(Check::Hist(chk)) if family == chk.family => {
                chk.sample(name, labels.as_deref(), value, n)?;
                continue;
            }
            Some(Check::Summary(chk)) if family == chk.family || name == chk.family => {
                chk.sample(name, labels.as_deref(), value, n)?;
                continue;
            }
            _ => {}
        }
        if labels.is_some_and(|l| !l.is_empty()) {
            return Err(format!("line {n}: unexpected labels on non-compound `{name}`"));
        }
    }
    finish_check(&check, text.lines().count())?;
    Ok(())
}

/// Parses a brace-stripped label set (`k="v",k2="v2"`), honoring the
/// exposition-format escapes `\\`, `\"`, and `\n` inside values.
fn parse_labels(raw: &str, n: usize) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(&',') | Some(&' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(out);
        }
        let mut key = String::new();
        while let Some(c) = chars.peek().copied() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if !valid_name(&key) {
            return Err(format!("line {n}: invalid label name `{key}`"));
        }
        if chars.next() != Some('=') {
            return Err(format!("line {n}: label `{key}` without `=`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("line {n}: unquoted value for label `{key}`"));
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('"') => val.push('"'),
                    Some('\\') => val.push('\\'),
                    Some('n') => val.push('\n'),
                    other => {
                        return Err(format!("line {n}: bad escape {other:?} in label `{key}`"))
                    }
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err(format!("line {n}: unterminated value for label `{key}`")),
            }
        }
        out.push((key, val));
    }
}

enum Check {
    Hist(HistCheck),
    Summary(SummaryCheck),
}

struct HistCheck {
    family: String,
    prev_cum: u64,
    inf: Option<u64>,
    count: Option<u64>,
    sum_seen: bool,
}

impl HistCheck {
    fn new(family: &str) -> HistCheck {
        HistCheck {
            family: family.to_string(),
            prev_cum: 0,
            inf: None,
            count: None,
            sum_seen: false,
        }
    }

    fn sample(
        &mut self,
        name: &str,
        labels: Option<&[(String, String)]>,
        value: u64,
        n: usize,
    ) -> Result<(), String> {
        if name == format!("{}_bucket", self.family) {
            let le = labels
                .and_then(|l| l.iter().find(|(k, _)| k == "le"))
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {n}: bucket sample without an le label"))?;
            if self.inf.is_some() {
                return Err(format!("line {n}: bucket after le=\"+Inf\""));
            }
            // Cumulative-bucket monotonicity: each bucket must hold at
            // least as many observations as every earlier one.
            if value < self.prev_cum {
                return Err(format!(
                    "line {n}: cumulative bucket decreased ({} → {value})",
                    self.prev_cum
                ));
            }
            self.prev_cum = value;
            if le == "+Inf" {
                self.inf = Some(value);
            } else if le.parse::<u128>().is_err() {
                return Err(format!("line {n}: non-numeric le `{le}`"));
            }
        } else if name == format!("{}_sum", self.family) {
            self.sum_seen = true;
        } else if name == format!("{}_count", self.family) {
            self.count = Some(value);
        } else {
            return Err(format!("line {n}: unexpected sample `{name}` inside histogram"));
        }
        Ok(())
    }
}

struct SummaryCheck {
    family: String,
    prev_quantile_value: u64,
    count: Option<u64>,
    sum_seen: bool,
}

impl SummaryCheck {
    fn new(family: &str) -> SummaryCheck {
        SummaryCheck {
            family: family.to_string(),
            prev_quantile_value: 0,
            count: None,
            sum_seen: false,
        }
    }

    fn sample(
        &mut self,
        name: &str,
        labels: Option<&[(String, String)]>,
        value: u64,
        n: usize,
    ) -> Result<(), String> {
        if name == self.family {
            let q = labels
                .and_then(|l| l.iter().find(|(k, _)| k == "quantile"))
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {n}: summary sample without a quantile label"))?;
            if !valid_quantile(q) {
                return Err(format!("line {n}: invalid quantile `{q}`"));
            }
            // This crate emits quantiles in increasing q, so the reported
            // values must be non-decreasing.
            if value < self.prev_quantile_value {
                return Err(format!(
                    "line {n}: quantile value decreased ({} → {value})",
                    self.prev_quantile_value
                ));
            }
            self.prev_quantile_value = value;
        } else if name == format!("{}_sum", self.family) {
            self.sum_seen = true;
        } else if name == format!("{}_count", self.family) {
            self.count = Some(value);
        } else {
            return Err(format!("line {n}: unexpected sample `{name}` inside summary"));
        }
        Ok(())
    }
}

/// A quantile label must be a decimal in `[0, 1]`: `0`, `1`, `0.…`, or
/// `1.0…0` (checked lexically — no float arithmetic).
fn valid_quantile(q: &str) -> bool {
    let (int, frac) = match q.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (q, None),
    };
    let frac_ok = frac.is_none_or(|f| !f.is_empty() && f.chars().all(|c| c.is_ascii_digit()));
    match int {
        "0" => frac_ok,
        "1" => frac_ok && frac.is_none_or(|f| f.chars().all(|c| c == '0')),
        _ => false,
    }
}

fn finish_check(check: &Option<Check>, n: usize) -> Result<(), String> {
    match check {
        None => Ok(()),
        Some(Check::Hist(chk)) => {
            let inf = chk.inf.ok_or_else(|| {
                format!("line {n}: histogram `{}` has no +Inf bucket", chk.family)
            })?;
            if !chk.sum_seen {
                return Err(format!("line {n}: histogram `{}` has no _sum", chk.family));
            }
            match chk.count {
                Some(c) if c == inf => Ok(()),
                Some(c) => {
                    Err(format!("line {n}: `{}` _count {c} != +Inf bucket {inf}", chk.family))
                }
                None => Err(format!("line {n}: histogram `{}` has no _count", chk.family)),
            }
        }
        Some(Check::Summary(chk)) => {
            if !chk.sum_seen {
                return Err(format!("line {n}: summary `{}` has no _sum", chk.family));
            }
            if chk.count.is_none() {
                return Err(format!("line {n}: summary `{}` has no _count", chk.family));
            }
            Ok(())
        }
    }
}

/// Strips the `_bucket`/`_sum`/`_count` histogram suffixes.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            return stem;
        }
    }
    name
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist, MetricsRegistry};

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.add(Counter::RecordPairs, 42);
        reg.add(Counter::GroupPairs, 6);
        for v in [0u64, 1, 2, 3, 9, 1000] {
            reg.observe(Hist::RecordPairsPerGroupPair, v);
        }
        reg.snapshot()
    }

    #[test]
    fn export_validates_and_contains_expected_lines() {
        let text = export_prometheus(&sample_snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE aggsky_record_pairs_total counter"));
        assert!(text.contains("aggsky_record_pairs_total 42"));
        assert!(text.contains("# TYPE aggsky_record_pairs_per_group_pair histogram"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_sum 1015"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair_count 6"));
        // le="1023" is the bucket holding 1000 (2^10 − 1).
        assert!(text.contains("le=\"1023\""));
    }

    #[test]
    fn empty_registry_still_validates() {
        let text = export_prometheus(&MetricsRegistry::new().snapshot());
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export_prometheus(&sample_snapshot()), export_prometheus(&sample_snapshot()));
    }

    #[test]
    fn sketches_export_as_valid_summaries() {
        let reg = MetricsRegistry::new();
        for v in 1..=100u64 {
            reg.observe(Hist::BatchBlockPairs, v);
        }
        let text = export_prometheus(&reg.snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE aggsky_batch_block_pairs_quantiles summary"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles{quantile=\"0.5\"}"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles{quantile=\"0.99\"}"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles{quantile=\"1\"} 100"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles_count 100"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles_sum 5050"));
        // Empty sketches emit only the sum/count pair, which validates too.
        assert!(text.contains("# TYPE aggsky_query_ticks summary"));
        assert!(text.contains("aggsky_query_ticks_count 0"));
    }

    #[test]
    fn validator_parses_escaped_label_values() {
        // An escaped quote and backslash inside a label value must not
        // confuse the label parser (the old strip_prefix parsing did).
        let ok = "# TYPE h histogram\nh_bucket{job=\"a\\\"b\\\\c\",le=\"3\"} 2\n\
                  h_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 2\n";
        validate_prometheus(ok).unwrap();
        let labels = parse_labels("job=\"a\\\"b\\\\c\",le=\"3\"", 1).unwrap();
        assert_eq!(labels[0], ("job".to_string(), "a\"b\\c".to_string()));
        assert_eq!(labels[1], ("le".to_string(), "3".to_string()));
        assert!(parse_labels("le=\"unterminated", 1).is_err());
        assert!(parse_labels("le=unquoted", 1).is_err());
        assert!(parse_labels("le=\"bad\\x\"", 1).is_err());
        assert!(parse_labels("9bad=\"v\"", 1).is_err());
    }

    #[test]
    fn validator_rejects_malformed_summaries() {
        // Quantile values must be non-decreasing in emission order.
        let bad = "# TYPE s summary\ns{quantile=\"0.5\"} 9\ns{quantile=\"0.99\"} 3\n\
                   s_sum 12\ns_count 2\n";
        assert!(validate_prometheus(bad).is_err());
        // A quantile label outside [0, 1] is invalid.
        let bad2 = "# TYPE s summary\ns{quantile=\"1.5\"} 9\ns_sum 9\ns_count 1\n";
        assert!(validate_prometheus(bad2).is_err());
        // Missing _count.
        let bad3 = "# TYPE s summary\ns{quantile=\"0.5\"} 9\ns_sum 9\n";
        assert!(validate_prometheus(bad3).is_err());
        // Missing _sum.
        let bad4 = "# TYPE s summary\ns{quantile=\"0.5\"} 9\ns_count 1\n";
        assert!(validate_prometheus(bad4).is_err());
        // A summary with no observations still validates.
        validate_prometheus("# TYPE s summary\ns_sum 0\ns_count 0\n").unwrap();
        assert!(valid_quantile("0.95"));
        assert!(valid_quantile("1"));
        assert!(valid_quantile("1.000"));
        assert!(!valid_quantile("1.01"));
        assert!(!valid_quantile("2"));
        assert!(!valid_quantile("0."));
        assert!(!valid_quantile(".5"));
    }

    #[test]
    fn empty_exposition_validates() {
        validate_prometheus("").unwrap();
        validate_prometheus("\n\n").unwrap();
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("no_type_decl 5\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm not_a_number\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\n# TYPE m counter\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err());
        // Histogram with decreasing cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // Histogram whose _count disagrees with the +Inf bucket.
        let bad2 = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(bad2).is_err());
        // Histogram missing the +Inf bucket entirely.
        let bad3 = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad3).is_err());
    }
}
