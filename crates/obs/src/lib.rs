//! # aggsky-obs
//!
//! Deterministic, dependency-free observability for the aggsky workspace:
//! a span/event [`Recorder`] with two clock domains, a static metric
//! registry (counters + log2-bucketed histograms), and three exporters —
//! Chrome trace-event JSON ([`export_chrome`], loadable in Perfetto),
//! Prometheus text exposition ([`export_prometheus`]), and a human-readable
//! per-phase summary tree ([`render_summary`], the renderer behind SQL
//! `EXPLAIN ANALYZE`).
//!
//! ## Design rules (DESIGN.md §11)
//!
//! * **Two clock domains.** Counting-path instrumentation stamps events in
//!   virtual **ticks** (record pairs spent), never wall time; the same run
//!   therefore records the same trace, byte for byte. Wall-clock stamps
//!   exist only for bench-side use via [`WallClock`] — lint rule L6 forbids
//!   `Instant`/`SystemTime` everywhere else.
//! * **Overhead contract.** Disabled instrumentation is a [`NoopRecorder`]
//!   behind the same trait: no allocation, no locking, no branching beyond
//!   the one load that fetches the recorder reference.
//! * **Layering.** This crate sits at the bottom of the workspace DAG
//!   (`obs → ∅`); `core` and `sql` may depend on it, never the reverse.
//!
//! ```
//! use aggsky_obs::{export_chrome, Recorder, Stamp, TraceRecorder};
//!
//! let rec = TraceRecorder::new();
//! let span = rec.span_start("prepare", 0, Stamp::tick(0));
//! rec.span_end(span, Stamp::tick(128), &[("blocks", 16)]);
//! let json = export_chrome(&rec.snapshot());
//! assert!(json.contains("\"name\":\"prepare\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod flight;
pub mod metrics;
pub mod prom;
pub mod querylog;
pub mod recorder;
pub mod sketch;
pub mod summary;

pub use chrome::export_chrome;
pub use clock::{ClockDomain, Stamp, WallClock};
pub use flight::{FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    bucket_le, bucket_of, Counter, Hist, HistSnapshot, MetricsRegistry, MetricsSnapshot, Sketch,
    HIST_BUCKETS,
};
pub use prom::{export_prometheus, validate_prometheus};
pub use querylog::{query_id, QueryJournal, QueryRecord};
pub use recorder::{
    Args, EventRec, NoopRecorder, Recorder, SpanId, SpanRec, TraceRecorder, TraceSnapshot, NOOP,
};
pub use sketch::{
    sketch_bucket_of, sketch_value_of, SketchSnapshot, SKETCH_BUCKETS, SKETCH_LINEAR_BITS,
};
pub use summary::render_summary;
