//! Chrome trace-event JSON export (the legacy "JSON Array Format" that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) both load).
//!
//! Each finished span becomes one complete (`"ph":"X"`) event with `ts` and
//! `dur` taken verbatim from its stamps (ticks are written as if they were
//! microseconds — one tick = one record pair = one "µs" on the timeline).
//! Unfinished spans become begin (`"B"`) events, instant events become
//! `"i"` events, and each track gets a `thread_name` metadata record so
//! Perfetto labels the rows `main` / `worker-0` / `worker-1` / ….
//!
//! The writer is fully deterministic: spans are emitted in id order, events
//! in sequence order, tracks sorted, and every number is an integer —
//! identical recordings serialize to identical bytes.

use crate::clock::Stamp;
use crate::recorder::TraceSnapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serializes a snapshot to Chrome trace-event JSON.
pub fn export_chrome(snap: &TraceSnapshot) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut tracks: BTreeSet<u32> = BTreeSet::new();
    for s in &snap.spans {
        tracks.insert(s.track);
    }
    for e in &snap.events {
        tracks.insert(e.track);
    }
    for t in &tracks {
        let name = if *t == 0 { "main".to_string() } else { format!("worker-{}", t - 1) };
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&name)
        );
    }
    for s in &snap.spans {
        sep(&mut out, &mut first);
        match s.end {
            Some(end) => {
                let dur = end.value.saturating_sub(s.start.value);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
                     \"pid\":0,\"tid\":{}",
                    escape(s.name),
                    s.start.domain.label(),
                    s.start.value,
                    s.track
                );
            }
            None => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":{}",
                    escape(s.name),
                    s.start.domain.label(),
                    s.start.value,
                    s.track
                );
            }
        }
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"span_id\":{},\"parent\":{}", s.id, s.parent);
        for (k, v) in &s.args {
            let _ = write!(out, ",\"{}\":{v}", escape(k));
        }
        out.push_str("}}");
    }
    for e in &snap.events {
        sep(&mut out, &mut first);
        let Stamp { domain, value } = e.at;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{value},\"pid\":0,\
             \"tid\":{},\"s\":\"t\"",
            escape(e.name),
            domain.label(),
            e.track
        );
        out.push_str(",\"args\":{");
        let mut afirst = true;
        for (k, v) in &e.args {
            if !afirst {
                out.push(',');
            }
            afirst = false;
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// Shared with the flight-recorder and query-log JSON writers.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Stamp;
    use crate::metrics::{Counter, Hist};
    use crate::recorder::{Recorder, TraceRecorder};

    fn sample() -> TraceSnapshot {
        let rec = TraceRecorder::new();
        let a = rec.span_start("prepare", 0, Stamp::tick(0));
        rec.span_end(a, Stamp::tick(10), &[("blocks", 4)]);
        let b = rec.span_start("worker", 1, Stamp::tick(0));
        rec.event("retry", 1, Stamp::tick(3), &[("chunk", 2)]);
        rec.span_end(b, Stamp::tick(20), &[]);
        rec.span_start("open", 0, Stamp::tick(20));
        rec.add(Counter::RecordPairs, 30);
        rec.observe(Hist::BatchBlockPairs, 2);
        rec.snapshot()
    }

    #[test]
    fn exports_valid_looking_json_array() {
        let json = export_chrome(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"ph\":\"X\""), "finished span → complete event");
        assert!(json.contains("\"ph\":\"B\""), "unfinished span → begin event");
        assert!(json.contains("\"ph\":\"i\""), "instant event present");
        assert!(json.contains("\"name\":\"worker-0\""), "track metadata present");
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"blocks\":4"));
        assert_eq!(json.matches("thread_name").count(), 2);
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        assert_eq!(export_chrome(&sample()), export_chrome(&sample()));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
