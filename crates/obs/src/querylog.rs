//! The structured query log: one self-describing record per executed SQL
//! statement, buffered in an in-memory journal with a JSONL exporter.
//!
//! ## Query ids
//!
//! A query id must be deterministic (same script → same ids, byte for
//! byte) yet distinguish re-executions of the same text. The scheme hashes
//! the statement text with FNV-1a 64, rotates it so text and sequence bits
//! interleave, and folds in the statement's 0-based session sequence
//! number scaled by the 64-bit golden-ratio constant:
//!
//! ```text
//! id = rotl(fnv1a64(sql), 17) ^ (seq · 0x9E3779B97F4A7C15)
//! ```
//!
//! ## Determinism
//!
//! Every field is derived from the virtual tick domain or the statement
//! itself; wall-clock durations are recorded only when the journal's
//! wall-time switch is explicitly enabled, so the default JSONL export is
//! byte-identical across same-seed runs. Per-query tick costs also feed a
//! [`SketchSnapshot`] so p50/p95/p99 of query cost are available without
//! retaining unbounded history.

use crate::chrome::escape;
use crate::sketch::SketchSnapshot;
use std::fmt::Write as _;
use std::sync::Mutex;

/// FNV-1a 64-bit hash of `text`.
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The deterministic query id for the `seq`-th statement of a session (see
/// the module docs for the scheme).
pub fn query_id(seq: u64, sql: &str) -> u64 {
    fnv1a64(sql).rotate_left(17) ^ seq.wrapping_mul(0x9E3779B97F4A7C15)
}

/// One executed statement, self-described.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryRecord {
    /// Deterministic id (see [`query_id`]).
    pub query_id: u64,
    /// 0-based statement sequence number within the session.
    pub seq: u64,
    /// The statement text as executed (whitespace-trimmed).
    pub sql: String,
    /// Statement class: `"select"`, `"explain"`, `"explain_analyze"`,
    /// `"ddl"`, `"dml"`, `"set"`.
    pub kind: &'static str,
    /// Compact plan shape, e.g. `"scan(movie)+group+skyline(d=2)"`.
    pub plan: String,
    /// Skyline γ threshold in per-mille (`1000` = classic skyline); `None`
    /// for statements without a skyline clause.
    pub gamma_permille: Option<u64>,
    /// Kernel configuration label the skyline step ran under.
    pub kernel: String,
    /// Record-pair ticks charged (the pair budget actually spent).
    pub ticks: u64,
    /// The budget in force (`0` = unlimited).
    pub budget: u64,
    /// Pair-cache hits serving group comparisons.
    pub cache_hits: u64,
    /// Pair-cache misses.
    pub cache_misses: u64,
    /// Block pairs classified all-dominating by corner tests.
    pub blocks_full: u64,
    /// Block pairs classified none-dominating by corner tests.
    pub blocks_skipped: u64,
    /// Table rows scanned.
    pub rows_scanned: u64,
    /// Groups materialized by the aggregation pipeline.
    pub groups_built: u64,
    /// Rows returned to the client.
    pub rows_out: u64,
    /// True when the statement hit its budget/cancellation edge.
    pub interrupted: bool,
    /// True when `ticks` met the journal's `SET SLOW_QUERY` threshold.
    pub slow: bool,
    /// Epoch id published by a write batch routed through a live skyline
    /// service binding; `None` for unrouted statements (the serving fields
    /// below are then omitted from the JSON export entirely).
    pub epoch: Option<u64>,
    /// Write operations absorbed by the routed batch.
    pub batch_rows: u64,
    /// Pairs the routed batch served from the Property-2 drift interval
    /// without recounting.
    pub deferred_pairs: u64,
    /// Pair tallies the routed batch recomputed through the kernel.
    pub flushed_pairs: u64,
    /// Wall-clock duration; `None` unless wall timing was explicitly
    /// enabled (keeps the default export deterministic).
    pub wall_micros: Option<u64>,
}

impl QueryRecord {
    /// Renders the record as one JSON object (no trailing newline). Key
    /// order is fixed; `wall_micros` is omitted when absent.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"query_id\":\"{:016x}\",\"seq\":{},\"kind\":\"{}\",\"sql\":\"{}\"",
            self.query_id,
            self.seq,
            escape(self.kind),
            escape(&self.sql)
        );
        let _ = write!(out, ",\"plan\":\"{}\"", escape(&self.plan));
        match self.gamma_permille {
            Some(g) => {
                let _ = write!(out, ",\"gamma_permille\":{g}");
            }
            None => out.push_str(",\"gamma_permille\":null"),
        }
        let _ = write!(out, ",\"kernel\":\"{}\"", escape(&self.kernel));
        let _ = write!(
            out,
            ",\"ticks\":{},\"budget\":{},\"cache_hits\":{},\"cache_misses\":{}",
            self.ticks, self.budget, self.cache_hits, self.cache_misses
        );
        let _ = write!(
            out,
            ",\"blocks_full\":{},\"blocks_skipped\":{},\"rows_scanned\":{},\"groups_built\":{}",
            self.blocks_full, self.blocks_skipped, self.rows_scanned, self.groups_built
        );
        let _ = write!(
            out,
            ",\"rows_out\":{},\"interrupted\":{},\"slow\":{}",
            self.rows_out, self.interrupted, self.slow
        );
        if let Some(e) = self.epoch {
            let _ = write!(
                out,
                ",\"epoch\":{e},\"batch_rows\":{},\"deferred_pairs\":{},\"flushed_pairs\":{}",
                self.batch_rows, self.deferred_pairs, self.flushed_pairs
            );
        }
        if let Some(w) = self.wall_micros {
            let _ = write!(out, ",\"wall_micros\":{w}");
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct JournalState {
    records: Vec<QueryRecord>,
    ticks_sketch: SketchSnapshot,
    slow_threshold_ticks: u64,
}

/// The in-memory journal: appended to by the SQL engine, read by
/// exporters, tests, and the CLI.
#[derive(Debug, Default)]
pub struct QueryJournal {
    state: Mutex<JournalState>,
}

impl QueryJournal {
    /// An empty journal with no slow-query threshold.
    pub fn new() -> QueryJournal {
        QueryJournal::default()
    }

    /// Sets the `SET SLOW_QUERY` threshold in ticks (`0` disables flagging).
    pub fn set_slow_threshold_ticks(&self, ticks: u64) {
        if let Ok(mut st) = self.state.lock() {
            st.slow_threshold_ticks = ticks;
        }
    }

    /// The active slow-query threshold in ticks (`0` = disabled).
    pub fn slow_threshold_ticks(&self) -> u64 {
        self.state.lock().map_or(0, |st| st.slow_threshold_ticks)
    }

    /// Appends one record, flagging it slow when the threshold is set and
    /// met, and feeding the per-query tick sketch.
    pub fn push(&self, mut record: QueryRecord) {
        if let Ok(mut st) = self.state.lock() {
            record.slow = st.slow_threshold_ticks > 0 && record.ticks >= st.slow_threshold_ticks;
            st.ticks_sketch.observe(record.ticks);
            st.records.push(record);
        }
    }

    /// Number of journaled statements.
    pub fn len(&self) -> usize {
        self.state.lock().map_or(0, |st| st.records.len())
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every record, in execution order.
    pub fn records(&self) -> Vec<QueryRecord> {
        self.state.lock().map_or_else(|_| Vec::new(), |st| st.records.clone())
    }

    /// Records currently flagged slow.
    pub fn slow_records(&self) -> Vec<QueryRecord> {
        self.records().into_iter().filter(|r| r.slow).collect()
    }

    /// The mergeable sketch of per-query tick costs.
    pub fn ticks_sketch(&self) -> SketchSnapshot {
        self.state.lock().map_or_else(|_| SketchSnapshot::default(), |st| st.ticks_sketch.clone())
    }

    /// Exports the journal as JSON Lines (one record per line, fixed key
    /// order, trailing newline when non-empty). Byte-identical across
    /// same-seed runs unless wall timing was enabled.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, sql: &str, ticks: u64) -> QueryRecord {
        QueryRecord {
            query_id: query_id(seq, sql),
            seq,
            sql: sql.to_string(),
            kind: "select",
            plan: "scan(t)+skyline(d=2)".to_string(),
            gamma_permille: Some(750),
            kernel: "blocked(8)".to_string(),
            ticks,
            ..QueryRecord::default()
        }
    }

    #[test]
    fn query_ids_are_deterministic_and_distinguish_reexecution() {
        let a = query_id(0, "SELECT 1");
        assert_eq!(a, query_id(0, "SELECT 1"), "same seq + text → same id");
        assert_ne!(a, query_id(1, "SELECT 1"), "re-execution gets a new id");
        assert_ne!(a, query_id(0, "SELECT 2"), "different text → different id");
    }

    #[test]
    fn journal_flags_slow_queries_against_threshold() {
        let j = QueryJournal::new();
        j.push(record(0, "SELECT a", 100));
        j.set_slow_threshold_ticks(500);
        j.push(record(1, "SELECT b", 499));
        j.push(record(2, "SELECT c", 500));
        let slow = j.slow_records();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].seq, 2);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn jsonl_is_deterministic_and_omits_wall_time_by_default() {
        let make = || {
            let j = QueryJournal::new();
            j.push(record(0, "SELECT 'quo\"ted'", 42));
            j.push(record(1, "SELECT b", 7));
            j.export_jsonl()
        };
        let text = make();
        assert_eq!(text, make());
        assert_eq!(text.lines().count(), 2);
        assert!(!text.contains("wall_micros"), "wall time off by default");
        assert!(text.contains("\"gamma_permille\":750"));
        assert!(text.contains("quo\\\"ted"), "sql text is JSON-escaped");
        let mut with_wall = record(2, "SELECT c", 9);
        with_wall.wall_micros = Some(123);
        assert!(with_wall.to_json().contains("\"wall_micros\":123"));
    }

    #[test]
    fn ticks_sketch_tracks_query_costs() {
        let j = QueryJournal::new();
        for t in [10u64, 20, 30, 1000] {
            j.push(record(t, "SELECT x", t));
        }
        let sk = j.ticks_sketch();
        assert_eq!(sk.count, 4);
        assert_eq!(sk.max, 1000);
        assert!(sk.quantile(500).unwrap() <= 30);
    }
}
