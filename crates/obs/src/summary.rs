//! Human-readable per-phase summary: the span tree with inline arguments,
//! aggregated instant events, and non-zero metric totals.
//!
//! This is the renderer behind SQL `EXPLAIN ANALYZE` and the bench
//! harness's span summaries. Output is plain ASCII-plus-box-drawing text,
//! deterministic for deterministic recordings.

use crate::clock::ClockDomain;
use crate::metrics::{Counter, Hist, Sketch};
use crate::recorder::{SpanRec, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the snapshot as a span tree followed by event and metric
/// sections. Sections with nothing to show are omitted.
pub fn render_summary(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let mut children: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
        let mut roots: Vec<&SpanRec> = Vec::new();
        for s in &snap.spans {
            if s.parent == 0 {
                roots.push(s);
            } else {
                children.entry(s.parent).or_default().push(s);
            }
        }
        for (i, root) in roots.iter().enumerate() {
            render_span(&mut out, root, &children, "", i + 1 == roots.len(), true);
        }
    }
    let mut event_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &snap.events {
        *event_counts.entry(e.name).or_insert(0) += 1;
    }
    if !event_counts.is_empty() {
        out.push_str("events:");
        for (name, n) in &event_counts {
            let _ = write!(out, " {name}\u{00d7}{n}");
        }
        out.push('\n');
    }
    let nonzero: Vec<Counter> =
        Counter::ALL.into_iter().filter(|c| snap.metrics.counter(*c) > 0).collect();
    if !nonzero.is_empty() {
        out.push_str("counters:\n");
        for c in nonzero {
            let _ = writeln!(out, "  {} = {}", c.name(), snap.metrics.counter(c));
        }
    }
    let observed: Vec<Hist> =
        Hist::ALL.into_iter().filter(|h| snap.metrics.hist(*h).count > 0).collect();
    if !observed.is_empty() {
        out.push_str("histograms:\n");
        for h in observed {
            let snap_h = snap.metrics.hist(h);
            let p50 = snap_h.quantile_le(500).unwrap_or(0);
            let p99 = snap_h.quantile_le(990).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {} count={} sum={} p50\u{2264}{p50} p99\u{2264}{p99}",
                h.name(),
                snap_h.count,
                snap_h.sum
            );
        }
    }
    let sketched: Vec<Sketch> =
        Sketch::ALL.into_iter().filter(|s| snap.metrics.sketch(*s).count > 0).collect();
    if !sketched.is_empty() {
        out.push_str("sketches:\n");
        for s in sketched {
            let sk = snap.metrics.sketch(s);
            let p50 = sk.quantile(500).unwrap_or(0);
            let p95 = sk.quantile(950).unwrap_or(0);
            let p99 = sk.quantile(990).unwrap_or(0);
            let _ = writeln!(
                out,
                "  {} count={} p50={p50} p95={p95} p99={p99} max={}",
                s.name(),
                sk.count,
                sk.max
            );
        }
    }
    out
}

fn render_span(
    out: &mut String,
    span: &SpanRec,
    children: &BTreeMap<u64, Vec<&SpanRec>>,
    prefix: &str,
    last: bool,
    root: bool,
) {
    let (branch, child_pad) = if root {
        ("", "")
    } else if last {
        ("\u{2514}\u{2500} ", "   ")
    } else {
        ("\u{251c}\u{2500} ", "\u{2502}  ")
    };
    let _ = write!(out, "{prefix}{branch}{}", span.name);
    let unit = match span.start.domain {
        ClockDomain::Tick => "ticks",
        ClockDomain::Wall => "\u{00b5}s",
    };
    match span.end {
        Some(end) => {
            let _ = write!(out, " [{}..{} {unit}]", span.start.value, end.value);
        }
        None => {
            let _ = write!(out, " [{}.. {unit}, unfinished]", span.start.value);
        }
    }
    if span.track > 0 {
        let _ = write!(out, " (worker {})", span.track - 1);
    }
    for (k, v) in &span.args {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
    let kids: &[&SpanRec] = match children.get(&span.id) {
        Some(v) => v.as_slice(),
        None => &[],
    };
    let child_prefix = format!("{prefix}{child_pad}");
    for (i, kid) in kids.iter().enumerate() {
        render_span(out, kid, children, &child_prefix, i + 1 == kids.len(), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Stamp;
    use crate::metrics::{Counter, Hist};
    use crate::recorder::{Recorder, TraceRecorder};

    #[test]
    fn renders_tree_events_and_metrics() {
        let rec = TraceRecorder::new();
        let sel = rec.span_start("select", 0, Stamp::tick(0));
        let scan = rec.span_start("scan", 0, Stamp::tick(0));
        rec.span_end(scan, Stamp::tick(0), &[("rows", 500)]);
        let sky = rec.span_start("IN", 0, Stamp::tick(0));
        rec.event("checkpoint", 0, Stamp::tick(64), &[]);
        rec.event("checkpoint", 0, Stamp::tick(128), &[]);
        rec.span_end(sky, Stamp::tick(200), &[("group_pairs", 40)]);
        rec.span_end(sel, Stamp::tick(200), &[]);
        rec.add(Counter::RecordPairs, 200);
        rec.observe(Hist::RecordPairsPerGroupPair, 5);
        let text = render_summary(&rec.snapshot());
        assert!(text.contains("select [0..200 ticks]"));
        assert!(text.contains("├─ scan [0..0 ticks] rows=500"));
        assert!(text.contains("└─ IN [0..200 ticks] group_pairs=40"));
        assert!(text.contains("events: checkpoint×2"));
        assert!(text.contains("aggsky_record_pairs_total = 200"));
        assert!(text.contains("aggsky_record_pairs_per_group_pair count=1 sum=5"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_summary(&TraceSnapshot::empty()), "");
    }

    #[test]
    fn renders_checkpoint_counters_and_sketches() {
        let rec = TraceRecorder::new();
        rec.add(Counter::CheckpointSaves, 3);
        rec.add(Counter::CheckpointLoads, 1);
        rec.add(Counter::CheckpointFramesSkipped, 2);
        rec.observe(Hist::CheckpointFrameBytes, 4096);
        for v in 1..=50u64 {
            rec.observe(Hist::BatchBlockPairs, v);
        }
        let text = render_summary(&rec.snapshot());
        assert!(text.contains("aggsky_checkpoint_saves_total = 3"));
        assert!(text.contains("aggsky_checkpoint_loads_total = 1"));
        assert!(text.contains("aggsky_checkpoint_frames_skipped_total = 2"));
        assert!(text.contains("aggsky_checkpoint_frame_bytes count=1 sum=4096"));
        assert!(text.contains("sketches:"));
        assert!(text.contains("aggsky_batch_block_pairs_quantiles count=50"));
        assert!(text.contains("max=50"));
    }

    #[test]
    fn deterministic_rendering() {
        let make = || {
            let rec = TraceRecorder::new();
            let a = rec.span_start("a", 0, Stamp::tick(0));
            rec.span_end(a, Stamp::tick(1), &[]);
            render_summary(&rec.snapshot())
        };
        assert_eq!(make(), make());
    }
}
