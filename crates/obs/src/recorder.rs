//! The [`Recorder`] trait and its two implementations.
//!
//! [`NoopRecorder`] is a zero-sized unit type; every method is an empty
//! body, so a call through `&NOOP` compiles to (at most) one virtual
//! dispatch that the optimizer folds away when the receiver type is known.
//! Instrumented code holds a `&dyn Recorder` obtained from its
//! `RunContext`; the disabled path therefore costs one discriminant load
//! and no allocation — the overhead contract of DESIGN.md §11.
//!
//! [`TraceRecorder`] records spans and instant events into mutex-protected
//! buffers and metrics into the lock-free [`MetricsRegistry`]. Span and
//! event identities are assigned in arrival order; combined with tick-domain
//! stamps, a sequential run produces a byte-identical export every time.

use crate::clock::Stamp;
use crate::metrics::{Counter, Hist, MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Identifier of an open or finished span. `0` means "no span" (the noop
/// recorder returns it, and it is the parent id of root spans).
pub type SpanId = u64;

/// Span/event arguments: small static-keyed integer payloads.
pub type Args = Vec<(&'static str, u64)>;

/// The instrumentation sink. All methods take `&self`; implementations are
/// `Send + Sync` so one recorder can be shared across scheduler workers.
pub trait Recorder: Send + Sync {
    /// `false` for the noop recorder; lets callers skip computing
    /// observation values that would be thrown away.
    fn is_enabled(&self) -> bool;

    /// Opens a span named `name` on `track` (0 = main, `w + 1` = worker
    /// `w`). Returns an id to pass to [`Recorder::span_end`]. The span's
    /// parent is the innermost span still open on the same track.
    fn span_start(&self, name: &'static str, track: u32, at: Stamp) -> SpanId;

    /// Closes span `id`, attaching final arguments (counter values, sizes).
    fn span_end(&self, id: SpanId, at: Stamp, args: &[(&'static str, u64)]);

    /// Records an instant event (checkpoint, retry, quarantine, …).
    fn event(&self, name: &'static str, track: u32, at: Stamp, args: &[(&'static str, u64)]);

    /// Adds `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Records one histogram observation.
    fn observe(&self, hist: Hist, value: u64);

    /// Asks the recorder to persist a black-box snapshot of recent
    /// activity, tagged with the failure `reason` (`"budget_exhausted"`,
    /// `"chaos_panic"`, `"worker_retry"`, …). The default is a no-op; the
    /// flight recorder renders its ring and dedupes per reason, so hot
    /// paths may call this unconditionally on every failure edge.
    fn dump(&self, _reason: &'static str) {}
}

/// The disabled recorder: every method is a no-op. Use the shared
/// [`NOOP`] static rather than constructing one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

/// The canonical `&'static` disabled recorder.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn span_start(&self, _name: &'static str, _track: u32, _at: Stamp) -> SpanId {
        0
    }
    fn span_end(&self, _id: SpanId, _at: Stamp, _args: &[(&'static str, u64)]) {}
    fn event(&self, _name: &'static str, _track: u32, _at: Stamp, _args: &[(&'static str, u64)]) {}
    fn add(&self, _counter: Counter, _delta: u64) {}
    fn observe(&self, _hist: Hist, _value: u64) {}
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// This span's id (1-based arrival order).
    pub id: SpanId,
    /// Parent span id, `0` for roots.
    pub parent: SpanId,
    /// Static span name (`"prepare"`, `"worker"`, …).
    pub name: &'static str,
    /// Track the span runs on (0 = main, `w + 1` = worker `w`).
    pub track: u32,
    /// Opening stamp.
    pub start: Stamp,
    /// Closing stamp; `None` if the span was never closed.
    pub end: Option<Stamp>,
    /// Arguments attached at close.
    pub args: Args,
}

/// One recorded instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRec {
    /// Arrival sequence number (0-based).
    pub seq: u64,
    /// Static event name (`"checkpoint"`, `"retry"`, …).
    pub name: &'static str,
    /// Track the event belongs to.
    pub track: u32,
    /// When it happened.
    pub at: Stamp,
    /// Event arguments.
    pub args: Args,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    /// Per-track stack of open span ids, for parent attribution.
    open: BTreeMap<u32, Vec<SpanId>>,
}

/// The enabled recorder: buffers spans/events, counts metrics.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    state: Mutex<TraceState>,
    metrics: MetricsRegistry,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Copies everything recorded so far into an immutable snapshot.
    /// Returns an empty snapshot if the state mutex was poisoned by a
    /// panicking instrumented thread.
    pub fn snapshot(&self) -> TraceSnapshot {
        let (spans, events) = match self.state.lock() {
            Ok(st) => (st.spans.clone(), st.events.clone()),
            Err(_) => (Vec::new(), Vec::new()),
        };
        TraceSnapshot { spans, events, metrics: self.metrics.snapshot() }
    }

    /// Direct access to the metric registry (shared with the trait's
    /// [`Recorder::add`] / [`Recorder::observe`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Recorder for TraceRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, track: u32, at: Stamp) -> SpanId {
        let Ok(mut st) = self.state.lock() else { return 0 };
        let id = u64::try_from(st.spans.len()).unwrap_or(u64::MAX).saturating_add(1);
        let parent = st.open.get(&track).and_then(|stack| stack.last().copied()).unwrap_or(0);
        st.spans.push(SpanRec { id, parent, name, track, start: at, end: None, args: Vec::new() });
        st.open.entry(track).or_default().push(id);
        id
    }

    fn span_end(&self, id: SpanId, at: Stamp, args: &[(&'static str, u64)]) {
        if id == 0 {
            return;
        }
        let Ok(mut st) = self.state.lock() else { return };
        let Some(idx) = id.checked_sub(1).and_then(|i| usize::try_from(i).ok()) else { return };
        let Some(track) = st.spans.get(idx).map(|s| s.track) else { return };
        if let Some(span) = st.spans.get_mut(idx) {
            span.end = Some(at);
            span.args.extend_from_slice(args);
        }
        if let Some(stack) = st.open.get_mut(&track) {
            stack.retain(|open_id| *open_id != id);
        }
    }

    fn event(&self, name: &'static str, track: u32, at: Stamp, args: &[(&'static str, u64)]) {
        let Ok(mut st) = self.state.lock() else { return };
        let seq = u64::try_from(st.events.len()).unwrap_or(u64::MAX);
        st.events.push(EventRec { seq, name, track, at, args: args.to_vec() });
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.metrics.add(counter, delta);
    }

    fn observe(&self, hist: Hist, value: u64) {
        self.metrics.observe(hist, value);
    }
}

/// Everything a [`TraceRecorder`] captured, frozen for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// All spans in arrival (id) order.
    pub spans: Vec<SpanRec>,
    /// All instant events in arrival (seq) order.
    pub events: Vec<EventRec>,
    /// Final metric values.
    pub metrics: MetricsSnapshot,
}

impl TraceSnapshot {
    /// An empty snapshot.
    pub fn empty() -> TraceSnapshot {
        TraceSnapshot { spans: Vec::new(), events: Vec::new(), metrics: MetricsSnapshot::empty() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_returns_zero_and_records_nothing() {
        let r: &dyn Recorder = &NOOP;
        assert!(!r.is_enabled());
        let id = r.span_start("x", 0, Stamp::ZERO);
        assert_eq!(id, 0);
        r.span_end(id, Stamp::tick(5), &[("k", 1)]);
        r.event("e", 0, Stamp::ZERO, &[]);
        r.add(Counter::RecordPairs, 3);
        r.observe(Hist::BatchBlockPairs, 3);
    }

    #[test]
    fn spans_nest_per_track() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("outer", 0, Stamp::tick(0));
        let b = rec.span_start("inner", 0, Stamp::tick(1));
        let c = rec.span_start("other_track", 1, Stamp::tick(1));
        rec.span_end(b, Stamp::tick(2), &[("pairs", 4)]);
        let d = rec.span_start("sibling", 0, Stamp::tick(3));
        rec.span_end(d, Stamp::tick(4), &[]);
        rec.span_end(a, Stamp::tick(5), &[]);
        rec.span_end(c, Stamp::tick(5), &[]);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 4);
        let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("outer").parent, 0);
        assert_eq!(by_name("inner").parent, a);
        assert_eq!(by_name("sibling").parent, a);
        assert_eq!(by_name("other_track").parent, 0, "tracks have independent stacks");
        assert_eq!(by_name("inner").args, vec![("pairs", 4)]);
        assert_eq!(by_name("inner").end, Some(Stamp::tick(2)));
    }

    #[test]
    fn events_get_sequence_numbers() {
        let rec = TraceRecorder::new();
        rec.event("a", 0, Stamp::tick(1), &[]);
        rec.event("b", 2, Stamp::tick(1), &[("n", 9)]);
        let snap = rec.snapshot();
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(snap.events[1].args, vec![("n", 9)]);
    }

    #[test]
    fn unclosed_span_survives_snapshot() {
        let rec = TraceRecorder::new();
        rec.span_start("open", 0, Stamp::tick(0));
        let snap = rec.snapshot();
        assert_eq!(snap.spans[0].end, None);
    }
}
