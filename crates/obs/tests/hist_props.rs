//! Seeded property tests for the log2 histogram: `merge` is associative,
//! commutative, and conserves total observation count and sum.

use aggsky_obs::{bucket_of, HistSnapshot, HIST_BUCKETS};

/// splitmix64 — the workspace's standard seeded generator (no external
/// randomness, reproducible failures).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A histogram filled with `n` values drawn from a seeded stream, spanning
/// many orders of magnitude (shift by 0..=63 bits).
fn random_hist(seed: u64, n: usize) -> HistSnapshot {
    let mut state = seed;
    let mut h = HistSnapshot::default();
    for _ in 0..n {
        let raw = splitmix64(&mut state);
        let shift = splitmix64(&mut state) % 64;
        h.observe(raw >> shift);
    }
    h
}

fn merged(a: &HistSnapshot, b: &HistSnapshot) -> HistSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative() {
    for seed in 0..50u64 {
        let a = random_hist(seed, 100);
        let b = random_hist(seed.wrapping_mul(31).wrapping_add(7), 173);
        assert_eq!(merged(&a, &b), merged(&b, &a), "seed {seed}");
    }
}

#[test]
fn merge_is_associative() {
    for seed in 0..50u64 {
        let a = random_hist(seed, 64);
        let b = random_hist(seed + 1000, 128);
        let c = random_hist(seed + 2000, 33);
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)), "seed {seed}");
    }
}

#[test]
fn merge_conserves_count_and_sum() {
    for seed in 0..50u64 {
        let a = random_hist(seed, 211);
        let b = random_hist(seed + 5000, 97);
        let m = merged(&a, &b);
        assert_eq!(m.count, a.count + b.count, "seed {seed}");
        assert_eq!(m.sum, a.sum.saturating_add(b.sum), "seed {seed}");
        assert_eq!(
            m.buckets.iter().sum::<u64>(),
            a.buckets.iter().sum::<u64>() + b.buckets.iter().sum::<u64>(),
            "seed {seed}: bucket mass not conserved"
        );
    }
}

#[test]
fn merge_with_empty_is_identity() {
    for seed in [3u64, 99, 1234] {
        let a = random_hist(seed, 80);
        assert_eq!(merged(&a, &HistSnapshot::default()), a);
        assert_eq!(merged(&HistSnapshot::default(), &a), a);
    }
}

#[test]
fn every_observation_lands_in_exactly_one_bucket() {
    let mut state = 42u64;
    for _ in 0..1000 {
        let v = splitmix64(&mut state) >> (splitmix64(&mut state) % 64);
        let b = bucket_of(v);
        assert!(b < HIST_BUCKETS);
        let mut h = HistSnapshot::default();
        h.observe(v);
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
        assert_eq!(h.buckets[b], 1);
    }
}
