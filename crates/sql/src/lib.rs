//! # aggsky-sql
//!
//! A miniature, from-scratch, in-memory SQL engine built as the *direct SQL
//! implementation* baseline of the paper's evaluation (the paper ran
//! Algorithm 1 on sqlite; this engine executes the same query text with the
//! same asymptotic plan: a streamed nested-loop self-join feeding hash
//! aggregation).
//!
//! The dialect covers `CREATE TABLE`, multi-row `INSERT`, `DROP TABLE`, and
//! `SELECT` with projections, expressions, self-joins via FROM comma lists,
//! `WHERE`, `GROUP BY` + aggregates (`count/sum/avg/min/max`) + `HAVING`,
//! uncorrelated `[NOT] IN` subqueries, `DISTINCT`, `ORDER BY` and `LIMIT` —
//! exactly what the paper's Algorithm 1 needs — plus the paper's proposed
//! syntax extension:
//!
//! * `SELECT * FROM movie SKYLINE OF pop MAX, qual MAX` — record skyline
//!   (Example 1), executed with the BNL skyline of `aggsky-core`;
//! * `SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual
//!   MAX [GAMMA 0.6]` — aggregate skyline (Example 3), executed with the
//!   exact indexed aggregate-skyline algorithm.
//!
//! ```
//! use aggsky_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE movie (director TEXT, pop FLOAT, qual FLOAT)").unwrap();
//! db.execute(
//!     "INSERT INTO movie VALUES \
//!      ('Tarantino', 313, 8.2), ('Tarantino', 557, 9.0), \
//!      ('Kershner', 362, 8.8), ('Wiseau', 10, 3.2)",
//! )
//! .unwrap();
//! let r = db
//!     .execute("SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX")
//!     .unwrap();
//! let mut names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
//! names.sort();
//! assert_eq!(names, vec!["Kershner", "Tarantino"]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod display;
pub mod dump;
pub mod engine;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod pushdown;
pub mod value;

pub use ast::{ColumnType, Statement};
pub use dump::split_script;
pub use engine::Database;
pub use error::{Result, SqlError};
pub use exec::{
    execute_select_ctx, execute_select_durable, explain_analyze_select, Interruption, QueryResult,
};
pub use parser::parse;
pub use value::Value;

/// Test helper: parses a standalone expression by wrapping it in a SELECT.
#[cfg(test)]
pub(crate) fn parser_test_expr(src: &str) -> ast::Expr {
    match parse(&format!("SELECT {src} FROM t")).unwrap() {
        Statement::Select(s) => match s.projection.into_iter().next().unwrap() {
            ast::SelectItem::Expr { expr, .. } => expr,
            other => panic!("unexpected projection {other:?}"),
        },
        other => panic!("unexpected statement {other:?}"),
    }
}
