//! Abstract syntax tree of the mini SQL dialect.
//!
//! The dialect covers what the paper's Algorithm 1 and examples need —
//! `CREATE TABLE`, multi-row `INSERT`, `SELECT` with self-joins, `WHERE`,
//! `GROUP BY`/`HAVING` with aggregates, `[NOT] IN (subquery)`, `DISTINCT`,
//! `ORDER BY`/`LIMIT` — plus the paper's proposed `SKYLINE OF` clause in
//! both its record form (Example 1) and its aggregate form (Example 3).

use crate::value::Value;

/// Binary operators, by increasing precedence tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

/// Aggregate functions of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parses an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// Scalar (row-wise) functions of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `ABS(x)`.
    Abs,
    /// `ROUND(x)` or `ROUND(x, digits)`.
    Round,
    /// `FLOOR(x)`.
    Floor,
    /// `CEIL(x)` / `CEILING(x)`.
    Ceil,
    /// `SQRT(x)`.
    Sqrt,
    /// `LOWER(s)`.
    Lower,
    /// `UPPER(s)`.
    Upper,
    /// `LENGTH(s)` in characters.
    Length,
}

impl ScalarFunc {
    /// Parses a scalar function name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_lowercase().as_str() {
            "abs" => Some(ScalarFunc::Abs),
            "round" => Some(ScalarFunc::Round),
            "floor" => Some(ScalarFunc::Floor),
            "ceil" | "ceiling" => Some(ScalarFunc::Ceil),
            "sqrt" => Some(ScalarFunc::Sqrt),
            "lower" => Some(ScalarFunc::Lower),
            "upper" => Some(ScalarFunc::Upper),
            "length" => Some(ScalarFunc::Length),
            _ => None,
        }
    }

    /// Accepted argument counts.
    pub fn arity(self) -> std::ops::RangeInclusive<usize> {
        match self {
            ScalarFunc::Round => 1..=2,
            _ => 1..=1,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`x.director`).
    Column {
        /// Table name or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Aggregate call. `arg = None` means `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Scalar {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr [NOT] IN (SELECT ...)` — uncorrelated subquery.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must produce one column).
        subquery: Box<SelectStmt>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List items.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive both ends).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` with `%` (any run) and `_` (any char).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    /// True iff the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Neg(e) | Expr::Not(e) => e.has_aggregate(),
            Expr::InSubquery { expr, .. } => expr.has_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.has_aggregate() || low.has_aggregate() || high.has_aggregate()
            }
            Expr::Scalar { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::Like { expr, pattern, .. } => expr.has_aggregate() || pattern.has_aggregate(),
        }
    }
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// Output column alias.
        alias: Option<String>,
    },
}

/// A table in the FROM list.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (`movies X` / `movies AS X`); defaults to the table name.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in the query.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Preference direction in a `SKYLINE OF` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkyDir {
    /// Higher values preferred.
    Max,
    /// Lower values preferred.
    Min,
}

/// The paper's `SKYLINE OF a MAX, b MIN [GAMMA 0.6]` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineClause {
    /// Skyline attributes with their directions.
    pub items: Vec<(Expr, SkyDir)>,
    /// Optional γ for aggregate skylines (defaults to 0.5).
    pub gamma: Option<f64>,
}

/// Sort direction in ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM tables (comma list = cross join, as in Algorithm 1).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// SKYLINE OF clause (record skyline without GROUP BY, aggregate
    /// skyline with it).
    pub skyline: Option<SkylineClause>,
    /// ORDER BY items.
    pub order_by: Vec<(Expr, SortDir)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// Column type in CREATE TABLE (advisory; storage is dynamically typed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Integer column.
    Int,
    /// Float column.
    Float,
    /// Text column.
    Text,
}

/// Where INSERT rows come from.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal `VALUES` rows.
    Values(Vec<Vec<Expr>>),
    /// Rows produced by a SELECT.
    Select(Box<SelectStmt>),
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT ...` — plan description; with `ANALYZE`
    /// the query is executed under a trace recorder and the result is the
    /// span tree with counters inline.
    Explain {
        /// True for `EXPLAIN ANALYZE` (execute and report measurements).
        analyze: bool,
        /// The explained query.
        stmt: Box<SelectStmt>,
    },
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)` or
    /// `INSERT INTO name [(cols)] SELECT ...`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `DROP TABLE name`.
    DropTable(String),
    /// `DELETE FROM name [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate; absent deletes every row.
        where_clause: Option<Expr>,
    },
    /// `SET TIMEOUT n` — caps subsequent queries at `n` record-pair ticks
    /// of skyline work (`0` = unlimited, the default).
    SetTimeout(u64),
    /// `SET CHECKPOINT 'dir'` — persists the aggregate-skyline step of
    /// subsequent queries as durable frames under `dir`, resuming from the
    /// newest valid frame; `SET CHECKPOINT OFF` (the default) disables it.
    SetCheckpoint(Option<String>),
    /// `SET SLOW_QUERY n` — flags subsequent statements whose skyline step
    /// spends `n` or more record-pair ticks in the structured query log
    /// (`0` = disabled, the default).
    SetSlowQuery(u64),
    /// `UPDATE name SET col = expr, ... [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments, applied simultaneously (right-hand sides see the
        /// pre-update row).
        sets: Vec<(String, Expr)>,
        /// Optional predicate; absent updates every row.
        where_clause: Option<Expr>,
    },
}
