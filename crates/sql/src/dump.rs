//! Database dump and restore as portable SQL text (the engine's
//! persistence story, in the spirit of `sqlite3 .dump`).

use crate::ast::ColumnType;
use crate::engine::Database;
use crate::error::Result;
use crate::value::Value;
use std::fmt::Write as _;

impl Database {
    /// Serializes every table as `CREATE TABLE` + batched `INSERT`
    /// statements. Restoring the dump into an empty database reproduces the
    /// exact same contents (see [`Database::restore`]).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for name in self.table_names() {
            // Catalog names always resolve; skipping a phantom entry
            // beats panicking mid-dump.
            let Ok(table) = self.table(name) else { continue };
            // Writing into a String is infallible.
            let _ = write!(out, "CREATE TABLE {} (", table.name);
            for (i, c) in table.columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let ty = match c.ty {
                    ColumnType::Int => "INT",
                    ColumnType::Float => "FLOAT",
                    ColumnType::Text => "TEXT",
                };
                let _ = write!(out, "{} {}", c.name, ty);
            }
            out.push_str(");\n");
            // Batch inserts to keep the dump compact and the restore fast.
            for chunk in table.rows.chunks(256) {
                let _ = write!(out, "INSERT INTO {} VALUES ", table.name);
                for (i, row) in chunk.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('(');
                    for (j, v) in row.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&render_literal(v));
                    }
                    out.push(')');
                }
                out.push_str(";\n");
            }
        }
        out
    }

    /// Executes a dump produced by [`Database::dump`] (or any
    /// semicolon-separated SQL script) against this database.
    pub fn restore(&mut self, dump: &str) -> Result<()> {
        for stmt in split_script(dump) {
            self.execute(&stmt)?;
        }
        Ok(())
    }
}

/// Renders a value as a SQL literal that parses back to the same value.
fn render_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints enough digits to round-trip f64 exactly and
                // always includes a decimal point or exponent.
                format!("{f:?}")
            } else if f.is_nan() {
                // No NaN literal in the dialect, but INSERT evaluates
                // expressions and inf - inf restores a NaN.
                "(1e999 - 1e999)".to_string()
            } else if aggsky_core::ord::gt(*f, 0.0) {
                "1e999".to_string() // parses as +inf
            } else {
                "-1e999".to_string()
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Splits a SQL script on semicolons, ignoring semicolons inside
/// single-quoted strings. Shared by [`Database::restore`] and the CLI.
pub fn split_script(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE movie (title TEXT, pop FLOAT, n INT)").unwrap();
        db.execute(
            "INSERT INTO movie VALUES ('Pulp Fiction', 557.5, 1), \
             ('O''Brother', 0.125, NULL), (NULL, -3.0, 42)",
        )
        .unwrap();
        db.execute("CREATE TABLE empty_table (a INT)").unwrap();
        db
    }

    #[test]
    fn dump_restore_round_trip() {
        let db = sample_db();
        let dump = db.dump();
        let mut restored = Database::new();
        restored.restore(&dump).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
        for name in db.table_names() {
            let a = db.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.rows, b.rows, "table {name}");
            assert_eq!(a.columns.len(), b.columns.len());
        }
    }

    #[test]
    fn dump_quotes_strings_and_preserves_floats() {
        let db = sample_db();
        let dump = db.dump();
        assert!(dump.contains("'O''Brother'"), "{dump}");
        assert!(dump.contains("0.125"), "{dump}");
        assert!(dump.contains("NULL"), "{dump}");
    }

    #[test]
    fn float_round_trip_is_exact() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x FLOAT)").unwrap();
        let tricky = [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0];
        for v in tricky {
            db.insert_rows("t", vec![vec![Value::Float(v)]]).unwrap();
        }
        let mut restored = Database::new();
        restored.restore(&db.dump()).unwrap();
        let a = &db.table("t").unwrap().rows;
        let b = &restored.table("t").unwrap().rows;
        for (x, y) in a.iter().zip(b.iter()) {
            let (Value::Float(x), Value::Float(y)) = (&x[0], &y[0]) else { panic!() };
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn infinities_and_nan_round_trip() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x FLOAT)").unwrap();
        db.insert_rows(
            "t",
            vec![
                vec![Value::Float(f64::INFINITY)],
                vec![Value::Float(f64::NEG_INFINITY)],
                vec![Value::Float(f64::NAN)],
            ],
        )
        .unwrap();
        let mut restored = Database::new();
        restored.restore(&db.dump()).unwrap();
        let rows = &restored.table("t").unwrap().rows;
        let get = |i: usize| match rows[i][0] {
            Value::Float(f) => f,
            _ => panic!(),
        };
        assert_eq!(get(0), f64::INFINITY);
        assert_eq!(get(1), f64::NEG_INFINITY);
        assert!(get(2).is_nan(), "NaN restored as {}", get(2));
    }

    #[test]
    fn large_batch_dump_round_trips() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b FLOAT)").unwrap();
        let rows: Vec<Vec<Value>> =
            (0..1000).map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)]).collect();
        db.insert_rows("t", rows).unwrap();
        let mut restored = Database::new();
        restored.restore(&db.dump()).unwrap();
        assert_eq!(restored.table_len("t").unwrap(), 1000);
        let r = restored.execute("SELECT sum(a) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(499_500.0));
    }
}
