//! Recursive-descent parser for the mini SQL dialect.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token};
use crate::value::Value;

/// Parses one statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Words that cannot be used as bare aliases/identifiers in positions where
/// a clause keyword could follow.
const RESERVED: [&str; 30] = [
    "select", "distinct", "from", "where", "group", "by", "having", "order", "limit", "skyline",
    "of", "and", "or", "not", "in", "as", "asc", "desc", "values", "insert", "create", "drop",
    "delete", "update", "set", "between", "like", "join", "on", "inner",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {}, found {:?}", kw.to_uppercase(), self.peek())))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {sym:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("trailing input at {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_kw("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            Ok(Statement::Explain { analyze, stmt: Box::new(self.select()?) })
        } else if self.eat_kw("create") {
            self.create_table()
        } else if self.eat_kw("insert") {
            self.insert()
        } else if self.eat_kw("drop") {
            self.expect_kw("table")?;
            Ok(Statement::DropTable(self.ident()?))
        } else if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            Ok(Statement::Delete { table, where_clause })
        } else if self.eat_kw("set") {
            // `SET` only opens a statement as `SET TIMEOUT n`,
            // `SET CHECKPOINT 'dir' | OFF` or `SET SLOW_QUERY n` (inside
            // UPDATE it is consumed by the UPDATE branch).
            if self.eat_kw("checkpoint") {
                return match self.bump() {
                    Token::Str(dir) => Ok(Statement::SetCheckpoint(Some(dir))),
                    tok if tok.is_kw("off") => Ok(Statement::SetCheckpoint(None)),
                    other => Err(SqlError::Parse(format!(
                        "expected a quoted directory or OFF after SET CHECKPOINT, found {other:?}"
                    ))),
                };
            }
            if self.eat_kw("slow_query") {
                return match self.bump() {
                    Token::Int(n) => match u64::try_from(n) {
                        Ok(ticks) => Ok(Statement::SetSlowQuery(ticks)),
                        Err(_) => {
                            Err(SqlError::Parse("SET SLOW_QUERY must be non-negative".into()))
                        }
                    },
                    other => Err(SqlError::Parse(format!(
                        "expected a tick threshold after SET SLOW_QUERY, found {other:?}"
                    ))),
                };
            }
            self.expect_kw("timeout")?;
            match self.bump() {
                Token::Int(n) => match u64::try_from(n) {
                    Ok(ticks) => Ok(Statement::SetTimeout(ticks)),
                    Err(_) => Err(SqlError::Parse("SET TIMEOUT must be non-negative".into())),
                },
                other => Err(SqlError::Parse(format!("expected tick count, found {other:?}"))),
            }
        } else if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_symbol("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            Ok(Statement::Update { table, sets, where_clause })
        } else {
            Err(SqlError::Parse(format!("expected a statement, found {:?}", self.peek())))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            let ty = match ty_name.to_ascii_lowercase().as_str() {
                "int" | "integer" | "bigint" => ColumnType::Int,
                "float" | "real" | "double" | "numeric" => ColumnType::Float,
                "text" | "varchar" | "string" | "char" => ColumnType::Text,
                other => return Err(SqlError::Parse(format!("unknown column type {other:?}"))),
            };
            // Skip an optional length like VARCHAR(20).
            if self.eat_symbol("(") {
                self.bump();
                self.expect_symbol(")")?;
            }
            columns.push((col, ty));
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol("(") {
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(",") {
                cols.push(self.ident()?);
            }
            self.expect_symbol(")")?;
            Some(cols)
        } else {
            None
        };
        if self.peek().is_kw("select") {
            let select = self.select()?;
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Select(Box::new(select)),
            });
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(",") {
                row.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, source: InsertSource::Values(rows) })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = vec![self.select_item()?];
        while self.eat_symbol(",") {
            projection.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        // Comma lists and `[INNER] JOIN t ON cond` both desugar to a cross
        // product; ON conditions are folded into WHERE, where the pushdown
        // planner treats them as the join filter.
        let mut join_conditions: Vec<Expr> = Vec::new();
        loop {
            if self.eat_symbol(",") {
                from.push(self.table_ref()?);
            } else if self.peek().is_kw("join") || self.peek().is_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_conditions.push(self.expr()?);
            } else {
                break;
            }
        }
        let mut stmt = SelectStmt {
            distinct,
            projection,
            from,
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            skyline: None,
            order_by: Vec::new(),
            limit: None,
        };
        loop {
            if self.eat_kw("where") {
                if stmt.where_clause.is_some() {
                    return Err(SqlError::Parse("duplicate WHERE".into()));
                }
                stmt.where_clause = Some(self.expr()?);
            } else if self.peek().is_kw("group") {
                self.bump();
                self.expect_kw("by")?;
                loop {
                    stmt.group_by.push(self.expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            } else if self.eat_kw("having") {
                stmt.having = Some(self.expr()?);
            } else if self.peek().is_kw("skyline") {
                self.bump();
                self.expect_kw("of")?;
                let mut items = Vec::new();
                loop {
                    let e = self.expr()?;
                    let dir = if self.eat_kw("max") {
                        SkyDir::Max
                    } else if self.eat_kw("min") {
                        SkyDir::Min
                    } else {
                        SkyDir::Max // MAX is the paper's default orientation
                    };
                    items.push((e, dir));
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                let gamma = if self.eat_kw("gamma") {
                    match self.bump() {
                        Token::Float(f) => Some(f),
                        Token::Int(i) => Some(i as f64),
                        other => {
                            return Err(SqlError::Parse(format!(
                                "expected a number after GAMMA, found {other:?}"
                            )))
                        }
                    }
                } else {
                    None
                };
                stmt.skyline = Some(SkylineClause { items, gamma });
            } else if self.peek().is_kw("order") {
                self.bump();
                self.expect_kw("by")?;
                loop {
                    let e = self.expr()?;
                    let dir = if self.eat_kw("desc") {
                        SortDir::Desc
                    } else {
                        self.eat_kw("asc");
                        SortDir::Asc
                    };
                    stmt.order_by.push((e, dir));
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            } else if self.eat_kw("limit") {
                match self.bump() {
                    Token::Int(n) if n >= 0 => {
                        stmt.limit = Some(usize::try_from(n).unwrap_or(usize::MAX))
                    }
                    other => {
                        return Err(SqlError::Parse(format!(
                            "expected a row count after LIMIT, found {other:?}"
                        )))
                    }
                }
            } else {
                break;
            }
        }
        for cond in join_conditions {
            stmt.where_clause = Some(match stmt.where_clause.take() {
                None => cond,
                Some(w) => {
                    Expr::Binary { op: BinOp::And, left: Box::new(w), right: Box::new(cond) }
                }
            });
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Token::Ident(name) = self.peek() {
            if !is_reserved(name) {
                let a = name.clone();
                self.bump();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Token::Ident(word) = self.peek() {
            if !is_reserved(word) {
                let a = word.clone();
                self.bump();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ----- expressions, by precedence -----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // `[NOT] IN / BETWEEN / LIKE`
        let negated = if self.peek().is_kw("not")
            && (self.peek2().is_kw("in")
                || self.peek2().is_kw("between")
                || self.peek2().is_kw("like"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            // Bounds bind at additive level so BETWEEN's AND is unambiguous.
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("in") {
            self.expect_symbol("(")?;
            if self.peek().is_kw("select") {
                let sub = self.select()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_symbol(",") {
                list.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(SqlError::Parse("expected IN, BETWEEN or LIKE after NOT".into()));
        }
        let op = match self.peek() {
            Token::Symbol("=") => BinOp::Eq,
            Token::Symbol("<>") | Token::Symbol("!=") => BinOp::Neq,
            Token::Symbol("<") => BinOp::Lt,
            Token::Symbol("<=") => BinOp::Le,
            Token::Symbol(">") => BinOp::Gt,
            Token::Symbol(">=") => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("+") => BinOp::Add,
                Token::Symbol("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("*") => BinOp::Mul,
                Token::Symbol("/") => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Symbol("(") => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                // Function call?
                if matches!(self.peek(), Token::Symbol("(")) {
                    if let Some(func) = AggFunc::from_name(&name) {
                        self.bump(); // (
                        if self.eat_symbol("*") {
                            self.expect_symbol(")")?;
                            if func != AggFunc::Count {
                                return Err(SqlError::Parse("only COUNT accepts *".into()));
                            }
                            return Ok(Expr::Aggregate { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect_symbol(")")?;
                        return Ok(Expr::Aggregate { func, arg: Some(Box::new(arg)) });
                    }
                    if let Some(func) = ScalarFunc::from_name(&name) {
                        self.bump(); // (
                        let mut args = vec![self.expr()?];
                        while self.eat_symbol(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(")")?;
                        if !func.arity().contains(&args.len()) {
                            return Err(SqlError::Parse(format!(
                                "{name} expects {:?} arguments, got {}",
                                func.arity(),
                                args.len()
                            )));
                        }
                        return Ok(Expr::Scalar { func, args });
                    }
                    return Err(SqlError::Unsupported(format!("unknown function {name:?}")));
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn parses_example_1_record_skyline() {
        let s = sel("SELECT * FROM Movie SKYLINE OF Pop MAX, Qual MAX");
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
        let sky = s.skyline.unwrap();
        assert_eq!(sky.items.len(), 2);
        assert_eq!(sky.items[0].1, SkyDir::Max);
        assert!(sky.gamma.is_none());
    }

    #[test]
    fn parses_example_3_aggregate_skyline() {
        let s = sel("SELECT director FROM movies GROUP BY Director SKYLINE OF Pop MAX, Qual MAX");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.skyline.is_some());
    }

    #[test]
    fn parses_skyline_gamma_and_min() {
        let s = sel("SELECT * FROM t SKYLINE OF price MIN, rating MAX GAMMA 0.75");
        let sky = s.skyline.unwrap();
        assert_eq!(sky.items[0].1, SkyDir::Min);
        assert_eq!(sky.gamma, Some(0.75));
    }

    #[test]
    fn parses_algorithm_1_query() {
        let s = sel("select distinct director from movies where director not in (\
             select X.director from movies X, movies Y \
             where ((Y.votes > X.votes and Y.rank >= X.rank) or (Y.votes >= X.votes and Y.rank > X.rank)) \
             group by X.director, Y.director \
             having 1.0*count(*)/(X.num*Y.num) > .5)");
        assert!(s.distinct);
        let w = s.where_clause.unwrap();
        match w {
            Expr::InSubquery { negated, subquery, .. } => {
                assert!(negated);
                assert_eq!(subquery.from.len(), 2);
                assert_eq!(subquery.from[0].effective_alias(), "X");
                assert_eq!(subquery.group_by.len(), 2);
                assert!(subquery.having.unwrap().has_aggregate());
            }
            other => panic!("expected NOT IN subquery, got {other:?}"),
        }
    }

    #[test]
    fn parses_create_insert_drop() {
        let c = parse("CREATE TABLE t (a INT, b FLOAT, c VARCHAR(20))").unwrap();
        match c {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2].1, ColumnType::Text);
            }
            other => panic!("{other:?}"),
        }
        let i = parse("INSERT INTO t (a, b) VALUES (1, 2.5), (3, -4.0)").unwrap();
        match i {
            Statement::Insert { source: InsertSource::Values(rows), columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
        let i = parse("INSERT INTO t SELECT a, b FROM u WHERE a > 0").unwrap();
        match i {
            Statement::Insert { source: InsertSource::Select(sel), .. } => {
                assert!(sel.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse("DROP TABLE t").unwrap(), Statement::DropTable(_)));
    }

    #[test]
    fn operator_precedence() {
        let s = sel("SELECT a + b * c FROM t");
        match &s.projection[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_and_limit() {
        let s = sel("SELECT a FROM t ORDER BY a DESC, b LIMIT 10");
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].1, SortDir::Desc);
        assert_eq!(s.order_by[1].1, SortDir::Asc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT a FROM t garbage garbage").is_err());
        assert!(parse("SELECT FROM t").is_err());
    }

    #[test]
    fn in_list() {
        let s = sel("SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn set_checkpoint_takes_a_directory_or_off() {
        assert_eq!(
            parse("SET CHECKPOINT '/tmp/frames'").unwrap(),
            Statement::SetCheckpoint(Some("/tmp/frames".into()))
        );
        assert_eq!(parse("SET CHECKPOINT OFF").unwrap(), Statement::SetCheckpoint(None));
        assert!(parse("SET CHECKPOINT").is_err());
        assert!(parse("SET CHECKPOINT 42").is_err());
    }

    #[test]
    fn set_slow_query_takes_a_tick_threshold() {
        assert_eq!(parse("SET SLOW_QUERY 500").unwrap(), Statement::SetSlowQuery(500));
        assert_eq!(parse("set slow_query 0").unwrap(), Statement::SetSlowQuery(0));
        assert!(parse("SET SLOW_QUERY").is_err());
        assert!(parse("SET SLOW_QUERY 'fast'").is_err());
        assert!(parse("SET SLOW_QUERY -1").is_err());
    }
}
