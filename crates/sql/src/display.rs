//! Pretty-printing of the AST back to parseable SQL.
//!
//! Every composite expression is fully parenthesized, so the printer never
//! needs to reason about precedence, and `parse(print(ast)) == ast` holds
//! structurally (verified by the round-trip property tests in
//! `tests/roundtrip.rs`).

use crate::ast::*;
use crate::value::Value;
use std::fmt;

fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => write!(f, "NULL"),
        Value::Int(i) => write!(f, "{i}"),
        // `{:?}` keeps a decimal point/exponent so the token re-lexes as a
        // float, and prints enough digits for exact f64 round-trips.
        Value::Float(x) => write!(f, "{x:?}"),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Literal(v) => fmt_literal(v, f),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Aggregate { func, arg } => {
                let name = match func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Avg => "avg",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                };
                match arg {
                    None => write!(f, "{name}(*)"),
                    Some(a) => write!(f, "{name}({a})"),
                }
            }
            Expr::Scalar { func, args } => {
                let name = match func {
                    ScalarFunc::Abs => "abs",
                    ScalarFunc::Round => "round",
                    ScalarFunc::Floor => "floor",
                    ScalarFunc::Ceil => "ceil",
                    ScalarFunc::Sqrt => "sqrt",
                    ScalarFunc::Lower => "lower",
                    ScalarFunc::Upper => "upper",
                    ScalarFunc::Length => "length",
                };
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, subquery, negated } => {
                write!(f, "({expr} {}IN ({subquery}))", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "({expr} {}BETWEEN {low} AND {high})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}")?,
                SelectItem::Expr { expr, alias: None } => write!(f, "{expr}")?,
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &t.alias {
                Some(a) => write!(f, "{} AS {a}", t.name)?,
                None => write!(f, "{}", t.name)?,
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(sky) = &self.skyline {
            write!(f, " SKYLINE OF ")?;
            for (i, (e, dir)) in sky.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let d = match dir {
                    SkyDir::Max => "MAX",
                    SkyDir::Min => "MIN",
                };
                write!(f, "{e} {d}")?;
            }
            if let Some(g) = sky.gamma {
                write!(f, " GAMMA {g:?}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, dir)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let d = match dir {
                    SortDir::Asc => "ASC",
                    SortDir::Desc => "DESC",
                };
                write!(f, "{e} {d}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain { analyze, stmt } => {
                write!(f, "EXPLAIN {}{stmt}", if *analyze { "ANALYZE " } else { "" })
            }
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, (col, ty)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let t = match ty {
                        ColumnType::Int => "INT",
                        ColumnType::Float => "FLOAT",
                        ColumnType::Text => "TEXT",
                    };
                    write!(f, "{col} {t}")?;
                }
                write!(f, ")")
            }
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Select(sel) => write!(f, " {sel}"),
                    InsertSource::Values(rows) => {
                        write!(f, " VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            write!(f, ")")?;
                        }
                        Ok(())
                    }
                }
            }
            Statement::DropTable(name) => write!(f, "DROP TABLE {name}"),
            Statement::SetTimeout(ticks) => write!(f, "SET TIMEOUT {ticks}"),
            Statement::SetCheckpoint(dir) => match dir {
                Some(d) => write!(f, "SET CHECKPOINT '{}'", d.replace('\'', "''")),
                None => write!(f, "SET CHECKPOINT OFF"),
            },
            Statement::SetSlowQuery(ticks) => write!(f, "SET SLOW_QUERY {ticks}"),
            Statement::Delete { table, where_clause } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update { table, sets, where_clause } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn printed_statements_reparse_identically() {
        let samples = [
            "SELECT * FROM movie SKYLINE OF pop MAX, qual MIN GAMMA 0.75",
            "SELECT DISTINCT director FROM movie WHERE (a + b) * 2 > 3 LIMIT 4",
            "SELECT d, count(*) FROM m GROUP BY d HAVING count(*) >= 2 ORDER BY d DESC",
            "SELECT x FROM t WHERE x NOT IN (SELECT y FROM u WHERE y BETWEEN 1 AND 2)",
            "SELECT lower(s) FROM t WHERE s LIKE 'a%' AND n NOT BETWEEN 1 AND 9",
            "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, 2.5)",
            "CREATE TABLE t (a INT, b FLOAT, c TEXT)",
            "DELETE FROM t WHERE a = 1",
            "UPDATE t SET a = a + 1, b = 'z' WHERE c <> 0",
            "DROP TABLE t",
            "SET TIMEOUT 5000",
            "SET TIMEOUT 0",
            "SET CHECKPOINT '/tmp/ck''s'",
            "SET CHECKPOINT OFF",
            "EXPLAIN SELECT * FROM movie WHERE pop > 3",
            "EXPLAIN ANALYZE SELECT d FROM m GROUP BY d SKYLINE OF pop MAX, qual MAX GAMMA 0.75",
        ];
        for sql in samples {
            let ast = parse(sql).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed:?}: {e}"));
            assert_eq!(ast, reparsed, "round-trip changed the AST for {sql:?} -> {printed:?}");
        }
    }
}
