//! Predicate pushdown for the FROM cross product.
//!
//! WHERE conjuncts that reference columns of a single table are evaluated
//! once per base row *before* the join instead of once per joined row,
//! which turns `O(|A|·|B|)` predicate evaluations into `O(|A| + |B|)` for
//! the pushable part and shrinks the product itself. Conjuncts spanning
//! tables remain as the residual join predicate. (The paper's Algorithm 1
//! baseline is unaffected by design: its dominance predicate spans both
//! sides of the self-join.)

use crate::plan::{eval, RExpr};

/// Where each WHERE conjunct ended up.
pub struct ScanPlan {
    /// Per-table pushed-down predicate (column indices rebased to the
    /// table's local row).
    pub per_table: Vec<Option<RExpr>>,
    /// Conjuncts spanning multiple tables, evaluated on the joined row.
    pub residual: Option<RExpr>,
    /// True when a constant conjunct already evaluated to false/NULL: the
    /// query returns no rows regardless of the data.
    pub always_empty: bool,
}

impl ScanPlan {
    /// Plans the pushdown for a WHERE expression over tables whose columns
    /// occupy `[offsets[i], offsets[i] + widths[i])` in the joined row.
    /// Fails if a constant conjunct raises a type error (e.g. `1 LIKE 'x'`),
    /// mirroring what per-row evaluation would have reported.
    pub fn new(
        where_expr: Option<&RExpr>,
        offsets: &[usize],
        widths: &[usize],
    ) -> crate::error::Result<ScanPlan> {
        let n = offsets.len();
        let mut plan = ScanPlan {
            per_table: (0..n).map(|_| None).collect(),
            residual: None,
            always_empty: false,
        };
        let Some(expr) = where_expr else {
            return Ok(plan);
        };
        let mut residual_parts: Vec<RExpr> = Vec::new();
        for conjunct in split_conjuncts(expr) {
            let mut cols = Vec::new();
            columns_used(&conjunct, &mut cols);
            let tables: std::collections::BTreeSet<usize> =
                cols.iter().map(|&c| table_of(c, offsets, widths)).collect();
            match tables.iter().next() {
                None => {
                    // Constant conjunct: decide the whole query right now.
                    let v = eval(&conjunct, &[], &[])?;
                    if !v.is_truthy() {
                        plan.always_empty = true;
                    }
                }
                Some(&t) if tables.len() == 1 => {
                    let shifted = shift_columns(conjunct, offsets[t]);
                    plan.per_table[t] = Some(match plan.per_table[t].take() {
                        None => shifted,
                        Some(prev) => and(prev, shifted),
                    });
                }
                Some(_) => residual_parts.push(conjunct),
            }
        }
        plan.residual = residual_parts.into_iter().reduce(and);
        Ok(plan)
    }

    /// Human-readable plan description for EXPLAIN.
    pub fn describe(&self, table_names: &[String]) -> String {
        let mut out = String::new();
        for (i, name) in table_names.iter().enumerate() {
            let filter = match &self.per_table[i] {
                Some(_) => "filtered scan (pushed-down predicate)",
                None => "full scan",
            };
            let op = if i == 0 { "SCAN" } else { "CROSS JOIN" };
            out.push_str(&format!("{op} {name}: {filter}\n"));
        }
        match (&self.residual, self.always_empty) {
            (_, true) => out.push_str("RESULT: constant-false predicate, empty\n"),
            (Some(_), _) => out.push_str("JOIN FILTER: residual multi-table predicate\n"),
            (None, _) => {}
        }
        out
    }
}

fn and(a: RExpr, b: RExpr) -> RExpr {
    RExpr::Binary { op: crate::ast::BinOp::And, left: Box::new(a), right: Box::new(b) }
}

fn table_of(col: usize, offsets: &[usize], widths: &[usize]) -> usize {
    for (t, (&o, &w)) in offsets.iter().zip(widths.iter()).enumerate() {
        if col >= o && col < o + w {
            return t;
        }
    }
    unreachable!("column {col} outside every table segment")
}

/// Splits an expression on top-level ANDs.
///
/// Sound for WHERE because truthiness is all that matters there: the row
/// passes iff every conjunct is truthy (NULL conjuncts fail the row either
/// way).
pub fn split_conjuncts(expr: &RExpr) -> Vec<RExpr> {
    let mut out = Vec::new();
    fn walk(e: &RExpr, out: &mut Vec<RExpr>) {
        if let RExpr::Binary { op: crate::ast::BinOp::And, left, right } = e {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e.clone());
        }
    }
    walk(expr, &mut out);
    out
}

/// Collects every flat column index referenced by an expression.
pub fn columns_used(expr: &RExpr, out: &mut Vec<usize>) {
    match expr {
        RExpr::Col(i) => out.push(*i),
        RExpr::Lit(_) | RExpr::Agg(_) => {}
        RExpr::Binary { left, right, .. } => {
            columns_used(left, out);
            columns_used(right, out);
        }
        RExpr::Neg(e) | RExpr::Not(e) => columns_used(e, out),
        RExpr::Scalar { args, .. } => {
            for a in args {
                columns_used(a, out);
            }
        }
        RExpr::InSet { expr, .. } => columns_used(expr, out),
        RExpr::InList { expr, list, .. } => {
            columns_used(expr, out);
            for item in list {
                columns_used(item, out);
            }
        }
        RExpr::Between { expr, low, high, .. } => {
            columns_used(expr, out);
            columns_used(low, out);
            columns_used(high, out);
        }
        RExpr::Like { expr, pattern, .. } => {
            columns_used(expr, out);
            columns_used(pattern, out);
        }
    }
}

/// Rebases every column index by `-offset` (for evaluation against a single
/// table's local row).
fn shift_columns(expr: RExpr, offset: usize) -> RExpr {
    match expr {
        RExpr::Col(i) => RExpr::Col(i - offset),
        e @ (RExpr::Lit(_) | RExpr::Agg(_)) => e,
        RExpr::Binary { op, left, right } => RExpr::Binary {
            op,
            left: Box::new(shift_columns(*left, offset)),
            right: Box::new(shift_columns(*right, offset)),
        },
        RExpr::Neg(e) => RExpr::Neg(Box::new(shift_columns(*e, offset))),
        RExpr::Not(e) => RExpr::Not(Box::new(shift_columns(*e, offset))),
        RExpr::Scalar { func, args } => RExpr::Scalar {
            func,
            args: args.into_iter().map(|a| shift_columns(a, offset)).collect(),
        },
        RExpr::InSet { expr, set, negated } => {
            RExpr::InSet { expr: Box::new(shift_columns(*expr, offset)), set, negated }
        }
        RExpr::InList { expr, list, negated } => RExpr::InList {
            expr: Box::new(shift_columns(*expr, offset)),
            list: list.into_iter().map(|e| shift_columns(e, offset)).collect(),
            negated,
        },
        RExpr::Between { expr, low, high, negated } => RExpr::Between {
            expr: Box::new(shift_columns(*expr, offset)),
            low: Box::new(shift_columns(*low, offset)),
            high: Box::new(shift_columns(*high, offset)),
            negated,
        },
        RExpr::Like { expr, pattern, negated } => RExpr::Like {
            expr: Box::new(shift_columns(*expr, offset)),
            pattern: Box::new(shift_columns(*pattern, offset)),
            negated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use crate::value::Value;

    fn col(i: usize) -> RExpr {
        RExpr::Col(i)
    }

    fn gt(l: RExpr, r: RExpr) -> RExpr {
        RExpr::Binary { op: BinOp::Gt, left: Box::new(l), right: Box::new(r) }
    }

    fn lit(i: i64) -> RExpr {
        RExpr::Lit(Value::Int(i))
    }

    #[test]
    fn splits_nested_ands() {
        let e = and(and(gt(col(0), lit(1)), gt(col(2), lit(2))), gt(col(0), col(2)));
        assert_eq!(split_conjuncts(&e).len(), 3);
    }

    #[test]
    fn plans_per_table_and_residual() {
        // Two tables of width 2: columns 0-1 and 2-3.
        let e = and(and(gt(col(0), lit(1)), gt(col(2), lit(2))), gt(col(1), col(3)));
        let plan = ScanPlan::new(Some(&e), &[0, 2], &[2, 2]).unwrap();
        assert!(plan.per_table[0].is_some());
        assert!(plan.per_table[1].is_some());
        assert!(plan.residual.is_some());
        assert!(!plan.always_empty);
        // The pushed-down predicate for table 1 must reference local col 0.
        let mut cols = Vec::new();
        columns_used(plan.per_table[1].as_ref().unwrap(), &mut cols);
        assert_eq!(cols, vec![0]);
    }

    #[test]
    fn constant_false_short_circuits() {
        let e = gt(lit(1), lit(2));
        let plan = ScanPlan::new(Some(&e), &[0], &[3]).unwrap();
        assert!(plan.always_empty);
        let e = gt(lit(2), lit(1));
        let plan = ScanPlan::new(Some(&e), &[0], &[3]).unwrap();
        assert!(!plan.always_empty);
        assert!(plan.residual.is_none());
    }

    #[test]
    fn describe_mentions_pushdown() {
        let e = and(gt(col(0), lit(1)), gt(col(0), col(2)));
        let plan = ScanPlan::new(Some(&e), &[0, 2], &[2, 2]).unwrap();
        let text = plan.describe(&["a".into(), "b".into()]);
        assert!(text.contains("SCAN a: filtered scan"));
        assert!(text.contains("CROSS JOIN b: full scan"));
        assert!(text.contains("JOIN FILTER"));
    }
}
