//! Hand-written SQL lexer.

use crate::error::{Result, SqlError};

/// A lexical token. Keywords are uppercased identifiers matched at parse
/// time, so the lexer only distinguishes shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept in original case; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (also covers `.5` and `1.`).
    Float(f64),
    /// Single-quoted string literal (with `''` escape).
    Str(String),
    /// One of `= <> != < <= > >= + - * / ( ) , . ;`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// True iff this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Splits `input` into tokens, appending [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '+' | '*' | '/' | '-' => {
                tokens.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '+' => "+",
                    '*' => "*",
                    '/' => "/",
                    _ => "-",
                }));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    return Err(SqlError::Lex("stray '!'".into()));
                }
            }
            '\'' => {
                // Collect raw bytes and convert once: the input is valid
                // UTF-8 and we only split at ASCII quotes, so multi-byte
                // characters survive intact (`bytes[i] as char` would not).
                let mut raw: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            raw.push(b'\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        raw.push(bytes[i]);
                        i += 1;
                    }
                }
                let s = String::from_utf8(raw)
                    .map_err(|_| SqlError::Lex("invalid UTF-8 in string literal".into()))?;
                tokens.push(Token::Str(s));
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                let (tok, len) = lex_number(&input[i..])?;
                tokens.push(tok);
                i += len;
            }
            '.' => {
                tokens.push(Token::Symbol("."));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&input[i..])?;
                tokens.push(tok);
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

/// Lexes a number starting at the beginning of `s`; returns the token and
/// consumed byte length.
fn lex_number(s: &str) -> Result<(Token, usize)> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        // Not a float if this is a qualified name like `x.col` — digits
        // cannot start identifiers, so `1.x` is invalid anyway; treat a dot
        // followed by a digit or end as part of the number.
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &s[..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), i))
            .map_err(|e| SqlError::Lex(format!("bad float {text:?}: {e}")))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|e| SqlError::Lex(format!("bad integer {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, b.c FROM t WHERE x >= 1.5 AND y <> 'o''k';").unwrap();
        assert!(toks.contains(&Token::Symbol(">=")));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("o'k".into())));
        assert!(toks.contains(&Token::Symbol(".")));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn leading_dot_float() {
        let toks = tokenize("having p > .5").unwrap();
        assert!(toks.contains(&Token::Float(0.5)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("select 1 -- trailing\nfrom t").unwrap();
        assert_eq!(toks.len(), 5); // select, 1, from, t, eof
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("SeLeCt").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(!toks[0].is_kw("from"));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks[0], Token::Float(1000.0));
        assert_eq!(toks[1], Token::Float(0.025));
    }
}
