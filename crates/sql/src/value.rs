//! Runtime values of the mini SQL engine.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// True iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to floats); `None` for NULL and strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Truthiness for WHERE/HAVING: NULL and 0 are false, everything else
    /// true (strings are true when non-empty).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => !aggsky_core::ord::eq(*f, 0.0),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// SQL comparison. NULL compares as `None` (unknown); numbers compare
    /// numerically across Int/Float; strings lexicographically. Mixed
    /// string/number comparisons are `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                // NaN stays "unknown" (SQL three-valued logic) rather than
                // adopting the total order's NaN placement.
                if x.is_nan() || y.is_nan() {
                    None
                } else {
                    Some(aggsky_core::ord::cmp(x, y))
                }
            }
        }
    }

    /// Equality for DISTINCT / GROUP BY keys / IN lists: NULLs group
    /// together (like GROUP BY in standard engines), numbers compare
    /// numerically. Int/Int comparisons are exact (no f64 round-trip, so
    /// values beyond 2⁵³ stay distinct).
    pub fn key_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => aggsky_core::ord::eq(*a, *b),
            (Value::Int(i), Value::Float(f)) | (Value::Float(f), Value::Int(i)) => {
                int_float_eq(*i, *f)
            }
            _ => false,
        }
    }

    /// A hashable, normalized key representation for grouping.
    ///
    /// Properties the executor relies on:
    /// * `key_eq(a, b) ⟺ a.group_key() == b.group_key()` (integral floats
    ///   share the integer form; big i64s keep exact text),
    /// * concatenations of keys are unambiguous: strings are length-
    ///   prefixed, so no embedded byte sequence can collide with a
    ///   following key's tag.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}N".to_string(),
            Value::Int(i) => format!("\u{0}n{i}"),
            Value::Float(f) => match aggsky_core::num::exact_int(*f) {
                Some(i) => format!("\u{0}n{i}"),
                None => format!("\u{0}f{f}"),
            },
            Value::Str(s) => format!("\u{0}s{}\u{0}{s}", s.len()),
        }
    }
}

/// Exact Int/Float key equality, consistent with [`Value::group_key`]:
/// a float only equals an int when it is integral, within the exactly-
/// representable range, and converts back to the same i64.
fn int_float_eq(i: i64, f: f64) -> bool {
    aggsky_core::num::exact_int(f) == Some(i)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if aggsky_core::ord::eq(v.fract(), 0.0) && aggsky_core::ord::lt(v.abs(), 1e15) {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_crosses_types() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn mixed_string_number_is_unknown() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn key_equality_groups_nulls() {
        assert!(Value::Null.key_eq(&Value::Null));
        assert!(Value::Int(1).key_eq(&Value::Float(1.0)));
        assert!(!Value::Str("1".into()).key_eq(&Value::Int(1)));
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
    }

    #[test]
    fn big_integers_keep_distinct_keys() {
        let a = Value::Int((1i64 << 53) + 1);
        let b = Value::Int(1i64 << 53);
        assert!(!a.key_eq(&b));
        assert_ne!(a.group_key(), b.group_key());
        // A float cannot represent 2^53 + 1; it must not key-match it.
        assert!(!a.key_eq(&Value::Float(9_007_199_254_740_992.0)));
        assert!(b.key_eq(&Value::Float(9_007_199_254_740_992.0)));
    }

    #[test]
    fn concatenated_keys_are_unambiguous() {
        // Without length prefixes these two rows collided.
        let row1 = [Value::Str("a\u{0}sb".into()), Value::Str("c".into())];
        let row2 = [Value::Str("a".into()), Value::Str("b\u{0}sc".into())];
        let key = |row: &[Value]| row.iter().map(Value::group_key).collect::<String>();
        assert_ne!(key(&row1), key(&row2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
