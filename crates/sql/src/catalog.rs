//! Tables and the catalog.

use crate::ast::ColumnType;
use crate::error::{Result, SqlError};
use crate::value::Value;
use std::collections::HashMap;

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (case preserved; lookups are case-insensitive).
    pub name: String,
    /// Declared type (advisory: storage is dynamically typed, the declared
    /// type is used to coerce inserted integers into float columns).
    pub ty: ColumnType,
}

/// An in-memory, row-oriented table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<Column>,
    /// Row storage.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Validates and appends one row (coercing ints into float columns).
    pub fn push_row(&mut self, mut row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(SqlError::Eval(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter_mut().zip(self.columns.iter()) {
            if c.ty == ColumnType::Float {
                if let Value::Int(i) = v {
                    *v = Value::Float(*i as f64);
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }
}

/// The set of tables known to a [`crate::Database`].
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates a table; errors if the name is taken.
    pub fn create(&mut self, name: &str, columns: Vec<Column>) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::TableExists(name.to_string()));
        }
        self.tables.insert(key, Table { name: name.to_string(), columns, rows: Vec::new() });
        Ok(())
    }

    /// Looks up a table by case-insensitive name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Drops a table.
    pub fn drop(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.values().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::default();
        c.create("T", vec![Column { name: "a".into(), ty: ColumnType::Int }]).unwrap();
        assert!(c.get("t").is_ok(), "lookup is case-insensitive");
        assert!(matches!(c.create("t", vec![]), Err(SqlError::TableExists(_))));
        c.drop("T").unwrap();
        assert!(c.get("t").is_err());
    }

    #[test]
    fn push_row_coerces_and_validates() {
        let mut t = Table {
            name: "t".into(),
            columns: vec![
                Column { name: "a".into(), ty: ColumnType::Float },
                Column { name: "b".into(), ty: ColumnType::Text },
            ],
            rows: vec![],
        };
        t.push_row(vec![Value::Int(1), Value::Str("x".into())]).unwrap();
        assert_eq!(t.rows[0][0], Value::Float(1.0));
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
    }
}
