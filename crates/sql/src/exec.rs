//! Query execution.
//!
//! The executor streams the FROM cross-product row by row (the joined row
//! is never materialized as a whole relation, which keeps the quadratic
//! self-join of the paper's Algorithm 1 memory-bounded), filters with
//! WHERE, then either emits rows directly or folds them into group states
//! for GROUP BY / aggregate queries. `SKYLINE OF` is executed natively: the
//! record form through the BNL skyline of `aggsky-core`, the aggregate form
//! (with GROUP BY) through the exact indexed aggregate-skyline algorithm.

use crate::ast::{AggFunc, Expr, SelectItem, SelectStmt, SkyDir, SortDir};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::plan::{eval, AggCall, Compiler, RExpr, Schema};
use crate::pushdown::ScanPlan;
use crate::value::Value;
use aggsky_core::{InterruptReason, RunContext};
use aggsky_obs::{render_summary, Counter, Stamp, TraceRecorder};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How a query that ran out of budget (or was cancelled) degraded: the
/// returned rows are the groups *proven* to belong to the skyline; this
/// records why the run stopped and how many groups were left undecided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interruption {
    /// Why the skyline computation stopped early.
    pub reason: InterruptReason,
    /// Groups that were neither confirmed in nor out when it stopped.
    pub undecided_groups: usize,
}

/// Result of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// `Some` when a `SET TIMEOUT` budget (or cancellation) cut the skyline
    /// computation short: `rows` then holds only the confirmed members.
    pub interrupted: Option<Interruption>,
}

impl QueryResult {
    /// Renders the result as an aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        let header: Vec<String> = self.columns.clone();
        out.push_str(&fmt_row(&header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
        }
        if let Some(i) = &self.interrupted {
            out.push_str(&format!(
                "-- interrupted ({}): {} group(s) undecided; rows above are confirmed members\n",
                i.reason, i.undecided_groups
            ));
        }
        out
    }
}

/// Executes a SELECT against a catalog with no execution limits.
pub fn execute_select(cat: &Catalog, stmt: &SelectStmt) -> Result<QueryResult> {
    execute_select_ctx(cat, stmt, &RunContext::unlimited())
}

/// Executes a SELECT under an execution-control context: the aggregate
/// skyline step honours the context's tick budget and cancellation token,
/// degrading to the confirmed skyline members (see [`Interruption`])
/// instead of failing.
pub fn execute_select_ctx(
    cat: &Catalog,
    stmt: &SelectStmt,
    ctx: &RunContext,
) -> Result<QueryResult> {
    execute_select_durable(cat, stmt, ctx, None)
}

/// [`execute_select_ctx`] with an optional checkpoint directory: when set,
/// the aggregate-skyline step runs through the durable
/// [`aggsky_core::checkpoint_step`] driver — its partition is persisted as
/// a crash-consistent frame under `checkpoint` and recovered (resumed, or
/// served outright when already complete) on re-execution of the same
/// query over the same data.
pub fn execute_select_durable(
    cat: &Catalog,
    stmt: &SelectStmt,
    ctx: &RunContext,
    checkpoint: Option<&str>,
) -> Result<QueryResult> {
    let select_span = ctx.obs().map_or(0, |rec| rec.span_start("select", 0, Stamp::ZERO));
    // ---- resolve FROM ----
    let mut tables = Vec::with_capacity(stmt.from.len());
    let mut schema = Schema { columns: Vec::new() };
    let mut seen_aliases: HashSet<String> = HashSet::new();
    for tref in &stmt.from {
        let table = cat.get(&tref.name)?;
        let alias = tref.effective_alias().to_string();
        if !seen_aliases.insert(alias.to_ascii_lowercase()) {
            return Err(SqlError::Parse(format!("duplicate table alias {alias:?}")));
        }
        for c in &table.columns {
            schema.columns.push((alias.clone(), c.name.clone()));
        }
        tables.push(table);
    }

    // ---- compile expressions ----
    let run_subquery = |sub: &SelectStmt| -> Result<HashSet<String>> {
        let result = execute_select(cat, sub)?;
        if result.columns.len() != 1 {
            return Err(SqlError::Eval(format!(
                "IN subquery must return one column, got {}",
                result.columns.len()
            )));
        }
        Ok(result.rows.into_iter().filter_map(|mut r| r.pop().map(|v| v.group_key())).collect())
    };
    let mut compiler = Compiler::new(&schema, &run_subquery);

    let where_expr = stmt.where_clause.as_ref().map(|e| compiler.compile(e)).transpose()?;
    if !compiler.aggs.is_empty() {
        return Err(SqlError::Unsupported("aggregates in WHERE".into()));
    }
    let group_exprs: Vec<RExpr> =
        stmt.group_by.iter().map(|e| compiler.compile(e)).collect::<Result<_>>()?;
    if !compiler.aggs.is_empty() {
        return Err(SqlError::Unsupported("aggregates in GROUP BY".into()));
    }

    // Projection (wildcard expands to every schema column).
    let mut proj_exprs: Vec<RExpr> = Vec::new();
    let mut columns: Vec<String> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for (i, (_, name)) in schema.columns.iter().enumerate() {
                    proj_exprs.push(RExpr::Col(i));
                    columns.push(name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                proj_exprs.push(compiler.compile(expr)?);
                columns.push(alias.clone().unwrap_or_else(|| render_name(expr)));
            }
        }
    }
    let having_expr = stmt.having.as_ref().map(|e| compiler.compile(e)).transpose()?;
    let order_exprs: Vec<(RExpr, SortDir)> =
        stmt.order_by.iter().map(|(e, d)| Ok((compiler.compile(e)?, *d))).collect::<Result<_>>()?;
    let sky_exprs: Vec<(RExpr, SkyDir)> = match &stmt.skyline {
        Some(clause) => clause
            .items
            .iter()
            .map(|(e, d)| Ok((compiler.compile(e)?, *d)))
            .collect::<Result<_>>()?,
        None => Vec::new(),
    };
    let gamma = match &stmt.skyline {
        Some(clause) => aggsky_core::Gamma::new(clause.gamma.unwrap_or(0.5))
            .map_err(|e| SqlError::Eval(e.to_string()))?,
        None => aggsky_core::Gamma::DEFAULT,
    };
    let aggs = std::mem::take(&mut compiler.aggs);
    let grouped = !stmt.group_by.is_empty() || !aggs.is_empty();
    if grouped && stmt.skyline.is_some() && stmt.group_by.is_empty() {
        return Err(SqlError::Unsupported("SKYLINE OF with aggregates requires GROUP BY".into()));
    }

    // ---- pushdown planning ----
    let widths: Vec<usize> = tables.iter().map(|t| t.columns.len()).collect();
    let offsets: Vec<usize> = widths
        .iter()
        .scan(0usize, |acc, w| {
            let o = *acc;
            *acc += w;
            Some(o)
        })
        .collect();
    let plan = ScanPlan::new(where_expr.as_ref(), &offsets, &widths)?;
    let parts: Vec<Part<'_>> = tables
        .iter()
        .zip(plan.per_table.iter())
        .map(|(table, pred)| {
            let rows = match pred {
                None => PartRows::Borrowed(&table.rows),
                Some(p) => {
                    let mut kept = Vec::new();
                    for row in &table.rows {
                        if eval(p, row, &[])?.is_truthy() {
                            kept.push(row.clone());
                        }
                    }
                    PartRows::Owned(kept)
                }
            };
            Ok(Part { rows, width: table.columns.len() })
        })
        .collect::<Result<_>>()?;

    // ---- scan ----
    let mut interrupted: Option<Interruption> = None;
    let mut out = if plan.always_empty {
        if grouped && stmt.group_by.is_empty() {
            // Aggregates over an empty input still produce one group; keep
            // the parts' widths so the implicit group's NULL row has the
            // right shape, but drop every row.
            let empty_parts: Vec<Part<'_>> = parts
                .iter()
                .map(|p| Part { rows: PartRows::Owned(Vec::new()), width: p.width })
                .collect();
            scan_grouped(
                &empty_parts,
                None,
                &group_exprs,
                &aggs,
                having_expr.as_ref(),
                &sky_exprs,
                gamma,
                &proj_exprs,
                &order_exprs,
                ctx,
                checkpoint,
                &mut interrupted,
            )?
        } else {
            Vec::new()
        }
    } else if grouped {
        scan_grouped(
            &parts,
            plan.residual.as_ref(),
            &group_exprs,
            &aggs,
            having_expr.as_ref(),
            &sky_exprs,
            gamma,
            &proj_exprs,
            &order_exprs,
            ctx,
            checkpoint,
            &mut interrupted,
        )?
    } else {
        scan_plain(&parts, plan.residual.as_ref(), &sky_exprs, &proj_exprs, &order_exprs, ctx)?
    };

    // ---- distinct / order / limit ----
    if stmt.distinct {
        let mut seen: HashSet<String> = HashSet::new();
        out.retain(|(row, _)| {
            let key: String = row.iter().map(Value::group_key).collect();
            seen.insert(key)
        });
    }
    if !order_exprs.is_empty() {
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, dir)) in order_exprs.iter().enumerate() {
                let ord = compare_for_sort(&ka[i], &kb[i]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = stmt.limit {
        out.truncate(limit);
    }
    if let Some(rec) = ctx.obs() {
        rec.span_end(select_span, Stamp::ZERO, &[("rows_out", wide(out.len()))]);
    }
    Ok(QueryResult { columns, rows: out.into_iter().map(|(r, _)| r).collect(), interrupted })
}

/// Widens a length to a counter delta (sanctioned lossless conversion).
fn wide(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Executes a SELECT under a dedicated trace recorder and renders the
/// `EXPLAIN ANALYZE` report: the static plan, the recorded span tree with
/// counters inline, and the result cardinality. The trace's counter totals
/// equal the `Stats` of the same query run plainly (the skyline step dumps
/// its counters exactly once).
pub fn explain_analyze_select(
    cat: &Catalog,
    stmt: &SelectStmt,
    ctx: &RunContext,
) -> Result<QueryResult> {
    explain_analyze_select_with(cat, stmt, ctx).map(|(result, _)| result)
}

/// [`explain_analyze_select`] also returning the recorded trace snapshot,
/// so the engine can journal the measured counters alongside the report.
pub fn explain_analyze_select_with(
    cat: &Catalog,
    stmt: &SelectStmt,
    ctx: &RunContext,
) -> Result<(QueryResult, aggsky_obs::TraceSnapshot)> {
    let rec = Arc::new(TraceRecorder::new());
    let traced = ctx.clone().with_recorder(rec.clone());
    let result = execute_select_ctx(cat, stmt, &traced)?;
    let mut text = explain_select(cat, stmt)?;
    text.push('\n');
    text.push_str(&render_summary(&rec.snapshot()));
    text.push_str(&format!("\n{} row(s) returned\n", result.rows.len()));
    if let Some(i) = &result.interrupted {
        text.push_str(&format!(
            "interrupted ({}): {} group(s) undecided\n",
            i.reason, i.undecided_groups
        ));
    }
    let rows = text.lines().map(|l| vec![Value::Str(l.to_string())]).collect();
    let report = QueryResult {
        columns: vec!["EXPLAIN ANALYZE".to_string()],
        rows,
        interrupted: result.interrupted,
    };
    Ok((report, rec.snapshot()))
}

/// Builds the EXPLAIN description for a SELECT (shared logic with
/// [`execute_select`]'s planning phase, without touching any rows).
pub fn explain_select(cat: &Catalog, stmt: &SelectStmt) -> Result<String> {
    let mut tables = Vec::new();
    let mut schema = Schema { columns: Vec::new() };
    let mut names = Vec::new();
    for tref in &stmt.from {
        let table = cat.get(&tref.name)?;
        let alias = tref.effective_alias().to_string();
        for c in &table.columns {
            schema.columns.push((alias.clone(), c.name.clone()));
        }
        names.push(if alias.eq_ignore_ascii_case(&table.name) {
            table.name.clone()
        } else {
            format!("{} AS {alias}", table.name)
        });
        tables.push(table);
    }
    let run_subquery = |_: &SelectStmt| -> Result<std::collections::HashSet<String>> {
        // EXPLAIN must not execute subqueries; membership sets are opaque.
        Ok(std::collections::HashSet::new())
    };
    let mut compiler = Compiler::new(&schema, &run_subquery);
    let where_expr = stmt.where_clause.as_ref().map(|e| compiler.compile(e)).transpose()?;
    let widths: Vec<usize> = tables.iter().map(|t| t.columns.len()).collect();
    let offsets: Vec<usize> = widths
        .iter()
        .scan(0usize, |acc, w| {
            let o = *acc;
            *acc += w;
            Some(o)
        })
        .collect();
    let plan = ScanPlan::new(where_expr.as_ref(), &offsets, &widths)?;
    let mut out = plan.describe(&names);
    if !stmt.group_by.is_empty() {
        out.push_str(&format!("HASH AGGREGATE: {} grouping key(s)\n", stmt.group_by.len()));
    }
    if stmt.having.is_some() {
        out.push_str("HAVING FILTER\n");
    }
    if let Some(sky) = &stmt.skyline {
        if stmt.group_by.is_empty() {
            out.push_str(&format!("RECORD SKYLINE: {} attribute(s) (BNL)\n", sky.items.len()));
        } else {
            out.push_str(&format!(
                "AGGREGATE SKYLINE: {} attribute(s), gamma = {} (indexed, exact pruning)\n",
                sky.items.len(),
                sky.gamma.unwrap_or(0.5)
            ));
        }
    }
    if stmt.distinct {
        out.push_str("DISTINCT\n");
    }
    if !stmt.order_by.is_empty() {
        out.push_str("SORT\n");
    }
    if let Some(n) = stmt.limit {
        out.push_str(&format!("LIMIT {n}\n"));
    }
    Ok(out)
}

/// NULLs sort first; mixed types sort by type tag.
fn compare_for_sort(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match a.sql_cmp(b) {
        Some(o) => o,
        None => {
            let tag = |v: &Value| match v {
                Value::Null => 0u8,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            };
            match (tag(a), tag(b)) {
                (x, y) if x != y => x.cmp(&y),
                _ => Ordering::Equal,
            }
        }
    }
}

fn render_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, arg } => {
            let f = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                None => format!("{f}(*)"),
                Some(a) => format!("{f}({})", render_name(a)),
            }
        }
        _ => "expr".to_string(),
    }
}

/// Rows of one FROM entry, possibly pre-filtered by a pushed-down
/// predicate.
enum PartRows<'a> {
    Borrowed(&'a [Vec<Value>]),
    Owned(Vec<Vec<Value>>),
}

/// One FROM entry prepared for scanning.
struct Part<'a> {
    rows: PartRows<'a>,
    width: usize,
}

impl Part<'_> {
    fn rows(&self) -> &[Vec<Value>] {
        match &self.rows {
            PartRows::Borrowed(r) => r,
            PartRows::Owned(r) => r,
        }
    }
}

/// Streams the cross product of the prepared parts, invoking `on_row` for
/// each combined row that passes the residual predicate.
fn stream_product(
    parts: &[Part<'_>],
    residual: Option<&RExpr>,
    mut on_row: impl FnMut(&[Value]) -> Result<()>,
) -> Result<()> {
    let n = parts.len();
    let sizes: Vec<usize> = parts.iter().map(|p| p.rows().len()).collect();
    if n == 0 || sizes.contains(&0) {
        return Ok(());
    }
    let offsets: Vec<usize> = parts
        .iter()
        .scan(0usize, |acc, p| {
            let o = *acc;
            *acc += p.width;
            Some(o)
        })
        .collect();
    let total_width: usize = parts.iter().map(|p| p.width).sum();
    let mut row_buf: Vec<Value> = vec![Value::Null; total_width];
    let mut idx = vec![0usize; n];
    // Prime every segment.
    for k in 0..n {
        refresh_segment(&mut row_buf, &parts[k], 0, offsets[k]);
    }
    loop {
        let passes = match residual {
            Some(e) => eval(e, &row_buf, &[])?.is_truthy(),
            None => true,
        };
        if passes {
            on_row(&row_buf)?;
        }
        // Odometer advance (last table spins fastest).
        let mut k = n;
        loop {
            if k == 0 {
                return Ok(());
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < sizes[k] {
                refresh_segment(&mut row_buf, &parts[k], idx[k], offsets[k]);
                break;
            }
            idx[k] = 0;
            refresh_segment(&mut row_buf, &parts[k], 0, offsets[k]);
        }
    }
}

#[inline]
fn refresh_segment(buf: &mut [Value], part: &Part<'_>, row: usize, offset: usize) {
    for (slot, v) in buf[offset..offset + part.width].iter_mut().zip(&part.rows()[row]) {
        slot.clone_from(v);
    }
}

type RowWithKeys = (Vec<Value>, Vec<Value>);

/// Ungrouped scan: project each passing row, with optional record skyline.
fn scan_plain(
    parts: &[Part<'_>],
    residual: Option<&RExpr>,
    sky_exprs: &[(RExpr, SkyDir)],
    proj_exprs: &[RExpr],
    order_exprs: &[(RExpr, SortDir)],
    ctx: &RunContext,
) -> Result<Vec<RowWithKeys>> {
    let scan_span = ctx.obs().map_or(0, |rec| rec.span_start("scan", 0, Stamp::ZERO));
    let mut out: Vec<RowWithKeys> = Vec::new();
    let mut sky_flat: Vec<f64> = Vec::new();
    stream_product(parts, residual, |row| {
        let proj: Vec<Value> =
            proj_exprs.iter().map(|e| eval(e, row, &[])).collect::<Result<_>>()?;
        let keys: Vec<Value> =
            order_exprs.iter().map(|(e, _)| eval(e, row, &[])).collect::<Result<_>>()?;
        for (e, dir) in sky_exprs {
            let v = eval(e, row, &[])?
                .as_f64()
                .ok_or_else(|| SqlError::Eval("SKYLINE OF attribute must be numeric".into()))?;
            sky_flat.push(match dir {
                SkyDir::Max => v,
                SkyDir::Min => -v,
            });
        }
        out.push((proj, keys));
        Ok(())
    })?;
    if let Some(rec) = ctx.obs() {
        rec.add(Counter::SqlRowsScanned, wide(out.len()));
        rec.span_end(scan_span, Stamp::ZERO, &[("rows", wide(out.len()))]);
    }
    if !sky_exprs.is_empty() && !out.is_empty() {
        let sky_span = ctx.obs().map_or(0, |rec| rec.span_start("record_skyline", 0, Stamp::ZERO));
        let input = out.len();
        let keep = aggsky_core::record_skyline::bnl(&sky_flat, sky_exprs.len());
        let keep_set: HashSet<usize> = keep.into_iter().collect();
        let mut i = 0;
        out.retain(|_| {
            let k = keep_set.contains(&i);
            i += 1;
            k
        });
        if let Some(rec) = ctx.obs() {
            rec.span_end(
                sky_span,
                Stamp::ZERO,
                &[("input_rows", wide(input)), ("kept", wide(out.len()))],
            );
        }
    }
    Ok(out)
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    Sum { sum: f64, seen: bool },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum { sum: 0.0, seen: false },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            Acc::Count(c) => {
                // `v = None` encodes COUNT(*): count unconditionally.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    Some(_) => {}
                }
            }
            Acc::Sum { sum, seen } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val
                            .as_f64()
                            .ok_or_else(|| SqlError::Eval("SUM over non-numeric value".into()))?;
                        *seen = true;
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val
                            .as_f64()
                            .ok_or_else(|| SqlError::Eval("AVG over non-numeric value".into()))?;
                        *n += 1;
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => matches!(val.sql_cmp(c), Some(std::cmp::Ordering::Less)),
                        };
                        if replace {
                            *cur = Some(val);
                        }
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => matches!(val.sql_cmp(c), Some(std::cmp::Ordering::Greater)),
                        };
                        if replace {
                            *cur = Some(val);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(i64::try_from(*c).unwrap_or(i64::MAX)),
            Acc::Sum { sum, seen } => {
                if *seen {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            Acc::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(*sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

struct GroupState {
    /// First row of the group (resolves bare column references, SQLite
    /// style).
    repr: Vec<Value>,
    accs: Vec<Acc>,
    /// Flat skyline-attribute rows of the group's records.
    sky: Vec<f64>,
}

/// Grouped scan: fold rows into group states, apply HAVING, then the
/// aggregate skyline, then project per surviving group.
#[allow(clippy::too_many_arguments)]
fn scan_grouped(
    parts: &[Part<'_>],
    residual: Option<&RExpr>,
    group_exprs: &[RExpr],
    aggs: &[AggCall],
    having_expr: Option<&RExpr>,
    sky_exprs: &[(RExpr, SkyDir)],
    gamma: aggsky_core::Gamma,
    proj_exprs: &[RExpr],
    order_exprs: &[(RExpr, SortDir)],
    ctx: &RunContext,
    checkpoint: Option<&str>,
    interrupted: &mut Option<Interruption>,
) -> Result<Vec<RowWithKeys>> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<GroupState> = Vec::new();
    let scan_span = ctx.obs().map_or(0, |rec| rec.span_start("scan", 0, Stamp::ZERO));
    let mut scanned = 0u64;
    stream_product(parts, residual, |row| {
        scanned = scanned.saturating_add(1);
        let mut key = String::new();
        for e in group_exprs {
            key.push_str(&eval(e, row, &[])?.group_key());
            key.push('\u{1}');
        }
        let gi = match index.get(&key) {
            Some(&gi) => gi,
            None => {
                groups.push(GroupState {
                    repr: row.to_vec(),
                    accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
                    sky: Vec::new(),
                });
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        let state = &mut groups[gi];
        for (acc, call) in state.accs.iter_mut().zip(aggs.iter()) {
            let v = match &call.arg {
                Some(a) => Some(eval(a, row, &[])?),
                None => None,
            };
            acc.update(v)?;
        }
        for (e, dir) in sky_exprs {
            let v = eval(e, row, &[])?
                .as_f64()
                .ok_or_else(|| SqlError::Eval("SKYLINE OF attribute must be numeric".into()))?;
            state.sky.push(match dir {
                SkyDir::Max => v,
                SkyDir::Min => -v,
            });
        }
        Ok(())
    })?;
    if let Some(rec) = ctx.obs() {
        rec.add(Counter::SqlRowsScanned, scanned);
        rec.add(Counter::SqlGroupsBuilt, wide(groups.len()));
        rec.span_end(scan_span, Stamp::ZERO, &[("rows", scanned), ("groups", wide(groups.len()))]);
    }

    // Aggregate-less GROUP BY-less aggregate query (e.g. SELECT count(*)):
    // one implicit group even over an empty input.
    if groups.is_empty() && group_exprs.is_empty() {
        let width: usize = parts.iter().map(|p| p.width).sum();
        groups.push(GroupState {
            repr: vec![Value::Null; width],
            accs: aggs.iter().map(|a| Acc::new(a.func)).collect(),
            sky: Vec::new(),
        });
    }

    // Finalize aggregates and apply HAVING.
    let mut survivors: Vec<(usize, Vec<Value>)> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let agg_values: Vec<Value> = g.accs.iter().map(Acc::finish).collect();
        let keep = match having_expr {
            Some(h) => eval(h, &g.repr, &agg_values)?.is_truthy(),
            None => true,
        };
        if keep {
            survivors.push((gi, agg_values));
        }
    }

    // Aggregate skyline over the surviving groups (Example 3 semantics:
    // the skyline acts as a HAVING-like filter on groups).
    if !sky_exprs.is_empty() && survivors.len() > 1 {
        let sky_span = ctx.obs().map_or(0, |rec| rec.span_start("skyline", 0, Stamp::ZERO));
        let candidate_groups = survivors.len();
        let dim = sky_exprs.len();
        let mut b = aggsky_core::GroupedDatasetBuilder::new(dim).trusted_labels();
        for (gi, _) in &survivors {
            let rows: Vec<&[f64]> = groups[*gi].sky.chunks_exact(dim).collect();
            b.push_group(gi.to_string(), &rows).map_err(|e| SqlError::Eval(e.to_string()))?;
        }
        let ds = b.build().map_err(|e| SqlError::Eval(e.to_string()))?;
        // A budget-exhausted (or cancelled) run degrades gracefully: keep
        // only the groups proven to belong to the skyline and record the
        // interruption instead of failing the query.
        let keep: HashSet<usize> = if let Some(dir) = checkpoint {
            // Durable path (`SET CHECKPOINT`): persist the partition as a
            // crash-consistent frame and resume from the newest valid one.
            // A mismatched fingerprint (different data/γ in the same
            // directory) is a hard error, not silent degradation.
            let store = aggsky_core::CheckpointStore::open(std::path::Path::new(dir))
                .map_err(|e| SqlError::Eval(e.to_string()))?;
            let out = aggsky_core::checkpoint_step(&ds, gamma, ctx, &store)
                .map_err(|e| SqlError::Eval(e.to_string()))?;
            if let Some(reason) = out.interrupt {
                *interrupted =
                    Some(Interruption { reason, undecided_groups: out.result.undecided.len() });
            }
            out.result.confirmed_in.into_iter().collect()
        } else {
            let opts = aggsky_core::AlgoOptions::exact(gamma);
            let outcome = aggsky_core::Algorithm::Indexed
                .run_ctx(&ds, opts, ctx)
                .map_err(|e| SqlError::Eval(e.to_string()))?;
            match outcome {
                aggsky_core::Outcome::Complete(result) => result.skyline.into_iter().collect(),
                aggsky_core::Outcome::Interrupted { reason, partial } => {
                    *interrupted =
                        Some(Interruption { reason, undecided_groups: partial.undecided.len() });
                    partial.confirmed_in.into_iter().collect()
                }
            }
        };
        let mut i = 0;
        survivors.retain(|_| {
            let k = keep.contains(&i);
            i += 1;
            k
        });
        if let Some(rec) = ctx.obs() {
            rec.span_end(
                sky_span,
                Stamp::ZERO,
                &[("groups", wide(candidate_groups)), ("kept", wide(survivors.len()))],
            );
        }
    }

    // Project per group.
    let mut out = Vec::with_capacity(survivors.len());
    for (gi, agg_values) in survivors {
        let g = &groups[gi];
        let proj: Vec<Value> =
            proj_exprs.iter().map(|e| eval(e, &g.repr, &agg_values)).collect::<Result<_>>()?;
        let keys: Vec<Value> = order_exprs
            .iter()
            .map(|(e, _)| eval(e, &g.repr, &agg_values))
            .collect::<Result<_>>()?;
        out.push((proj, keys));
    }
    Ok(out)
}

#[cfg(test)]
mod exec_obs_tests {
    use crate::engine::Database;

    fn movie_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE movie (director TEXT, pop FLOAT, qual FLOAT)").unwrap();
        db.execute(
            "INSERT INTO movie VALUES ('T', 313, 8.2), ('T', 557, 9.0), \
             ('K', 362, 8.8), ('W', 10, 3.2)",
        )
        .unwrap();
        db
    }

    #[test]
    fn explain_analyze_renders_span_tree_for_skyline_select() {
        let mut db = movie_db();
        let r = db
            .execute(
                "EXPLAIN ANALYZE SELECT director FROM movie \
                 GROUP BY director SKYLINE OF pop MAX, qual MAX",
            )
            .unwrap();
        let text: String = r.rows.iter().map(|row| format!("{}\n", row[0])).collect();
        assert!(text.contains("select"), "no select span: {text}");
        assert!(text.contains("scan"), "no scan span: {text}");
        assert!(text.contains("skyline"), "no skyline span: {text}");
        assert!(text.contains("aggsky_sql_rows_scanned_total"), "no scan counter: {text}");
        assert!(text.contains("row(s) returned"), "no cardinality line: {text}");
    }

    #[test]
    fn explain_analyze_works_for_plain_selects() {
        let mut db = movie_db();
        let r = db.execute("EXPLAIN ANALYZE SELECT director FROM movie WHERE pop > 100").unwrap();
        let text: String = r.rows.iter().map(|row| format!("{}\n", row[0])).collect();
        assert!(text.contains("select"), "no select span: {text}");
        assert!(text.contains("3 row(s) returned"), "wrong cardinality: {text}");
    }

    #[test]
    fn explain_without_analyze_describes_without_executing() {
        let mut db = movie_db();
        let r = db.execute("EXPLAIN SELECT director FROM movie WHERE pop > 100").unwrap();
        assert_eq!(r.columns, vec!["EXPLAIN".to_string()]);
        let text: String = r.rows.iter().map(|row| format!("{}\n", row[0])).collect();
        assert!(text.contains("SCAN"), "no scan description: {text}");
        assert!(!text.contains("row(s) returned"), "EXPLAIN must not execute: {text}");
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use crate::engine::Database;

    fn movie_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE movie (director TEXT, pop FLOAT, qual FLOAT)").unwrap();
        db.execute(
            "INSERT INTO movie VALUES ('T', 313, 8.2), ('T', 557, 9.0), \
             ('K', 362, 8.8), ('W', 10, 3.2)",
        )
        .unwrap();
        db
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("aggsky-sqlck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const SKY: &str =
        "SELECT director FROM movie GROUP BY director SKYLINE OF pop MAX, qual MAX ORDER BY director";

    #[test]
    fn set_checkpoint_persists_frames_and_reruns_identically() {
        let dir = tmpdir("basic");
        let mut db = movie_db();
        let plain = db.execute(SKY).unwrap();
        db.execute(&format!("SET CHECKPOINT '{}'", dir.display())).unwrap();
        assert_eq!(db.checkpoint_dir(), Some(dir.display().to_string().as_str()));
        let durable = db.execute(SKY).unwrap();
        assert_eq!(durable.rows, plain.rows, "durable path changed the skyline");
        let frames = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "agsk"))
            .count();
        assert!(frames > 0, "no frame written under {}", dir.display());
        // Re-running recovers the complete frame and returns the same rows.
        let again = db.execute(SKY).unwrap();
        assert_eq!(again.rows, plain.rows);
        db.execute("SET CHECKPOINT OFF").unwrap();
        assert_eq!(db.checkpoint_dir(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_checkpoint_queries_converge_across_executions() {
        let dir = tmpdir("budget");
        let mut db = movie_db();
        let exact = db.execute(SKY).unwrap();
        db.execute("SET TIMEOUT 1").unwrap();
        db.execute(&format!("SET CHECKPOINT '{}'", dir.display())).unwrap();
        // Each execution advances one budgeted chunk from the durable
        // frame; the chain must converge to the exact answer.
        let mut rounds = 0;
        let converged = loop {
            let r = db.execute(SKY).unwrap();
            if r.interrupted.is_none() {
                break r;
            }
            rounds += 1;
            assert!(rounds < 10_000, "checkpointed resume chain did not converge");
        };
        assert_eq!(converged.rows, exact.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
