//! The `Database` façade: parse + execute statements against a catalog.

use crate::ast::{ColumnType, SelectStmt, Statement};
use crate::catalog::{Catalog, Column};
use crate::error::{Result, SqlError};
use crate::exec::{execute_select, QueryResult};
use crate::parser::parse;
use crate::plan::{eval, RExpr};
use crate::value::Value;
use aggsky_core::service::{Epoch, EpochReceipt, SkylineService, WriteBatch};
use aggsky_core::{Gamma, RunContext};
use aggsky_obs::{query_id, Counter, QueryJournal, QueryRecord, TraceRecorder, WallClock};
use std::collections::HashMap;
use std::sync::Arc;

/// A live serving binding: writes to the bound table are mirrored into an
/// epoch-published [`SkylineService`], so readers can answer γ-queries
/// against an immutable snapshot while DML keeps flowing.
#[derive(Debug)]
struct ServiceBinding {
    /// Column whose value labels the group (TEXT, or INT rendered as
    /// text).
    group_col: usize,
    /// Measure columns, in skyline-dimension order (all MAX preference).
    measure_cols: Vec<usize>,
    /// The service; `Arc` so [`Database::skyline_service`] can hand out
    /// long-lived reader handles.
    service: Arc<SkylineService>,
}

impl ServiceBinding {
    /// Converts one table row into a `(group label, record)` pair.
    fn row_parts(&self, row: &[Value]) -> Result<(String, Vec<f64>)> {
        let label = match row.get(self.group_col) {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::Int(i)) => i.to_string(),
            other => {
                return Err(SqlError::Eval(format!(
                    "serving group column must be TEXT or INT, got {other:?}"
                )));
            }
        };
        let mut record = Vec::with_capacity(self.measure_cols.len());
        for &c in &self.measure_cols {
            let v = row
                .get(c)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| SqlError::Eval("serving measure must be numeric".into()))?;
            if !v.is_finite() {
                return Err(SqlError::Eval("serving measure must be finite".into()));
            }
            record.push(v);
        }
        Ok((label, record))
    }
}

/// An in-memory SQL database.
///
/// ```
/// use aggsky_sql::Database;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE movie (title TEXT, pop FLOAT, qual FLOAT)").unwrap();
/// db.execute("INSERT INTO movie VALUES ('Pulp Fiction', 557, 9.0), ('The Room', 10, 3.2)")
///     .unwrap();
/// let r = db.execute("SELECT title FROM movie SKYLINE OF pop MAX, qual MAX").unwrap();
/// assert_eq!(r.rows.len(), 1);
/// assert_eq!(r.rows[0][0].to_string(), "Pulp Fiction");
/// ```
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    /// `SET TIMEOUT` budget in record-pair ticks; `0` = unlimited.
    timeout_ticks: u64,
    /// `SET CHECKPOINT` directory; when set, the aggregate-skyline step of
    /// each query is persisted as durable frames there and resumed from
    /// the newest valid frame on re-execution.
    checkpoint_dir: Option<String>,
    /// The structured query log: one [`QueryRecord`] per executed
    /// statement. Shared (`Arc`) so clones of the database journal into
    /// the same log.
    journal: Arc<QueryJournal>,
    /// 0-based sequence number of the next statement (feeds [`query_id`]).
    executed: u64,
    /// When true, journal records carry wall-clock durations. Off by
    /// default so the JSONL export stays byte-identical across runs.
    record_wall_time: bool,
    /// Live serving bindings keyed by lowercase table name: DML against a
    /// bound table is mirrored into its epoch-published skyline service.
    services: HashMap<String, ServiceBinding>,
}

impl Clone for Database {
    /// Clones the catalog and settings; the journal stays shared (`Arc`),
    /// so clones keep logging into one query log. Live serving bindings
    /// are **not** carried over: each clone owns an independent copy of
    /// every table, so sharing a bound [`SkylineService`] would let DML on
    /// one copy silently diverge the epochs the other serves. Re-bind with
    /// [`Database::serve_skyline`] on the clone if it needs live serving.
    fn clone(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            timeout_ticks: self.timeout_ticks,
            checkpoint_dir: self.checkpoint_dir.clone(),
            journal: self.journal.clone(),
            executed: self.executed,
            record_wall_time: self.record_wall_time,
            services: HashMap::new(),
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The active `SET TIMEOUT` budget in record-pair ticks (`0` =
    /// unlimited).
    pub fn timeout_ticks(&self) -> u64 {
        self.timeout_ticks
    }

    /// Programmatic equivalent of `SET TIMEOUT`.
    pub fn set_timeout_ticks(&mut self, ticks: u64) {
        self.timeout_ticks = ticks;
    }

    /// The active `SET CHECKPOINT` directory, if any.
    pub fn checkpoint_dir(&self) -> Option<&str> {
        self.checkpoint_dir.as_deref()
    }

    /// Programmatic equivalent of `SET CHECKPOINT 'dir'` / `SET CHECKPOINT
    /// OFF`.
    pub fn set_checkpoint_dir(&mut self, dir: Option<String>) {
        self.checkpoint_dir = dir;
    }

    /// The execution-control context queries run under: unlimited unless a
    /// non-zero `SET TIMEOUT` is active.
    fn run_context(&self) -> RunContext {
        if self.timeout_ticks == 0 {
            RunContext::unlimited()
        } else {
            RunContext::with_budget(self.timeout_ticks)
        }
    }

    /// Binds a table to a live [`SkylineService`]: existing rows seed epoch
    /// 0, and every subsequent `INSERT`/`DELETE` against the table is
    /// routed through the service as one write batch, publishing a new
    /// epoch snapshot per statement.
    ///
    /// `group_col` labels the group (TEXT, or INT rendered as text);
    /// `measures` are the skyline dimensions in order, all MAX preference.
    /// `UPDATE` against a bound table is rejected (`DELETE` + `INSERT`
    /// instead) so the mirrored state can never silently diverge.
    pub fn serve_skyline(
        &mut self,
        table: &str,
        group_col: &str,
        measures: &[&str],
        gamma: f64,
    ) -> Result<()> {
        let key = table.to_ascii_lowercase();
        if self.services.contains_key(&key) {
            return Err(SqlError::Eval(format!("table '{table}' already has a serving binding")));
        }
        let t = self.catalog.get(table)?;
        let group_col =
            t.column_index(group_col).ok_or_else(|| SqlError::UnknownColumn(group_col.into()))?;
        if measures.is_empty() {
            return Err(SqlError::Eval("serving needs at least one measure column".into()));
        }
        let measure_cols = measures
            .iter()
            .map(|m| t.column_index(m).ok_or_else(|| SqlError::UnknownColumn((*m).into())))
            .collect::<Result<Vec<usize>>>()?;
        let gamma = Gamma::new(gamma).map_err(|e| SqlError::Eval(e.to_string()))?;
        let service = SkylineService::new(measure_cols.len(), gamma)
            .map_err(|e| SqlError::Eval(e.to_string()))?;
        let binding = ServiceBinding { group_col, measure_cols, service: Arc::new(service) };
        // Seed epoch 0 from the rows already in the table; any invalid row
        // fails the whole bind before the binding is installed.
        let mut batch = WriteBatch::new();
        for row in &t.rows {
            let (label, record) = binding.row_parts(row)?;
            batch = batch.insert(label, &record);
        }
        binding
            .service
            .apply(&batch)
            .map_err(|e| SqlError::Eval(format!("serving seed failed: {e}")))?;
        self.services.insert(key, binding);
        Ok(())
    }

    /// The live serving handle bound to `table`, if any.
    pub fn skyline_service(&self, table: &str) -> Option<&Arc<SkylineService>> {
        self.services.get(&table.to_ascii_lowercase()).map(|b| &b.service)
    }

    /// The current epoch snapshot of `table`'s serving binding, if any.
    /// The returned handle stays valid (and immutable) across later writes.
    pub fn serving_epoch(&self, table: &str) -> Option<Arc<Epoch>> {
        self.services.get(&table.to_ascii_lowercase()).map(|b| b.service.current())
    }

    /// Mirrors routed DML rows into `table`'s serving binding, if bound,
    /// and self-describes the published epoch in the journal record.
    /// Returns `Ok(None)` when the table is unbound.
    fn route_serving(
        &mut self,
        table: &str,
        rows: &[Vec<Value>],
        delete: bool,
        record: &mut QueryRecord,
    ) -> Result<Option<EpochReceipt>> {
        let Some(binding) = self.services.get(&table.to_ascii_lowercase()) else {
            return Ok(None);
        };
        let mut batch = WriteBatch::new();
        for row in rows {
            let (label, rec) = binding.row_parts(row)?;
            batch = if delete { batch.delete(label, &rec) } else { batch.insert(label, &rec) };
        }
        // An apply error here is internal: the batch was validated above and
        // the engine mirrors the table state exactly.
        let receipt = binding
            .service
            .apply_ctx(&batch, &self.run_context())
            .map_err(|e| SqlError::Eval(format!("serving apply failed: {e}")))?;
        record.epoch = Some(receipt.epoch);
        record.batch_rows = receipt.batch_rows;
        record.deferred_pairs = receipt.deferred_pairs;
        record.flushed_pairs = receipt.flushed_pairs;
        Ok(Some(receipt))
    }

    /// Parses and executes one statement. DDL/DML statements return an
    /// empty result with a `rows_affected`-style single cell.
    ///
    /// Every successful execution appends one [`QueryRecord`] to the
    /// structured [`Database::journal`]: deterministic query id, plan
    /// shape, γ, counters harvested from a per-statement trace recorder,
    /// and the interrupted/slow flags. Parse and execution errors are not
    /// journaled (there is no completed statement to describe).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        let seq = self.executed;
        self.executed += 1;
        let text = sql.trim();
        let mut record = QueryRecord {
            query_id: query_id(seq, text),
            seq,
            sql: text.to_string(),
            budget: self.timeout_ticks,
            kernel: "default".to_string(),
            ..QueryRecord::default()
        };
        let clock = if self.record_wall_time { Some(WallClock::start()) } else { None };
        let result = self.dispatch(stmt, &mut record)?;
        record.rows_out = u64::try_from(result.rows.len()).unwrap_or(u64::MAX);
        record.interrupted = result.interrupted.is_some();
        record.wall_micros = clock.map(|c| c.elapsed_micros());
        self.journal.push(record);
        Ok(result)
    }

    /// Executes one parsed statement, filling the journal record's
    /// statement-specific fields as a side effect.
    fn dispatch(&mut self, stmt: Statement, record: &mut QueryRecord) -> Result<QueryResult> {
        match stmt {
            Statement::Select(stmt) => {
                record.kind = "select";
                record.plan = plan_shape(&stmt);
                record.gamma_permille = gamma_permille(&stmt);
                let rec = Arc::new(TraceRecorder::new());
                let ctx = self.run_context().with_recorder(rec.clone());
                let result = crate::exec::execute_select_durable(
                    &self.catalog,
                    &stmt,
                    &ctx,
                    self.checkpoint_dir.as_deref(),
                )?;
                harvest_counters(record, &rec.snapshot());
                Ok(result)
            }
            Statement::Explain { analyze, stmt } => {
                record.plan = plan_shape(&stmt);
                record.gamma_permille = gamma_permille(&stmt);
                if analyze {
                    record.kind = "explain_analyze";
                    let (result, snap) = crate::exec::explain_analyze_select_with(
                        &self.catalog,
                        &stmt,
                        &self.run_context(),
                    )?;
                    harvest_counters(record, &snap);
                    Ok(result)
                } else {
                    record.kind = "explain";
                    let text = crate::exec::explain_select(&self.catalog, &stmt)?;
                    Ok(QueryResult {
                        columns: vec!["EXPLAIN".to_string()],
                        rows: text.lines().map(|l| vec![Value::Str(l.to_string())]).collect(),
                        interrupted: None,
                    })
                }
            }
            Statement::SetTimeout(ticks) => {
                record.kind = "set";
                self.timeout_ticks = ticks;
                record.budget = ticks;
                Ok(QueryResult {
                    columns: vec!["timeout_ticks".to_string()],
                    rows: vec![vec![Value::Int(i64::try_from(ticks).unwrap_or(i64::MAX))]],
                    interrupted: None,
                })
            }
            Statement::SetCheckpoint(dir) => {
                record.kind = "set";
                let shown = dir.clone().unwrap_or_else(|| "OFF".to_string());
                self.checkpoint_dir = dir;
                Ok(QueryResult {
                    columns: vec!["checkpoint_dir".to_string()],
                    rows: vec![vec![Value::Str(shown)]],
                    interrupted: None,
                })
            }
            Statement::SetSlowQuery(ticks) => {
                record.kind = "set";
                self.journal.set_slow_threshold_ticks(ticks);
                Ok(QueryResult {
                    columns: vec!["slow_query_ticks".to_string()],
                    rows: vec![vec![Value::Int(i64::try_from(ticks).unwrap_or(i64::MAX))]],
                    interrupted: None,
                })
            }
            Statement::CreateTable { name, columns } => {
                record.kind = "ddl";
                let cols = columns.into_iter().map(|(name, ty)| Column { name, ty }).collect();
                self.catalog.create(&name, cols)?;
                Ok(ddl_result(0))
            }
            Statement::Insert { table, columns, source } => {
                record.kind = "dml";
                let n = match source {
                    crate::ast::InsertSource::Values(rows) => {
                        self.insert_ast_rows(&table, columns.as_deref(), rows)?
                    }
                    crate::ast::InsertSource::Select(sel) => {
                        let result = execute_select(&self.catalog, &sel)?;
                        self.insert_value_rows(&table, columns.as_deref(), result.rows)?
                    }
                };
                let receipt = if self.services.contains_key(&table.to_ascii_lowercase()) {
                    let t = self.catalog.get(&table)?;
                    let start = t.rows.len() - n;
                    let inserted: Vec<Vec<Value>> = t.rows[start..].to_vec();
                    match self.route_serving(&table, &inserted, false, record) {
                        Ok(receipt) => receipt,
                        Err(e) => {
                            // Roll the rows back out so the table stays in
                            // lock-step with the serving state.
                            self.catalog.get_mut(&table)?.rows.truncate(start);
                            return Err(e);
                        }
                    }
                } else {
                    None
                };
                Ok(dml_result(n, receipt))
            }
            Statement::DropTable(name) => {
                record.kind = "ddl";
                self.catalog.drop(&name)?;
                self.services.remove(&name.to_ascii_lowercase());
                Ok(ddl_result(0))
            }
            Statement::Delete { table, where_clause } => {
                record.kind = "dml";
                let (removed, positions) = self.delete_rows(&table, where_clause.as_ref())?;
                let n = removed.len();
                let receipt = match self.route_serving(&table, &removed, true, record) {
                    Ok(receipt) => receipt,
                    Err(e) => {
                        // Splice the rows back at their original positions
                        // so the table stays in lock-step with the serving
                        // state (mirrors the INSERT rollback).
                        let t = self.catalog.get_mut(&table)?;
                        for (&pos, row) in positions.iter().zip(removed) {
                            t.rows.insert(pos, row);
                        }
                        return Err(e);
                    }
                };
                Ok(dml_result(n, receipt))
            }
            Statement::Update { table, sets, where_clause } => {
                record.kind = "dml";
                if self.services.contains_key(&table.to_ascii_lowercase()) {
                    return Err(SqlError::Unsupported(
                        "UPDATE on a table with a live skyline binding \
                         (use DELETE + INSERT so the mirrored epochs stay exact)"
                            .into(),
                    ));
                }
                let n = self.update_rows(&table, &sets, where_clause.as_ref())?;
                Ok(ddl_result(n))
            }
        }
    }

    /// The structured query log this database journals into.
    pub fn journal(&self) -> &QueryJournal {
        &self.journal
    }

    /// A shareable handle to the query log (clones journal into the same
    /// log).
    pub fn journal_handle(&self) -> Arc<QueryJournal> {
        self.journal.clone()
    }

    /// Enables or disables wall-clock durations in journal records.
    /// Disabled by default: the JSONL export is byte-identical across
    /// same-seed runs only without wall times.
    pub fn set_record_wall_time(&mut self, on: bool) {
        self.record_wall_time = on;
    }

    /// Compiles an expression against one table's schema (no aggregates, no
    /// subqueries — DML predicates are row-local).
    fn compile_row_expr(table: &crate::catalog::Table, expr: &crate::ast::Expr) -> Result<RExpr> {
        let schema = crate::plan::Schema {
            columns: table.columns.iter().map(|c| (table.name.clone(), c.name.clone())).collect(),
        };
        let no_sub = |_: &crate::ast::SelectStmt| {
            Err(SqlError::Unsupported("subquery in DML predicate".into()))
        };
        let mut compiler = crate::plan::Compiler::new(&schema, &no_sub);
        let compiled = compiler.compile(expr)?;
        if !compiler.aggs.is_empty() {
            return Err(SqlError::Unsupported("aggregate in DML statement".into()));
        }
        Ok(compiled)
    }

    /// Deletes matching rows and returns them alongside their original
    /// table positions (both in table order; re-inserting each row at its
    /// position in ascending order restores the table exactly). The delete
    /// is all-or-nothing: the predicate is evaluated over every row before
    /// anything is removed, so an evaluation error leaves the table — and
    /// any serving binding mirroring it — untouched.
    fn delete_rows(
        &mut self,
        table: &str,
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<(Vec<Vec<Value>>, Vec<usize>)> {
        let t = self.catalog.get(table)?;
        let predicate = where_clause.map(|e| Self::compile_row_expr(t, e)).transpose()?;
        let t = self.catalog.get_mut(table)?;
        match predicate {
            None => {
                let rows = std::mem::take(&mut t.rows);
                let positions = (0..rows.len()).collect();
                Ok((rows, positions))
            }
            Some(p) => {
                let mut hit = Vec::with_capacity(t.rows.len());
                for row in &t.rows {
                    hit.push(eval(&p, row, &[])?.is_truthy());
                }
                let mut removed = Vec::new();
                let mut positions = Vec::new();
                let mut kept = Vec::with_capacity(t.rows.len());
                for (pos, (row, hit)) in std::mem::take(&mut t.rows).into_iter().zip(hit).enumerate()
                {
                    if hit {
                        removed.push(row);
                        positions.push(pos);
                    } else {
                        kept.push(row);
                    }
                }
                t.rows = kept;
                Ok((removed, positions))
            }
        }
    }

    fn update_rows(
        &mut self,
        table: &str,
        sets: &[(String, crate::ast::Expr)],
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<usize> {
        let t = self.catalog.get(table)?;
        let predicate = where_clause.map(|e| Self::compile_row_expr(t, e)).transpose()?;
        let mut compiled_sets = Vec::with_capacity(sets.len());
        for (col, expr) in sets {
            let idx = t.column_index(col).ok_or_else(|| SqlError::UnknownColumn(col.clone()))?;
            compiled_sets.push((idx, Self::compile_row_expr(t, expr)?));
        }
        let float_cols: Vec<bool> = t.columns.iter().map(|c| c.ty == ColumnType::Float).collect();
        let t = self.catalog.get_mut(table)?;
        let mut updated = 0usize;
        for row in &mut t.rows {
            let hit = match &predicate {
                None => true,
                Some(p) => eval(p, row, &[])?.is_truthy(),
            };
            if !hit {
                continue;
            }
            // Evaluate every right-hand side against the pre-update row.
            let mut new_values = Vec::with_capacity(compiled_sets.len());
            for (idx, rhs) in &compiled_sets {
                let mut v = eval(rhs, row, &[])?;
                if float_cols[*idx] {
                    if let Value::Int(i) = v {
                        v = Value::Float(i as f64);
                    }
                }
                new_values.push((*idx, v));
            }
            for (idx, v) in new_values {
                row[idx] = v;
            }
            updated += 1;
        }
        Ok(updated)
    }

    fn insert_ast_rows(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: Vec<Vec<crate::ast::Expr>>,
    ) -> Result<usize> {
        // Evaluate literal expressions (no row context).
        let no_sub =
            |_: &crate::ast::SelectStmt| Err(SqlError::Unsupported("subquery in INSERT".into()));
        let empty_schema = crate::plan::Schema { columns: Vec::new() };
        let mut compiler = crate::plan::Compiler::new(&empty_schema, &no_sub);
        let t = self.catalog.get(table)?;
        let reorder = Self::column_reorder(t, columns)?;
        let width = t.columns.len();
        let mut evaluated: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for row in rows {
            let vals: Vec<Value> = row
                .iter()
                .map(|e| {
                    let r: RExpr = compiler.compile(e)?;
                    eval(&r, &[], &[])
                })
                .collect::<Result<_>>()?;
            let vals = match &reorder {
                None => vals,
                Some(map) => {
                    let mut shuffled = vec![Value::Null; width];
                    for (i, v) in map.iter().zip(vals) {
                        shuffled[*i] = v;
                    }
                    shuffled
                }
            };
            evaluated.push(vals);
        }
        let n = evaluated.len();
        let t = self.catalog.get_mut(table)?;
        for vals in evaluated {
            t.push_row(vals)?;
        }
        Ok(n)
    }

    /// Inserts already-evaluated rows, honoring an optional column list.
    fn insert_value_rows(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: Vec<Vec<Value>>,
    ) -> Result<usize> {
        let t = self.catalog.get(table)?;
        let reorder = Self::column_reorder(t, columns)?;
        let width = t.columns.len();
        let n = rows.len();
        let t = self.catalog.get_mut(table)?;
        for vals in rows {
            let vals = match &reorder {
                None => vals,
                Some(map) => {
                    if vals.len() != map.len() {
                        return Err(SqlError::Eval(format!(
                            "INSERT SELECT produced {} columns, expected {}",
                            vals.len(),
                            map.len()
                        )));
                    }
                    let mut shuffled = vec![Value::Null; width];
                    for (i, v) in map.iter().zip(vals) {
                        shuffled[*i] = v;
                    }
                    shuffled
                }
            };
            t.push_row(vals)?;
        }
        Ok(n)
    }

    /// Maps an explicit INSERT column list onto table positions.
    fn column_reorder(
        t: &crate::catalog::Table,
        columns: Option<&[String]>,
    ) -> Result<Option<Vec<usize>>> {
        match columns {
            None => Ok(None),
            Some(cols) => {
                if cols.len() != t.columns.len() {
                    return Err(SqlError::Unsupported(
                        "partial-column INSERT is not supported".into(),
                    ));
                }
                let mut map = vec![0usize; cols.len()];
                for (i, c) in cols.iter().enumerate() {
                    map[i] = t.column_index(c).ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
                }
                Ok(Some(map))
            }
        }
    }

    /// Bulk loads rows programmatically (no SQL parsing): the fast path the
    /// benchmark harness uses to populate baseline tables.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let t = self.catalog.get_mut(table)?;
        let n = rows.len();
        for row in rows {
            t.push_row(row)?;
        }
        Ok(n)
    }

    /// Creates a table programmatically.
    pub fn create_table(&mut self, name: &str, columns: &[(&str, ColumnType)]) -> Result<()> {
        self.catalog.create(
            name,
            columns.iter().map(|(n, ty)| Column { name: n.to_string(), ty: *ty }).collect(),
        )
    }

    /// Number of rows in a table.
    pub fn table_len(&self, name: &str) -> Result<usize> {
        Ok(self.catalog.get(name)?.rows.len())
    }

    /// Read access to a table's definition and rows.
    pub fn table(&self, name: &str) -> Result<&crate::catalog::Table> {
        self.catalog.get(name)
    }

    /// Describes how a SELECT would execute (scan order, pushed-down
    /// predicates, residual join filter, post-processing steps) without
    /// running it.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse(sql)? {
            Statement::Select(stmt) => crate::exec::explain_select(&self.catalog, &stmt),
            other => Ok(format!("{other}\n(DDL/DML statements execute directly)\n")),
        }
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.catalog.table_names()
    }
}

fn ddl_result(rows_affected: usize) -> QueryResult {
    QueryResult {
        columns: vec!["rows_affected".to_string()],
        rows: vec![vec![Value::Int(i64::try_from(rows_affected).unwrap_or(i64::MAX))]],
        interrupted: None,
    }
}

/// A DML result that surfaces a routed write batch's budget edge: when the
/// serving apply was interrupted, the table rows are already in place and
/// the edits stay pending in the writer (absorbed by the next successful
/// apply), but no new epoch was published this statement.
fn dml_result(rows_affected: usize, receipt: Option<EpochReceipt>) -> QueryResult {
    let mut result = ddl_result(rows_affected);
    if let Some(reason) = receipt.and_then(|r| r.interrupted) {
        result.interrupted = Some(crate::exec::Interruption { reason, undecided_groups: 0 });
    }
    result
}

/// A compact deterministic plan-shape label for the query log, e.g.
/// `scan(movie)+filter+group+skyline(d=2)+sort`.
fn plan_shape(stmt: &SelectStmt) -> String {
    let tables: Vec<&str> = stmt.from.iter().map(|t| t.name.as_str()).collect();
    let mut parts = vec![format!("scan({})", tables.join(","))];
    if stmt.where_clause.is_some() {
        parts.push("filter".to_string());
    }
    if !stmt.group_by.is_empty() {
        parts.push("group".to_string());
    }
    if stmt.having.is_some() {
        parts.push("having".to_string());
    }
    if let Some(sky) = &stmt.skyline {
        parts.push(format!("skyline(d={})", sky.items.len()));
    }
    if !stmt.order_by.is_empty() {
        parts.push("sort".to_string());
    }
    if stmt.limit.is_some() {
        parts.push("limit".to_string());
    }
    parts.join("+")
}

/// The statement's γ threshold in per-mille, `None` without a skyline
/// clause. Uses the sanctioned saturating float→int conversion (lint L3).
fn gamma_permille(stmt: &SelectStmt) -> Option<u64> {
    let sky = stmt.skyline.as_ref()?;
    let g = sky.gamma.unwrap_or(0.5);
    Some(u64::try_from(aggsky_core::num::floor_usize(g * 1000.0 + 0.5)).unwrap_or(u64::MAX))
}

/// Copies the counters a query record self-describes with out of the
/// statement's trace snapshot.
fn harvest_counters(record: &mut QueryRecord, snap: &aggsky_obs::TraceSnapshot) {
    let c = |counter| snap.metrics.counter(counter);
    record.ticks = c(Counter::RecordPairs);
    record.cache_hits = c(Counter::CacheHits);
    record.cache_misses = c(Counter::CacheMisses);
    record.blocks_full = c(Counter::BlocksFull);
    record.blocks_skipped = c(Counter::BlocksSkipped);
    record.rows_scanned = c(Counter::SqlRowsScanned);
    record.groups_built = c(Counter::SqlGroupsBuilt);
}

#[cfg(test)]
mod journal_tests {
    use super::*;

    fn movie_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE movie (director TEXT, pop FLOAT, qual FLOAT)").unwrap();
        db.execute(
            "INSERT INTO movie VALUES ('T', 313, 8.2), ('T', 557, 9.0), \
             ('K', 362, 8.8), ('W', 10, 3.2)",
        )
        .unwrap();
        db
    }

    const SKYLINE: &str = "SELECT director FROM movie \
         GROUP BY director SKYLINE OF pop MAX, qual MAX GAMMA 0.75";

    #[test]
    fn journal_describes_every_statement() {
        let mut db = movie_db();
        db.execute(SKYLINE).unwrap();
        let records = db.journal().records();
        assert_eq!(records.len(), 3, "ddl + dml + select all journaled");
        assert_eq!(records[0].kind, "ddl");
        assert_eq!(records[1].kind, "dml");
        let sel = &records[2];
        assert_eq!(sel.kind, "select");
        assert_eq!(sel.seq, 2);
        assert_eq!(sel.query_id, query_id(2, SKYLINE));
        assert_eq!(sel.plan, "scan(movie)+group+skyline(d=2)");
        assert_eq!(sel.gamma_permille, Some(750));
        assert!(sel.ticks > 0, "aggregate skyline spends record pairs");
        assert!(sel.rows_scanned >= 4, "scan counter harvested: {}", sel.rows_scanned);
        assert!(sel.groups_built >= 3, "group counter harvested: {}", sel.groups_built);
        assert_eq!(sel.rows_out, 2);
        assert!(!sel.interrupted);
        assert!(sel.wall_micros.is_none(), "wall time off by default");
    }

    #[test]
    fn set_slow_query_flags_expensive_statements() {
        let mut db = movie_db();
        let r = db.execute("SET SLOW_QUERY 1").unwrap();
        assert_eq!(r.columns, vec!["slow_query_ticks".to_string()]);
        assert_eq!(db.journal().slow_threshold_ticks(), 1);
        db.execute(SKYLINE).unwrap();
        let slow = db.journal().slow_records();
        assert_eq!(slow.len(), 1, "only the skyline select is slow");
        assert_eq!(slow[0].kind, "select");
        // Statement text round-trips through the parser's display form.
        assert_eq!(
            crate::parser::parse("SET SLOW_QUERY 9").unwrap().to_string(),
            "SET SLOW_QUERY 9"
        );
    }

    #[test]
    fn journal_jsonl_is_deterministic_across_sessions() {
        let run = || {
            let mut db = movie_db();
            db.execute("SET SLOW_QUERY 5").unwrap();
            db.execute(SKYLINE).unwrap();
            db.execute("EXPLAIN ANALYZE SELECT director FROM movie WHERE pop > 100").unwrap();
            db.journal().export_jsonl()
        };
        let a = run();
        assert_eq!(a, run(), "same script, same bytes");
        assert_eq!(a.lines().count(), 5);
        assert!(a.contains("\"kind\":\"explain_analyze\""), "{a}");
        assert!(!a.contains("wall_micros"), "default export carries no wall time");
    }

    #[test]
    fn wall_time_is_recorded_only_when_enabled() {
        let mut db = movie_db();
        db.set_record_wall_time(true);
        db.execute("SELECT director FROM movie").unwrap();
        let last = db.journal().records().pop().unwrap();
        assert!(last.wall_micros.is_some());
    }

    #[test]
    fn clones_share_one_journal() {
        let mut db = movie_db();
        let mut other = db.clone();
        other.execute("SELECT director FROM movie").unwrap();
        assert_eq!(db.journal().len(), 3, "clone journaled into the shared log");
        db.execute("SELECT pop FROM movie").unwrap();
        assert_eq!(other.journal().len(), 4);
    }
}

#[cfg(test)]
mod serving_tests {
    use super::*;

    const ORACLE: &str = "SELECT director FROM movie \
         GROUP BY director SKYLINE OF pop MAX, qual MAX GAMMA 0.5";

    fn movie_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE movie (director TEXT, pop FLOAT, qual FLOAT)").unwrap();
        db.execute(
            "INSERT INTO movie VALUES ('T', 313, 8.2), ('T', 557, 9.0), \
             ('K', 362, 8.8), ('W', 10, 3.2)",
        )
        .unwrap();
        db
    }

    fn bound_db() -> Database {
        let mut db = movie_db();
        db.serve_skyline("movie", "director", &["pop", "qual"], 0.5).unwrap();
        db
    }

    /// The from-scratch answer the live epoch must always agree with.
    fn oracle(db: &mut Database) -> Vec<String> {
        let mut labels: Vec<String> =
            db.execute(ORACLE).unwrap().rows.iter().map(|r| r[0].to_string()).collect();
        labels.sort();
        labels
    }

    fn epoch_labels(db: &Database) -> Vec<String> {
        let mut labels: Vec<String> = db
            .serving_epoch("movie")
            .expect("movie is bound")
            .skyline_labels()
            .iter()
            .map(|l| (*l).to_string())
            .collect();
        labels.sort();
        labels
    }

    #[test]
    fn writes_route_through_the_binding_and_match_the_oracle() {
        let mut db = bound_db();
        let seed = db.serving_epoch("movie").unwrap();
        assert_eq!(seed.id(), 1, "the existing rows seed one batch: epoch 1");
        assert_eq!(epoch_labels(&db), oracle(&mut db));

        db.execute("INSERT INTO movie VALUES ('W', 900, 9.5), ('W', 880, 9.4)").unwrap();
        let e1 = db.serving_epoch("movie").unwrap();
        assert_eq!(e1.id(), 2, "one statement publishes one epoch");
        assert_eq!(epoch_labels(&db), oracle(&mut db));

        db.execute("DELETE FROM movie WHERE director = 'W'").unwrap();
        let e2 = db.serving_epoch("movie").unwrap();
        assert_eq!(e2.id(), 3);
        assert_eq!(epoch_labels(&db), oracle(&mut db));
        assert!(
            !e2.dataset()
                .sorted_labels(&(0..e2.dataset().n_groups()).collect::<Vec<_>>())
                .contains(&"W"),
            "fully deleted group leaves the snapshot"
        );
        // The older epoch handle still answers against its own snapshot.
        assert_eq!(e1.skyline_labels().len(), e1.skyline().len());
    }

    #[test]
    fn journal_records_describe_routed_batches() {
        let mut db = bound_db();
        db.execute("INSERT INTO movie VALUES ('W', 900, 9.5)").unwrap();
        db.execute("DELETE FROM movie WHERE director = 'K'").unwrap();
        let records = db.journal().records();
        let ins = &records[records.len() - 2];
        assert_eq!(ins.epoch, Some(2));
        assert_eq!(ins.batch_rows, 1);
        assert!(
            ins.deferred_pairs + ins.flushed_pairs > 0,
            "a routed write settles at least one pair"
        );
        let del = &records[records.len() - 1];
        assert_eq!(del.epoch, Some(3));
        assert_eq!(del.batch_rows, 1);
        let jsonl = db.journal().export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[lines.len() - 1].contains("\"epoch\":3,\"batch_rows\":1"));
        assert!(
            !lines[0].contains("\"epoch\""),
            "unrouted statements carry no serving fields: {}",
            lines[0]
        );
    }

    #[test]
    fn invalid_inserts_roll_back_and_publish_nothing() {
        let mut db = bound_db();
        let before = db.table_len("movie").unwrap();
        let err = db.execute("INSERT INTO movie VALUES ('X', NULL, 5.0)").unwrap_err();
        assert!(matches!(err, SqlError::Eval(_)), "{err}");
        assert_eq!(db.table_len("movie").unwrap(), before, "rows rolled back");
        assert_eq!(db.serving_epoch("movie").unwrap().id(), 1, "no epoch published");
        assert_eq!(epoch_labels(&db), oracle(&mut db), "binding still serves");
    }

    #[test]
    fn failed_delete_routing_restores_the_removed_rows() {
        let mut db = bound_db();
        // Make the mirrored engine diverge behind the table's back by
        // deleting K's record directly through the service handle: the
        // next routed DELETE of that row then fails inside the service.
        let svc = db.skyline_service("movie").unwrap().clone();
        svc.apply(&WriteBatch::new().delete("K", &[362.0, 8.8])).unwrap();
        let before = db.table("movie").unwrap().rows.clone();
        let err = db.execute("DELETE FROM movie WHERE director = 'K'").unwrap_err();
        assert!(matches!(err, SqlError::Eval(_)), "{err}");
        assert_eq!(
            db.table("movie").unwrap().rows,
            before,
            "removed rows restored at their original positions"
        );
    }

    #[test]
    fn clones_do_not_carry_serving_bindings() {
        let db = bound_db();
        let mut other = db.clone();
        assert!(other.skyline_service("movie").is_none(), "bindings are not cloned");
        // DML on the clone touches only the clone's tables, never the
        // original's serving state.
        other.execute("INSERT INTO movie VALUES ('X', 1000, 9.9)").unwrap();
        assert_eq!(db.serving_epoch("movie").unwrap().id(), 1);
        assert_eq!(db.table_len("movie").unwrap(), 4);
        assert_eq!(other.table_len("movie").unwrap(), 5);
        // The clone can bind its own independent service.
        other.serve_skyline("movie", "director", &["pop", "qual"], 0.5).unwrap();
        assert_eq!(other.serving_epoch("movie").unwrap().id(), 1);
    }

    #[test]
    fn update_on_a_bound_table_is_rejected() {
        let mut db = bound_db();
        let err = db.execute("UPDATE movie SET pop = 1000 WHERE director = 'W'").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)), "{err}");
        assert_eq!(db.serving_epoch("movie").unwrap().id(), 1);
        // Unbound tables still take UPDATEs.
        let mut plain = movie_db();
        plain.execute("UPDATE movie SET pop = 1000 WHERE director = 'W'").unwrap();
    }

    #[test]
    fn bind_validates_its_inputs_and_drop_unbinds() {
        let mut db = movie_db();
        assert!(db.serve_skyline("movie", "nope", &["pop"], 0.5).is_err());
        assert!(db.serve_skyline("movie", "director", &[], 0.5).is_err());
        assert!(db.serve_skyline("movie", "director", &["pop"], 2.0).is_err());
        db.serve_skyline("movie", "director", &["pop", "qual"], 0.5).unwrap();
        assert!(
            db.serve_skyline("movie", "director", &["pop"], 0.5).is_err(),
            "double bind is rejected"
        );
        assert!(db.skyline_service("movie").is_some());
        db.execute("DROP TABLE movie").unwrap();
        assert!(db.skyline_service("movie").is_none(), "drop removes the binding");
        assert!(db.serving_epoch("movie").is_none());
    }

    #[test]
    fn interrupted_applies_stay_pending_until_the_next_statement() {
        let mut db = bound_db();
        db.execute("SET TIMEOUT 1").unwrap();
        // (600, 8.5) straddles T's movies (dominates one, incomparable to
        // the other), so the forced recount must compare record pairs —
        // corner tests alone cannot classify it — and the 1-tick budget
        // trips.
        let r = db.execute("INSERT INTO movie VALUES ('W', 600, 8.5)").unwrap();
        assert!(r.interrupted.is_some(), "1-tick budget cuts the apply short");
        assert_eq!(db.serving_epoch("movie").unwrap().id(), 1, "nothing published");
        let records = db.journal().records();
        assert!(records[records.len() - 1].interrupted);
        // Lifting the budget lets the next statement absorb the backlog.
        db.execute("SET TIMEOUT 0").unwrap();
        db.execute("INSERT INTO movie VALUES ('W', 880, 9.4)").unwrap();
        assert!(db.serving_epoch("movie").unwrap().id() >= 2);
        assert_eq!(epoch_labels(&db), oracle(&mut db));
    }
}
