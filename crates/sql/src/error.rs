//! Errors of the mini SQL engine.

use std::fmt;

/// Any error raised while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer error: unexpected character or unterminated literal.
    Lex(String),
    /// Parser error: unexpected token.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown or ambiguous column reference.
    UnknownColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Type or arity error during evaluation.
    Eval(String),
    /// Feature deliberately outside the mini engine's dialect.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, SqlError>;
